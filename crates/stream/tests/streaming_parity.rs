//! End-to-end parity: the streaming detector must emit the *same alert
//! sequence at the same sample times* as the batch
//! [`HolderDimensionDetector`] on an identical aging trace — including
//! when the samples arrive through the full ingestion path (CSV replay →
//! defect gate → detector).
//!
//! The trace is the benchmark suite's "machine A" (E3) scenario: an
//! NT4-class workstation running the web-server mix with an injected
//! aging fault, simulated until it crashes.

use std::fmt::Write as _;

use aging_core::detector::{analyze, Alert, AlertLevel, DetectorConfig};
use aging_memsim::{simulate, Counter, FaultPlan, MachineConfig, Scenario, WorkloadConfig};
use aging_stream::detector::{AlertDetail, DetectorSpec, StreamingDetector};
use aging_stream::gate::{GateAction, SampleGate};
use aging_stream::source::{CsvReplaySource, SampleSource};
use aging_stream::GateConfig;

/// The E3 "machine A" scenario (workstation-NT4 + web mix + aging fault).
fn e3_scenario() -> Scenario {
    Scenario {
        name: "machine-a-nt4-777".into(),
        machine: MachineConfig::workstation_nt4(),
        workload: WorkloadConfig::web_server(),
        faults: FaultPlan::aging(24.0),
        seed: 777,
    }
}

fn e3_trace() -> (Vec<f64>, f64) {
    let report = simulate(&e3_scenario(), 48.0 * 3600.0).expect("simulation runs");
    assert!(
        report.first_crash().is_some(),
        "the aging fault must crash machine A inside the horizon"
    );
    let series = report
        .log
        .series(Counter::AvailableBytes)
        .expect("counter recorded");
    (series.values().to_vec(), series.dt())
}

fn config() -> DetectorConfig {
    DetectorConfig::default()
}

#[test]
fn streaming_detector_matches_batch_alarm_times_on_e3_trace() {
    let (values, dt) = e3_trace();
    let batch = analyze(&values, &config()).expect("batch analysis");
    assert!(
        batch.alerts.iter().any(|a| a.level == AlertLevel::Alarm),
        "E3 trace must raise a confirmed alarm ({} alerts)",
        batch.alerts.len()
    );

    // Feed the identical trace through the full streaming ingestion path:
    // serialize to CSV, replay it, gate it, detect.
    let mut csv = String::from("time,available\n");
    for (i, v) in values.iter().enumerate() {
        writeln!(csv, "{},{v}", i as f64 * dt).unwrap();
    }
    let mut source = CsvReplaySource::from_csv_str(&csv, "time", "available").unwrap();
    let mut gate = SampleGate::new(GateConfig {
        nominal_period_secs: dt,
        max_gap_factor: 4.0,
        ..GateConfig::default()
    })
    .unwrap();
    let mut detector = StreamingDetector::new(&DetectorSpec::Holder(config())).unwrap();

    let mut streamed: Vec<Alert> = Vec::new();
    while let Some(raw) = source.next_sample().unwrap() {
        let accepted = match gate.push(raw) {
            GateAction::Accept(s) => s,
            GateAction::AcceptAfterGap(s) => {
                detector.reset();
                s
            }
            GateAction::DropNonFinite | GateAction::DropOutOfOrder => continue,
        };
        if let Some(alert) = detector.push(accepted.value).unwrap() {
            let AlertDetail::Holder(holder_alert) = alert.detail else {
                panic!("holder spec must yield holder alerts");
            };
            assert_eq!(alert.sample_index, holder_alert.sample_index as u64);
            assert_eq!(alert.level, holder_alert.level);
            streamed.push(holder_alert);
        }
    }

    // A clean trace passes the gate untouched, so parity must be exact:
    // same alerts, same sample indices (hence same alarm times), same
    // measured dimensions and baselines.
    assert_eq!(
        streamed, batch.alerts,
        "streaming and batch alert sequences diverged"
    );
    let batch_alarm = batch
        .alerts
        .iter()
        .find(|a| a.level == AlertLevel::Alarm)
        .unwrap();
    let stream_alarm = streamed
        .iter()
        .find(|a| a.level == AlertLevel::Alarm)
        .unwrap();
    assert_eq!(
        batch_alarm.sample_index as f64 * dt,
        stream_alarm.sample_index as f64 * dt,
        "alarm wall-clock times must agree"
    );
}

#[test]
fn gate_defects_do_not_change_clean_sample_parity() {
    // Corrupt the stream with defects the gate is documented to repair:
    // NaN injections and duplicated (out-of-order) rows. The accepted
    // subsequence equals the clean trace, so alarms must still match the
    // batch run exactly.
    let (values, dt) = e3_trace();
    let batch = analyze(&values, &config()).expect("batch analysis");

    let mut gate = SampleGate::new(GateConfig {
        nominal_period_secs: dt,
        max_gap_factor: 1e9, // the injected NaNs must not register as gaps
        ..GateConfig::default()
    })
    .unwrap();
    let mut detector = StreamingDetector::new(&DetectorSpec::Holder(config())).unwrap();
    let mut streamed = Vec::new();
    let feed = |t: f64, v: f64, gate: &mut SampleGate, det: &mut StreamingDetector| {
        let raw = aging_stream::StreamSample {
            time_secs: t,
            value: v,
        };
        match gate.push(raw) {
            GateAction::Accept(s) | GateAction::AcceptAfterGap(s) => det.push(s.value).unwrap(),
            GateAction::DropNonFinite | GateAction::DropOutOfOrder => None,
        }
    };
    for (i, &v) in values.iter().enumerate() {
        let t = i as f64 * dt;
        if i % 97 == 13 {
            // Exporter hiccup: a NaN reading between real samples.
            assert!(feed(t - 0.5 * dt, f64::NAN, &mut gate, &mut detector).is_none());
        }
        if let Some(alert) = feed(t, v, &mut gate, &mut detector) {
            let AlertDetail::Holder(a) = alert.detail else {
                panic!("holder alerts expected")
            };
            streamed.push(a);
        }
        if i % 53 == 7 {
            // Retransmitted (stale) sample: same value, old timestamp.
            assert!(feed(t, v, &mut gate, &mut detector).is_none());
        }
    }
    assert!(gate.counters().dropped_non_finite > 0);
    assert!(gate.counters().dropped_out_of_order > 0);
    assert_eq!(gate.counters().gaps_detected, 0);
    assert_eq!(streamed, batch.alerts, "defect repair must preserve parity");
}
