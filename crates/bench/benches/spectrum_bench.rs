//! Multifractal spectrum estimation benchmarks.

use aging_fractal::generate;
use aging_fractal::spectrum::{
    leader_cumulants, mfdfa, partition_function, structure_function, MfdfaConfig,
};
use aging_fractal::surrogate::phase_surrogate;
use aging_fractal::wtmm::{wtmm, WtmmConfig};
use aging_fractal::{dimension, hurst};
use aging_wavelet::Wavelet;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_spectrum(c: &mut Criterion) {
    let noise = generate::fgn(8192, 0.6, 3).unwrap();
    let cascade = generate::binomial_cascade(13, 0.3, true, 4).unwrap();

    c.bench_function("spectrum/mfdfa-8192", |b| {
        b.iter(|| mfdfa(std::hint::black_box(&noise), &MfdfaConfig::default()).unwrap())
    });
    c.bench_function("spectrum/structure-function-8192", |b| {
        b.iter(|| structure_function(std::hint::black_box(&noise), &[1.0, 2.0, 3.0]).unwrap())
    });
    c.bench_function("spectrum/partition-8192", |b| {
        b.iter(|| {
            partition_function(std::hint::black_box(&cascade), &[-2.0, 1.0, 2.0, 4.0]).unwrap()
        })
    });
    c.bench_function("spectrum/leader-cumulants-8192", |b| {
        b.iter(|| {
            leader_cumulants(std::hint::black_box(&noise), Wavelet::Daubechies6, 9, 3).unwrap()
        })
    });
    c.bench_function("spectrum/wtmm-4096", |b| {
        b.iter(|| wtmm(std::hint::black_box(&noise[..4096]), &WtmmConfig::default()).unwrap())
    });
    c.bench_function("spectrum/phase-surrogate-8192", |b| {
        b.iter(|| phase_surrogate(std::hint::black_box(&noise), 1).unwrap())
    });
    c.bench_function("hurst/dfa-8192", |b| {
        b.iter(|| hurst::dfa(std::hint::black_box(&noise), 1).unwrap())
    });
    c.bench_function("dimension/box-counting-1024", |b| {
        b.iter(|| dimension::box_counting(std::hint::black_box(&noise[..1024])).unwrap())
    });
    c.bench_function("dimension/variation-1024", |b| {
        b.iter(|| dimension::variation(std::hint::black_box(&noise[..1024])).unwrap())
    });
}

criterion_group!(benches, bench_spectrum);
criterion_main!(benches);
