//! Non-parametric monotone-trend inference: the Mann–Kendall test and Sen's
//! slope estimator.
//!
//! These are the classical tools of measurement-based software-aging
//! analysis (Garg et al. 1998; Vaidyanathan & Trivedi 1998): detect whether a
//! resource series trends monotonically, estimate the depletion rate
//! robustly, and extrapolate a time to exhaustion. They serve as the
//! baseline the multifractal detector of the target paper is compared
//! against.

use crate::error::{Error, Result};
use crate::ring::RingBuffer;

/// Direction of a detected monotone trend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrendDirection {
    /// Statistically significant increasing trend.
    Increasing,
    /// Statistically significant decreasing trend.
    Decreasing,
    /// No significant monotone trend at the requested level.
    None,
}

impl std::fmt::Display for TrendDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrendDirection::Increasing => "increasing",
            TrendDirection::Decreasing => "decreasing",
            TrendDirection::None => "none",
        };
        f.write_str(s)
    }
}

/// Result of a Mann–Kendall trend test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannKendall {
    /// The Mann–Kendall S statistic: the number of concordant minus
    /// discordant pairs.
    pub s: i64,
    /// Variance of S under the null hypothesis (tie-corrected).
    pub var_s: f64,
    /// Standardised statistic (continuity-corrected).
    pub z: f64,
    /// Two-sided p-value from the normal approximation.
    pub p_value: f64,
    /// Kendall's tau: `S` normalised by the number of pairs.
    pub tau: f64,
}

impl MannKendall {
    /// Performs the Mann–Kendall test on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooShort`] with fewer than four samples (the normal
    /// approximation is meaningless below that) and [`Error::NonFinite`]
    /// for NaN/infinite input.
    ///
    /// # Examples
    ///
    /// ```
    /// use aging_timeseries::trend::MannKendall;
    ///
    /// # fn main() -> Result<(), aging_timeseries::Error> {
    /// let rising: Vec<f64> = (0..40).map(|i| i as f64).collect();
    /// let mk = MannKendall::test(&rising)?;
    /// assert!(mk.p_value < 0.001);
    /// assert!(mk.s > 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn test(data: &[f64]) -> Result<Self> {
        Error::require_len(data, 4)?;
        Error::require_finite(data)?;
        let n = data.len();

        let mut s: i64 = 0;
        for i in 0..n - 1 {
            for j in i + 1..n {
                let d = data[j] - data[i];
                if d > 0.0 {
                    s += 1;
                } else if d < 0.0 {
                    s -= 1;
                }
            }
        }

        // Tie correction: group sizes of equal values.
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let mut tie_term = 0.0;
        let mut run = 1usize;
        for i in 1..=n {
            if i < n && sorted[i] == sorted[i - 1] {
                run += 1;
            } else {
                if run > 1 {
                    let t = run as f64;
                    tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
                }
                run = 1;
            }
        }
        let nf = n as f64;
        let var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - tie_term) / 18.0;

        let z = if var_s <= 0.0 {
            0.0
        } else if s > 0 {
            (s as f64 - 1.0) / var_s.sqrt()
        } else if s < 0 {
            (s as f64 + 1.0) / var_s.sqrt()
        } else {
            0.0
        };
        let p_value = 2.0 * normal_sf(z.abs());
        let pairs = (n * (n - 1) / 2) as f64;
        Ok(MannKendall {
            s,
            var_s,
            z,
            p_value,
            tau: s as f64 / pairs,
        })
    }

    /// Classifies the trend at significance level `alpha` (e.g. `0.05`).
    pub fn direction(&self, alpha: f64) -> TrendDirection {
        if self.p_value < alpha {
            if self.s > 0 {
                TrendDirection::Increasing
            } else {
                TrendDirection::Decreasing
            }
        } else {
            TrendDirection::None
        }
    }
}

/// Seasonal Mann–Kendall test (Hirsch & Slack): the series is split into
/// `period` interleaved sub-series (e.g. hour-of-day buckets for diurnal
/// data) and the per-season S statistics and variances are summed, so a
/// periodic cycle does not masquerade as a monotone trend.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `period < 2`, and
/// [`Error::TooShort`] unless every season holds at least four samples.
///
/// # Examples
///
/// ```
/// use aging_timeseries::trend::{seasonal_mann_kendall, TrendDirection};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// // A pure daily cycle sampled 24×: no trend once deseasonalised.
/// let data: Vec<f64> = (0..240)
///     .map(|i| (2.0 * std::f64::consts::PI * (i % 24) as f64 / 24.0).sin())
///     .collect();
/// let mk = seasonal_mann_kendall(&data, 24)?;
/// assert_eq!(mk.direction(0.05), TrendDirection::None);
/// # Ok(())
/// # }
/// ```
pub fn seasonal_mann_kendall(data: &[f64], period: usize) -> Result<MannKendall> {
    if period < 2 {
        return Err(Error::invalid("period", "must be at least 2"));
    }
    Error::require_len(data, 4 * period)?;
    Error::require_finite(data)?;

    let mut s_total: i64 = 0;
    let mut var_total = 0.0;
    let mut pairs_total = 0.0;
    for season in 0..period {
        let sub: Vec<f64> = data.iter().skip(season).step_by(period).copied().collect();
        if sub.len() < 4 {
            return Err(Error::TooShort {
                required: 4 * period,
                actual: data.len(),
            });
        }
        let mk = MannKendall::test(&sub)?;
        s_total += mk.s;
        var_total += mk.var_s;
        pairs_total += (sub.len() * (sub.len() - 1) / 2) as f64;
    }
    let z = if var_total <= 0.0 {
        0.0
    } else if s_total > 0 {
        (s_total as f64 - 1.0) / var_total.sqrt()
    } else if s_total < 0 {
        (s_total as f64 + 1.0) / var_total.sqrt()
    } else {
        0.0
    };
    Ok(MannKendall {
        s: s_total,
        var_s: var_total,
        z,
        p_value: 2.0 * normal_sf(z.abs()),
        tau: s_total as f64 / pairs_total,
    })
}

/// Sen's slope estimate (median of pairwise slopes) for a uniformly sampled
/// series, expressed **per unit time** given the sampling period `dt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SenSlope {
    /// Median pairwise slope, per unit time.
    pub slope: f64,
    /// Intercept `median(x) - slope * median(t)` anchored at the first
    /// sample's time 0.
    pub intercept: f64,
    /// Lower bound of an approximate 95 % confidence interval on the slope.
    pub lower_95: f64,
    /// Upper bound of an approximate 95 % confidence interval on the slope.
    pub upper_95: f64,
}

impl SenSlope {
    /// Estimates Sen's slope of `data` sampled every `dt` time units.
    ///
    /// Uses all `O(n²)` pairs up to 1500 samples, a deterministic strided
    /// subsample beyond.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooShort`] with fewer than two samples,
    /// [`Error::InvalidParameter`] for non-positive `dt`, and
    /// [`Error::NonFinite`] for NaN/infinite input.
    pub fn estimate(data: &[f64], dt: f64) -> Result<Self> {
        SenSlope::estimate_with(data, dt, &mut Vec::new())
    }

    /// [`SenSlope::estimate`] with a caller-owned scratch buffer for the
    /// pairwise slopes — the allocation-free form streaming refit loops
    /// call once per detection stride.
    ///
    /// Only the order statistics of the slope population are needed, so
    /// the slopes are *selected*, not sorted: the median and both
    /// confidence bounds are the same values a full sort would produce
    /// (an order statistic is a property of the multiset), at O(pairs)
    /// instead of O(pairs·log pairs). Results are bit-identical to
    /// [`SenSlope::estimate`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`SenSlope::estimate`].
    pub fn estimate_with(data: &[f64], dt: f64, slopes: &mut Vec<f64>) -> Result<Self> {
        Error::require_len(data, 2)?;
        Error::require_finite(data)?;
        if !dt.is_finite() || dt <= 0.0 {
            return Err(Error::invalid("dt", "must be finite and positive"));
        }
        let n = data.len();
        let stride = if n > crate::regression::THEIL_SEN_EXACT_LIMIT {
            n / crate::regression::THEIL_SEN_EXACT_LIMIT + 1
        } else {
            1
        };
        slopes.clear();
        let mut i = 0;
        while i < n {
            let mut j = i + stride;
            while j < n {
                slopes.push((data[j] - data[i]) / ((j - i) as f64 * dt));
                j += stride;
            }
            i += stride;
        }
        if slopes.is_empty() {
            return Err(Error::TooShort {
                required: 2,
                actual: n,
            });
        }
        let m = slopes.len();

        // Normal-approximation confidence interval on the rank of the slope
        // (Gilbert 1987). With subsampling this is approximate. The ranks
        // depend only on `n`/`m`, so they are known before any selection.
        let nf = n as f64;
        let var_s = nf * (nf - 1.0) * (2.0 * nf + 5.0) / 18.0;
        let c = 1.96 * var_s.sqrt();
        let lo_rank = (((m as f64 - c) / 2.0).floor().max(0.0)) as usize;
        let hi_rank = ((((m as f64 + c) / 2.0).ceil()) as usize).min(m - 1);

        // Every rank the estimate reads, ascending and deduplicated.
        let mut ranks = [lo_rank, hi_rank, m / 2, usize::MAX];
        let mut n_ranks = 3;
        if m.is_multiple_of(2) {
            ranks[3] = m / 2 - 1;
            n_ranks = 4;
        }
        let ranks = &mut ranks[..n_ranks];
        ranks.sort_unstable();
        let mut picked = [0.0f64; 4];
        let mut base = 0usize;
        let mut prev: Option<usize> = None;
        for (slot, &rank) in ranks.iter().enumerate() {
            if prev == Some(rank) {
                picked[slot] = picked[slot - 1];
                continue;
            }
            let (_, &mut v, _) = slopes[base..].select_nth_unstable_by(rank - base, |a, b| {
                a.partial_cmp(b).expect("finite values compare")
            });
            picked[slot] = v;
            base = rank + 1;
            prev = Some(rank);
        }
        let at = |rank: usize| picked[ranks.iter().position(|&r| r == rank).expect("selected")];

        let slope = if m % 2 == 1 {
            at(m / 2)
        } else {
            0.5 * (at(m / 2 - 1) + at(m / 2))
        };
        let lower_95 = at(lo_rank);
        let upper_95 = at(hi_rank);

        // This runs on the per-sample trend-refit path, so the two medians
        // must not allocate. The time axis 0·dt, 1·dt, … is already sorted,
        // so its type-7 median is closed-form; the data median reuses
        // `slopes` (done with the rank selections above) as sort scratch.
        // Both replicate [`crate::stats::quantile`]'s arithmetic exactly,
        // keeping the intercept bit-identical.
        let pos = 0.5 * (n - 1) as f64;
        let t_lo = pos.floor() as usize;
        let t_hi = pos.ceil() as usize;
        let frac = pos - t_lo as f64;
        let time_median = (t_lo as f64 * dt) * (1.0 - frac) + (t_hi as f64 * dt) * frac;
        slopes.clear();
        slopes.extend_from_slice(data);
        slopes.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let data_median = slopes[t_lo] * (1.0 - frac) + slopes[t_hi] * frac;
        let intercept = data_median - slope * time_median;
        Ok(SenSlope {
            slope,
            intercept,
            lower_95,
            upper_95,
        })
    }

    /// Predicted level at time `t` (measured from the first sample).
    pub fn predict(&self, t: f64) -> f64 {
        self.intercept + self.slope * t
    }

    /// Time (from the first sample) at which the fitted line crosses
    /// `level`, or `None` when the slope is zero or the crossing lies in the
    /// past.
    pub fn time_to_level(&self, level: f64) -> Option<f64> {
        if self.slope.abs() <= f64::EPSILON {
            return None;
        }
        let t = (level - self.intercept) / self.slope;
        if t.is_finite() && t >= 0.0 {
            Some(t)
        } else {
            None
        }
    }
}

/// Windowed-incremental Mann–Kendall test over the trailing `window`
/// samples of a stream.
///
/// The batch [`MannKendall::test`] costs O(n²) sign comparisons. This
/// kernel keeps the trailing window in a [`RingBuffer`] and maintains the
/// S statistic under sliding: evicting the oldest sample removes its
/// comparisons against the surviving window (O(window)), and the incoming
/// sample adds its own (O(window)) — so a stream of length N costs
/// O(N·window) instead of O(N·window²) for a recompute-per-sample loop.
///
/// [`StreamingMannKendall::statistic`] reproduces [`MannKendall::test`] on
/// the current window exactly (same S, ties, variance, z and p).
///
/// # Examples
///
/// ```
/// use aging_timeseries::trend::{MannKendall, StreamingMannKendall};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let mut mk = StreamingMannKendall::new(32)?;
/// for i in 0..100 {
///     mk.push(i as f64 * 0.5)?;
/// }
/// let streaming = mk.statistic()?;
/// let batch = MannKendall::test(&mk.window())?;
/// assert_eq!(streaming.s, batch.s);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StreamingMannKendall {
    ring: RingBuffer,
    s: i64,
}

impl StreamingMannKendall {
    /// Creates a kernel over a trailing window of `window` samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when `window < 4` (the normal
    /// approximation needs at least four samples).
    pub fn new(window: usize) -> Result<Self> {
        if window < 4 {
            return Err(Error::invalid("window", "must be at least 4"));
        }
        Ok(StreamingMannKendall {
            ring: RingBuffer::new(window)?,
            s: 0,
        })
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Whether the window has filled (the statistic now covers exactly
    /// `window` samples).
    pub fn is_full(&self) -> bool {
        self.ring.is_full()
    }

    /// The current window, oldest first.
    pub fn window(&self) -> Vec<f64> {
        self.ring.to_vec()
    }

    /// Feeds one sample, sliding the window if full.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] for NaN/infinite input.
    pub fn push(&mut self, value: f64) -> Result<()> {
        if !value.is_finite() {
            return Err(Error::NonFinite {
                index: self.ring.pushed() as usize,
            });
        }
        if self.ring.is_full() {
            // The evictee is the oldest element: every pair it belongs to
            // has it on the earlier side. For finite values `x - oldest > 0`
            // iff `x > oldest` (IEEE-754 subtraction with gradual underflow
            // preserves sign and is zero only on exact equality), so the
            // scan counts with comparisons directly — a branch-free kernel
            // the compiler can vectorize over both ring slices.
            let oldest = self.ring.get(0).expect("full ring");
            let (front, tail) = self.ring.as_slices();
            let mut removed = sign_count(oldest, &front[1..]);
            removed += sign_count(oldest, tail);
            self.s -= removed;
        }
        // The incoming sample compares against every survivor. `front`
        // holds the oldest element, so the eviction skip stays in-bounds.
        let skip = usize::from(self.ring.is_full());
        let (front, tail) = self.ring.as_slices();
        self.s -= sign_count(value, &front[skip..]) + sign_count(value, tail);
        self.ring.push(value);
        Ok(())
    }

    /// Feeds a column of samples, sliding the window as needed; results are
    /// bit-identical to calling [`StreamingMannKendall::push`] per element.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] at the first NaN/infinite input;
    /// samples before the offending one remain pushed, exactly as a
    /// caller-side loop would leave them.
    pub fn push_slice(&mut self, values: &[f64]) -> Result<()> {
        for &value in values {
            self.push(value)?;
        }
        Ok(())
    }

    /// The maintained S statistic (sum of pairwise signs in the window).
    pub fn s(&self) -> i64 {
        self.s
    }

    /// Serializes the dynamic state (window ring + maintained S) with
    /// [`crate::persist`]; see [`crate::ring::RingBuffer::encode_state`]
    /// for the bit-identity contract.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        self.ring.encode_state(out);
        crate::persist::put_i64(out, self.s);
    }

    /// Restores state written by [`StreamingMannKendall::encode_state`]
    /// into a kernel constructed with the same window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncation or a window
    /// mismatch.
    pub fn restore_state(&mut self, r: &mut crate::persist::Reader<'_>) -> Result<()> {
        self.ring.restore_state(r)?;
        self.s = r.i64()?;
        Ok(())
    }

    /// The full Mann–Kendall statistic of the current window, identical to
    /// running [`MannKendall::test`] on [`StreamingMannKendall::window`].
    /// Tie bookkeeping costs one O(window log window) sort.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TooShort`] while the window holds fewer than four
    /// samples.
    pub fn statistic(&self) -> Result<MannKendall> {
        self.statistic_with(&mut Vec::new())
    }

    /// [`StreamingMannKendall::statistic`] with a caller-owned scratch
    /// buffer for the tie-bookkeeping sort — the allocation-free form for
    /// refit loops. Results are bit-identical to `statistic`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMannKendall::statistic`].
    pub fn statistic_with(&self, scratch: &mut Vec<f64>) -> Result<MannKendall> {
        let n = self.ring.len();
        if n < 4 {
            return Err(Error::TooShort {
                required: 4,
                actual: n,
            });
        }
        self.ring.copy_to(scratch);
        let sorted = scratch;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        let mut tie_term = 0.0;
        let mut run = 1usize;
        for i in 1..=n {
            if i < n && sorted[i] == sorted[i - 1] {
                run += 1;
            } else {
                if run > 1 {
                    let t = run as f64;
                    tie_term += t * (t - 1.0) * (2.0 * t + 5.0);
                }
                run = 1;
            }
        }
        let nf = n as f64;
        let var_s = (nf * (nf - 1.0) * (2.0 * nf + 5.0) - tie_term) / 18.0;
        let s = self.s;
        let z = if var_s <= 0.0 {
            0.0
        } else if s > 0 {
            (s as f64 - 1.0) / var_s.sqrt()
        } else if s < 0 {
            (s as f64 + 1.0) / var_s.sqrt()
        } else {
            0.0
        };
        let pairs = (n * (n - 1) / 2) as f64;
        Ok(MannKendall {
            s,
            var_s,
            z,
            p_value: 2.0 * normal_sf(z.abs()),
            tau: s as f64 / pairs,
        })
    }

    /// Sen's slope of the current window (O(window²), computed on demand —
    /// call at the detection stride, not per sample).
    ///
    /// # Errors
    ///
    /// Propagates [`SenSlope::estimate`] failures (window too short).
    pub fn sen_slope(&self, dt: f64) -> Result<SenSlope> {
        self.sen_slope_with(dt, &mut Vec::new(), &mut Vec::new())
    }

    /// [`StreamingMannKendall::sen_slope`] with caller-owned scratch
    /// buffers (window copy + pairwise slopes) — the allocation-free form
    /// for refit loops. Results are bit-identical to `sen_slope`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StreamingMannKendall::sen_slope`].
    pub fn sen_slope_with(
        &self,
        dt: f64,
        window: &mut Vec<f64>,
        slopes: &mut Vec<f64>,
    ) -> Result<SenSlope> {
        self.ring.copy_to(window);
        SenSlope::estimate_with(window, dt, slopes)
    }

    /// Clears the window (e.g. after a reboot); the configured width is
    /// retained.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.s = 0;
    }
}

/// Sum of `sign(x - base)` over `xs`, counted with direct comparisons.
///
/// For finite operands this matches the subtract-then-test form exactly:
/// IEEE-754 subtraction with gradual underflow yields zero only on exact
/// equality and otherwise preserves the sign of the true difference. The
/// branch-free body autovectorizes, which is what makes the streaming
/// Mann–Kendall scans slice-speed.
#[inline]
fn sign_count(base: f64, xs: &[f64]) -> i64 {
    let mut pos: i64 = 0;
    let mut neg: i64 = 0;
    for &x in xs {
        pos += i64::from(x > base);
        neg += i64::from(x < base);
    }
    pos - neg
}

/// Survival function `P(Z > z)` of the standard normal distribution, via an
/// Abramowitz–Stegun style erfc approximation (max abs error ≈ 1.2e-7).
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function (numerical approximation, 7-digit accuracy).
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn normal_sf_symmetry() {
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.96) - 0.025).abs() < 1e-4);
        assert!((normal_sf(-1.96) - 0.975).abs() < 1e-4);
    }

    #[test]
    fn mk_detects_monotone_trends() {
        let up: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let mk = MannKendall::test(&up).unwrap();
        assert_eq!(mk.s, (30 * 29 / 2) as i64);
        assert!((mk.tau - 1.0).abs() < 1e-12);
        assert!(mk.p_value < 1e-6);
        assert_eq!(mk.direction(0.05), TrendDirection::Increasing);

        let down: Vec<f64> = (0..30).map(|i| -(i as f64)).collect();
        let mk = MannKendall::test(&down).unwrap();
        assert_eq!(mk.direction(0.05), TrendDirection::Decreasing);
    }

    #[test]
    fn mk_antisymmetric_under_negation() {
        let d = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let neg: Vec<f64> = d.iter().map(|v| -v).collect();
        let a = MannKendall::test(&d).unwrap();
        let b = MannKendall::test(&neg).unwrap();
        assert_eq!(a.s, -b.s);
        assert!((a.p_value - b.p_value).abs() < 1e-12);
    }

    #[test]
    fn mk_no_trend_on_alternating() {
        let d: Vec<f64> = (0..40)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let mk = MannKendall::test(&d).unwrap();
        assert_eq!(mk.direction(0.05), TrendDirection::None);
    }

    #[test]
    fn mk_tie_correction_reduces_variance() {
        let no_ties: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let with_ties: Vec<f64> = (0..20).map(|i| (i / 4) as f64).collect();
        let a = MannKendall::test(&no_ties).unwrap();
        let b = MannKendall::test(&with_ties).unwrap();
        assert!(b.var_s < a.var_s);
    }

    #[test]
    fn mk_guards() {
        assert!(MannKendall::test(&[1.0, 2.0, 3.0]).is_err());
        assert!(MannKendall::test(&[1.0, f64::NAN, 2.0, 3.0]).is_err());
    }

    #[test]
    fn seasonal_mk_ignores_pure_cycle() {
        // A strong daily cycle fools the plain test but not the seasonal
        // one.
        let data: Vec<f64> = (0..24 * 12)
            .map(|i| {
                (2.0 * std::f64::consts::PI * (i % 24) as f64 / 24.0).sin() * 100.0
                    + ((i * 7) % 5) as f64 * 0.01
            })
            .collect();
        let seasonal = seasonal_mann_kendall(&data, 24).unwrap();
        assert_eq!(seasonal.direction(0.05), TrendDirection::None);
    }

    #[test]
    fn seasonal_mk_finds_trend_under_cycle() {
        let data: Vec<f64> = (0..24 * 12)
            .map(|i| {
                (2.0 * std::f64::consts::PI * (i % 24) as f64 / 24.0).sin() * 100.0 - 0.5 * i as f64
            })
            .collect();
        let seasonal = seasonal_mann_kendall(&data, 24).unwrap();
        assert_eq!(seasonal.direction(0.05), TrendDirection::Decreasing);
        assert!(seasonal.s < 0);
    }

    #[test]
    fn seasonal_mk_guards() {
        let d: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(seasonal_mann_kendall(&d, 1).is_err());
        assert!(seasonal_mann_kendall(&d[..10], 24).is_err());
        let mut bad = d.clone();
        bad[5] = f64::NAN;
        assert!(seasonal_mann_kendall(&bad, 4).is_err());
    }

    #[test]
    fn seasonal_mk_period_one_season_matches_plain() {
        // With period = 2 and a monotone series both sub-series trend the
        // same way, so the combined verdict matches the plain test.
        let d: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let plain = MannKendall::test(&d).unwrap();
        let seasonal = seasonal_mann_kendall(&d, 2).unwrap();
        assert_eq!(plain.direction(0.01), seasonal.direction(0.01));
    }

    #[test]
    fn sen_slope_exact_on_line() {
        let d: Vec<f64> = (0..25).map(|i| 100.0 - 2.0 * i as f64).collect();
        let sen = SenSlope::estimate(&d, 0.5).unwrap();
        // slope per unit time: -2 per sample / 0.5 s per sample = -4 /s.
        assert!((sen.slope + 4.0).abs() < 1e-12);
        assert!((sen.predict(0.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn sen_slope_robust_to_outliers() {
        let mut d: Vec<f64> = (0..50).map(|i| 10.0 + 0.5 * i as f64).collect();
        d[7] = 1e6;
        d[23] = -1e6;
        let sen = SenSlope::estimate(&d, 1.0).unwrap();
        assert!((sen.slope - 0.5).abs() < 0.05);
    }

    #[test]
    fn sen_confidence_brackets_slope() {
        let d: Vec<f64> = (0..60)
            .map(|i| 5.0 + 0.3 * i as f64 + if i % 3 == 0 { 0.4 } else { -0.2 })
            .collect();
        let sen = SenSlope::estimate(&d, 1.0).unwrap();
        assert!(sen.lower_95 <= sen.slope);
        assert!(sen.slope <= sen.upper_95);
    }

    #[test]
    fn time_to_level_extrapolates() {
        // Free memory falling from 100 at 2 units/s hits 0 at t = 50.
        let d: Vec<f64> = (0..10).map(|i| 100.0 - 2.0 * i as f64).collect();
        let sen = SenSlope::estimate(&d, 1.0).unwrap();
        let t = sen.time_to_level(0.0).unwrap();
        assert!((t - 50.0).abs() < 1e-9);
        // Rising series never reaches a level below its start.
        let up: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let sen_up = SenSlope::estimate(&up, 1.0).unwrap();
        assert_eq!(sen_up.time_to_level(-5.0), None);
    }

    #[test]
    fn sen_guards() {
        assert!(SenSlope::estimate(&[1.0], 1.0).is_err());
        assert!(SenSlope::estimate(&[1.0, 2.0], 0.0).is_err());
        assert!(SenSlope::estimate(&[1.0, f64::NAN], 1.0).is_err());
    }

    #[test]
    fn trend_direction_display() {
        assert_eq!(TrendDirection::Increasing.to_string(), "increasing");
        assert_eq!(TrendDirection::None.to_string(), "none");
    }

    #[test]
    fn streaming_mk_matches_batch_on_sliding_windows() {
        // Deterministic wiggly signal with ties.
        let data: Vec<f64> = (0..200)
            .map(|i| ((i * 13) % 29) as f64 + if i % 7 == 0 { 0.0 } else { 0.5 })
            .collect();
        let mut mk = StreamingMannKendall::new(32).unwrap();
        for (i, &v) in data.iter().enumerate() {
            mk.push(v).unwrap();
            if i + 1 >= 4 {
                let start = (i + 1).saturating_sub(32);
                let batch = MannKendall::test(&data[start..=i]).unwrap();
                let streaming = mk.statistic().unwrap();
                assert_eq!(streaming.s, batch.s, "at sample {i}");
                assert!((streaming.var_s - batch.var_s).abs() < 1e-9);
                assert!((streaming.p_value - batch.p_value).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn streaming_mk_rejects_bad_input() {
        assert!(StreamingMannKendall::new(3).is_err());
        let mut mk = StreamingMannKendall::new(8).unwrap();
        assert!(mk.push(f64::NAN).is_err());
        mk.push(1.0).unwrap();
        assert!(mk.statistic().is_err()); // too short
    }

    /// Reference Sen estimate via a full sort of the slope population —
    /// the pre-selection implementation, kept as the parity oracle.
    fn sen_reference(data: &[f64], dt: f64) -> SenSlope {
        let n = data.len();
        let mut slopes = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                slopes.push((data[j] - data[i]) / ((j - i) as f64 * dt));
            }
        }
        slopes.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let m = slopes.len();
        let slope = if m % 2 == 1 {
            slopes[m / 2]
        } else {
            0.5 * (slopes[m / 2 - 1] + slopes[m / 2])
        };
        let nf = n as f64;
        let var_s = nf * (nf - 1.0) * (2.0 * nf + 5.0) / 18.0;
        let c = 1.96 * var_s.sqrt();
        let lo_rank = (((m as f64 - c) / 2.0).floor().max(0.0)) as usize;
        let hi_rank = ((((m as f64 + c) / 2.0).ceil()) as usize).min(m - 1);
        let times: Vec<f64> = (0..n).map(|i| i as f64 * dt).collect();
        SenSlope {
            slope,
            intercept: crate::stats::median(data).unwrap()
                - slope * crate::stats::median(&times).unwrap(),
            lower_95: slopes[lo_rank],
            upper_95: slopes[hi_rank],
        }
    }

    #[test]
    fn sen_selection_matches_full_sort_bitwise() {
        // Sizes straddle odd/even pair counts and include heavy ties.
        for n in [2usize, 3, 5, 8, 17, 40, 120] {
            let data: Vec<f64> = (0..n as u64)
                .map(|i| ((i.wrapping_mul(48271) % 23) as f64) * 0.5 - (i as f64) * 0.01)
                .collect();
            let got = SenSlope::estimate(&data, 5.0).unwrap();
            let want = sen_reference(&data, 5.0);
            assert_eq!(got.slope.to_bits(), want.slope.to_bits(), "n={n}");
            assert_eq!(got.intercept.to_bits(), want.intercept.to_bits(), "n={n}");
            assert_eq!(got.lower_95.to_bits(), want.lower_95.to_bits(), "n={n}");
            assert_eq!(got.upper_95.to_bits(), want.upper_95.to_bits(), "n={n}");
        }
        // Constant data: every slope is zero (maximal ties).
        let flat = vec![7.25; 30];
        let got = SenSlope::estimate(&flat, 1.0).unwrap();
        let want = sen_reference(&flat, 1.0);
        assert_eq!(got.slope.to_bits(), want.slope.to_bits());
        assert_eq!(got.lower_95.to_bits(), want.lower_95.to_bits());
        assert_eq!(got.upper_95.to_bits(), want.upper_95.to_bits());
    }

    #[test]
    fn streaming_mk_push_slice_matches_push_bitwise() {
        let data: Vec<f64> = (0..97u64)
            .map(|i| ((i.wrapping_mul(2654435761) % 53) as f64) * 0.25 + (i as f64) * 0.1)
            .collect();
        for chunk in [1usize, 2, 7] {
            let mut looped = StreamingMannKendall::new(12).unwrap();
            let mut sliced = StreamingMannKendall::new(12).unwrap();
            for block in data.chunks(chunk) {
                for &v in block {
                    looped.push(v).unwrap();
                }
                sliced.push_slice(block).unwrap();
                let mut a = Vec::new();
                let mut b = Vec::new();
                looped.encode_state(&mut a);
                sliced.encode_state(&mut b);
                assert_eq!(a, b, "chunk={chunk}");
            }
            let a = looped.statistic().unwrap();
            let b = sliced.statistic_with(&mut Vec::with_capacity(4)).unwrap();
            assert_eq!(a.s, b.s);
            assert_eq!(a.z.to_bits(), b.z.to_bits());
            let sa = looped.sen_slope(5.0).unwrap();
            let sb = sliced
                .sen_slope_with(5.0, &mut Vec::new(), &mut Vec::new())
                .unwrap();
            assert_eq!(sa.slope.to_bits(), sb.slope.to_bits());
            assert_eq!(sa.lower_95.to_bits(), sb.lower_95.to_bits());
        }
    }

    #[test]
    fn streaming_mk_reset_restarts_window() {
        let mut mk = StreamingMannKendall::new(8).unwrap();
        for i in 0..20 {
            mk.push(i as f64).unwrap();
        }
        assert!(mk.s() > 0);
        mk.reset();
        assert_eq!(mk.s(), 0);
        assert!(mk.is_empty());
        for i in 0..8 {
            mk.push(-(i as f64)).unwrap();
        }
        assert!(mk.statistic().unwrap().s < 0);
    }
}
