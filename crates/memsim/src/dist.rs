//! Seeded sampling helpers for the heavy-tailed distributions that make
//! simulated memory traffic bursty and (multi)fractal.
//!
//! Heavy-tailed ON/OFF activity and job sizes are the canonical mechanism
//! behind self-similar and multifractal load in measured systems
//! (Willinger et al.; Crovella & Bestavros), so the workload generator
//! leans on Pareto and log-normal draws throughout.

use rand::rngs::StdRng;
use rand::Rng;

/// One standard normal variate (Marsaglia polar method).
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Log-normal variate with the given parameters of the underlying normal
/// (`mu`, `sigma` are the log-space mean and standard deviation).
pub fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    (mu + sigma * standard_normal(rng)).exp()
}

/// Pareto (type I) variate with scale `xm > 0` and shape `alpha > 0`.
/// Heavy-tailed for small `alpha`; infinite variance when `alpha ≤ 2`.
pub fn pareto(rng: &mut StdRng, xm: f64, alpha: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    xm / u.powf(1.0 / alpha)
}

/// Exponential variate with the given mean.
pub fn exponential(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Poisson variate with the given mean (Knuth's method below 30, normal
/// approximation above — adequate for workload arrival counts).
pub fn poisson(rng: &mut StdRng, mean: f64) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    if mean < 30.0 {
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0);
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let v = mean + mean.sqrt() * standard_normal(rng);
        if v < 0.0 {
            0
        } else {
            v.round() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut r = rng(1);
        let mut xs: Vec<f64> = (0..20_000).map(|_| log_normal(&mut r, 2.0, 0.8)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 2.0f64.exp()).abs() < 0.3, "median {median}");
        assert!(xs.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let mut r = rng(2);
        let xs: Vec<f64> = (0..20_000).map(|_| pareto(&mut r, 3.0, 1.5)).collect();
        assert!(xs.iter().all(|&v| v >= 3.0));
        // P(X > 2·xm) = 2^{-α} ≈ 0.3536.
        let frac = xs.iter().filter(|&&v| v > 6.0).count() as f64 / xs.len() as f64;
        assert!((frac - 0.3536).abs() < 0.02, "tail fraction {frac}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng(3);
        let xs: Vec<f64> = (0..20_000).map(|_| exponential(&mut r, 5.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn poisson_moments_small_and_large_mean() {
        for &mean in &[3.0, 80.0] {
            let mut r = rng(4);
            let xs: Vec<f64> = (0..20_000).map(|_| poisson(&mut r, mean) as f64).collect();
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / xs.len() as f64;
            assert!((m - mean).abs() < 0.05 * mean + 0.2, "mean {m} vs {mean}");
            assert!((var - mean).abs() < 0.1 * mean + 0.5, "var {var} vs {mean}");
        }
        assert_eq!(poisson(&mut rng(5), 0.0), 0);
        assert_eq!(poisson(&mut rng(5), -1.0), 0);
    }

    #[test]
    fn sampling_is_deterministic() {
        let a: Vec<f64> = {
            let mut r = rng(9);
            (0..10).map(|_| pareto(&mut r, 1.0, 2.0)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(9);
            (0..10).map(|_| pareto(&mut r, 1.0, 2.0)).collect()
        };
        assert_eq!(a, b);
    }
}
