//! Property lock for the [`LatencyHistogram`] merge invariant audited in
//! ISSUE 5: merging two histograms must be indistinguishable from
//! replaying both underlying observation streams — *every* field
//! (bucket counts including the overflow slot, `total`, `sum_us`,
//! `max_us`) — and the audited fix to `quantile_upper_bound_us` must
//! keep quantiles monotone in `q` with q=0 meaning "first non-empty
//! bucket", not "first bucket".

use aging_stream::telemetry::{LatencyHistogram, LATENCY_BUCKET_EDGES_US};
use proptest::prelude::*;

fn replay(observations: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &us in observations {
        h.record_us(us);
    }
    h
}

/// Skews a uniform draw so the samples land in every bucket, the
/// low-microsecond ones and the overflow slot included (a plain uniform
/// range would almost never produce a ≤10 µs latency).
fn skew(raw: u64) -> u64 {
    match raw % 4 {
        0 => raw % 16,
        1 => raw % 400,
        2 => raw % 20_000,
        _ => raw % 10_000_000, // reaches past the 100 ms overflow edge
    }
}

fn latency() -> impl Strategy<Value = u64> {
    0u64..=u64::MAX / 2
}

proptest! {
    #[test]
    fn merge_equals_replaying_both_streams(
        a in prop::collection::vec(latency(), 0..200),
        b in prop::collection::vec(latency(), 0..200),
    ) {
        let a: Vec<u64> = a.into_iter().map(skew).collect();
        let b: Vec<u64> = b.into_iter().map(skew).collect();
        let mut merged = replay(&a);
        merged.merge(&replay(&b));

        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        let replayed = replay(&concat);

        prop_assert_eq!(merged, replayed);
    }

    #[test]
    fn merge_is_associative_and_empty_is_identity(
        a in prop::collection::vec(latency(), 0..64),
        b in prop::collection::vec(latency(), 0..64),
        c in prop::collection::vec(latency(), 0..64),
    ) {
        let a: Vec<u64> = a.into_iter().map(skew).collect();
        let b: Vec<u64> = b.into_iter().map(skew).collect();
        let c: Vec<u64> = c.into_iter().map(skew).collect();
        let (ha, hb, hc) = (replay(&a), replay(&b), replay(&c));

        let mut left = ha;
        left.merge(&hb);
        left.merge(&hc);

        let mut bc = hb;
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);

        prop_assert_eq!(left, right);

        let mut with_empty = ha;
        with_empty.merge(&LatencyHistogram::default());
        prop_assert_eq!(with_empty, ha);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_the_mass(
        obs in prop::collection::vec(latency(), 1..200),
    ) {
        let obs: Vec<u64> = obs.into_iter().map(skew).collect();
        let h = replay(&obs);
        let max = *obs.iter().max().expect("non-empty");

        let mut prev = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let bound = h.quantile_upper_bound_us(q).expect("non-empty histogram");
            prop_assert!(bound >= prev, "q={q}: bound {bound} < previous {prev}");
            prev = bound;
        }

        // q=0 is the minimum's bucket: its bound never exceeds the first
        // non-empty bucket's edge, and never undercuts the true minimum's
        // bucket (the pre-fix bug reported the lowest edge regardless).
        let min = *obs.iter().min().expect("non-empty");
        let q0 = h.quantile_upper_bound_us(0.0).expect("non-empty");
        let min_bucket_edge = LATENCY_BUCKET_EDGES_US
            .iter()
            .copied()
            .find(|&e| min <= e)
            .unwrap_or(h.max_us.max(1));
        prop_assert_eq!(q0, min_bucket_edge);

        // q=1 upper-bounds the true maximum.
        let q1 = h.quantile_upper_bound_us(1.0).expect("non-empty");
        prop_assert!(q1 >= max.min(h.max_us), "q1={q1} max={max}");
    }
}
