//! The deterministic restart arbiter.

use aging_timeseries::{Error, Result};

use crate::policy::RejuvConfig;

/// Why a restart was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RestartReason {
    /// The machine's fused detector vote latched an alarm.
    Alarm,
    /// The fixed-interval policy came due.
    Periodic,
    /// The machine crashed; the repair reboot is forced, not optional.
    CrashReboot,
}

impl RestartReason {
    /// Stable one-byte code used by persistence codecs.
    pub fn code(self) -> u8 {
        match self {
            RestartReason::Alarm => 0,
            RestartReason::Periodic => 1,
            RestartReason::CrashReboot => 2,
        }
    }

    /// Inverse of [`RestartReason::code`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on an unknown code.
    pub fn from_code(code: u8) -> Result<RestartReason> {
        match code {
            0 => Ok(RestartReason::Alarm),
            1 => Ok(RestartReason::Periodic),
            2 => Ok(RestartReason::CrashReboot),
            c => Err(Error::invalid(
                "restart_reason",
                format!("unknown code {c}"),
            )),
        }
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            RestartReason::Alarm => "alarm",
            RestartReason::Periodic => "periodic",
            RestartReason::CrashReboot => "crash-reboot",
        }
    }
}

/// Why a planned restart was denied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenyReason {
    /// Less than `cooldown_secs` since this machine's last restart.
    Cooldown,
    /// The fleet-wide concurrent-restart budget is exhausted.
    Budget,
}

/// One machine asking to restart at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartRequest {
    /// Fleet index of the requesting machine.
    pub machine_index: usize,
    /// Stream time of the request, seconds.
    pub time_secs: f64,
    /// Why the restart is wanted.
    pub reason: RestartReason,
}

/// The controller's verdict on one [`RestartRequest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RestartDecision {
    /// Fleet index of the requesting machine.
    pub machine_index: usize,
    /// Stream time of the request, seconds.
    pub time_secs: f64,
    /// Why the restart was wanted.
    pub reason: RestartReason,
    /// Whether the restart was granted.
    pub granted: bool,
    /// Denial cause when `granted` is false.
    pub deny: Option<DenyReason>,
    /// Seconds of downtime the granted action costs (0 when denied).
    pub downtime_secs: f64,
}

/// Deterministic restart arbiter: grants or denies restart requests
/// against a per-machine cooldown and a fleet-wide concurrency budget.
///
/// Requests must arrive in non-decreasing `(time_secs, machine_index)`
/// order — exactly the order the watermark-merged alarm stream provides.
/// Given the same request sequence, the controller produces the same
/// decision sequence bit for bit; there is no randomness and no clock.
#[derive(Debug, Clone)]
pub struct RejuvController {
    config: RejuvConfig,
    /// Per-machine time of the last granted restart (boot = 0.0 counts
    /// as a restart epoch, so fresh machines sit out one cooldown).
    last_restart: Vec<f64>,
    /// End times of restarts/repairs still in flight.
    inflight: Vec<f64>,
    decisions: Vec<RestartDecision>,
    granted: u64,
    denied_cooldown: u64,
    denied_budget: u64,
}

impl RejuvController {
    /// Creates a controller for a fleet of `machines`.
    ///
    /// # Errors
    ///
    /// Propagates [`RejuvConfig::validate`]; rejects an empty fleet.
    pub fn new(config: RejuvConfig, machines: usize) -> Result<Self> {
        config.validate()?;
        if machines == 0 {
            return Err(Error::invalid("machines", "need at least one machine"));
        }
        Ok(RejuvController {
            config,
            last_restart: vec![0.0; machines],
            inflight: Vec::new(),
            decisions: Vec::new(),
            granted: 0,
            denied_cooldown: 0,
            denied_budget: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &RejuvConfig {
        &self.config
    }

    /// Arbitrates one request and records the decision.
    ///
    /// Crash reboots are always granted — the machine is already down,
    /// the controller merely accounts for the repair and resets the
    /// machine's cooldown epoch. Planned restarts (alarm or periodic)
    /// are denied inside the cooldown window or when the concurrent
    /// budget is full; a denied machine may simply ask again later.
    pub fn decide(&mut self, request: &RestartRequest) -> RestartDecision {
        let now = request.time_secs;
        let m = request.machine_index;
        // Completed restarts free their budget slot.
        self.inflight.retain(|&end| end > now);
        let decision = if request.reason == RestartReason::CrashReboot {
            self.inflight.push(now + self.config.crash_repair_secs);
            self.last_restart[m] = now;
            RestartDecision {
                machine_index: m,
                time_secs: now,
                reason: request.reason,
                granted: true,
                deny: None,
                downtime_secs: self.config.crash_repair_secs,
            }
        } else if now - self.last_restart[m] < self.config.cooldown_secs {
            RestartDecision {
                machine_index: m,
                time_secs: now,
                reason: request.reason,
                granted: false,
                deny: Some(DenyReason::Cooldown),
                downtime_secs: 0.0,
            }
        } else if self.inflight.len() >= self.config.max_concurrent_restarts {
            RestartDecision {
                machine_index: m,
                time_secs: now,
                reason: request.reason,
                granted: false,
                deny: Some(DenyReason::Budget),
                downtime_secs: 0.0,
            }
        } else {
            self.inflight.push(now + self.config.restart_downtime_secs);
            self.last_restart[m] = now;
            RestartDecision {
                machine_index: m,
                time_secs: now,
                reason: request.reason,
                granted: true,
                deny: None,
                downtime_secs: self.config.restart_downtime_secs,
            }
        };
        match (decision.granted, decision.deny) {
            (true, _) => self.granted += 1,
            (false, Some(DenyReason::Cooldown)) => self.denied_cooldown += 1,
            (false, Some(DenyReason::Budget)) => self.denied_budget += 1,
            (false, None) => unreachable!("denied decisions carry a reason"),
        }
        self.decisions.push(decision);
        decision
    }

    /// Every decision made so far, in arrival order.
    pub fn decisions(&self) -> &[RestartDecision] {
        &self.decisions
    }

    /// Granted restarts (including crash reboots).
    pub fn granted(&self) -> u64 {
        self.granted
    }

    /// Requests denied by the per-machine cooldown.
    pub fn denied_cooldown(&self) -> u64 {
        self.denied_cooldown
    }

    /// Requests denied by the concurrency budget.
    pub fn denied_budget(&self) -> u64 {
        self.denied_budget
    }

    /// Time of `machine`'s last granted restart (0.0 = never, i.e. boot).
    pub fn last_restart_secs(&self, machine: usize) -> Option<f64> {
        self.last_restart.get(machine).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::RejuvPolicy;

    fn config() -> RejuvConfig {
        RejuvConfig {
            policy: RejuvPolicy::AlarmTriggered,
            cooldown_secs: 100.0,
            restart_downtime_secs: 10.0,
            crash_repair_secs: 50.0,
            max_concurrent_restarts: 1,
        }
    }

    fn req(machine: usize, t: f64, reason: RestartReason) -> RestartRequest {
        RestartRequest {
            machine_index: machine,
            time_secs: t,
            reason,
        }
    }

    #[test]
    fn boot_counts_as_a_restart_epoch() {
        let mut c = RejuvController::new(config(), 2).unwrap();
        let d = c.decide(&req(0, 50.0, RestartReason::Alarm));
        assert!(!d.granted);
        assert_eq!(d.deny, Some(DenyReason::Cooldown));
        let d = c.decide(&req(0, 100.0, RestartReason::Alarm));
        assert!(d.granted, "cooldown boundary is inclusive of expiry");
        assert_eq!(d.downtime_secs, 10.0);
    }

    #[test]
    fn cooldown_spaces_repeat_restarts() {
        let mut c = RejuvController::new(config(), 1).unwrap();
        assert!(c.decide(&req(0, 150.0, RestartReason::Alarm)).granted);
        let d = c.decide(&req(0, 249.0, RestartReason::Alarm));
        assert_eq!(d.deny, Some(DenyReason::Cooldown));
        assert!(c.decide(&req(0, 250.0, RestartReason::Alarm)).granted);
        assert_eq!(c.granted(), 2);
        assert_eq!(c.denied_cooldown(), 1);
    }

    #[test]
    fn budget_limits_concurrent_restarts() {
        let mut c = RejuvController::new(config(), 3).unwrap();
        // Machine 0 restarts at t=200 and is down until 210.
        assert!(c.decide(&req(0, 200.0, RestartReason::Alarm)).granted);
        // Machine 1 asks while the slot is occupied.
        let d = c.decide(&req(1, 205.0, RestartReason::Alarm));
        assert_eq!(d.deny, Some(DenyReason::Budget));
        // After the slot frees, the same ask succeeds.
        assert!(c.decide(&req(1, 211.0, RestartReason::Alarm)).granted);
        assert_eq!(c.denied_budget(), 1);
    }

    #[test]
    fn crash_reboots_bypass_cooldown_and_budget() {
        let mut c = RejuvController::new(config(), 2).unwrap();
        assert!(c.decide(&req(0, 200.0, RestartReason::Alarm)).granted);
        // Crash within the cooldown AND while the budget is full.
        let d = c.decide(&req(0, 205.0, RestartReason::CrashReboot));
        assert!(d.granted);
        assert_eq!(d.downtime_secs, 50.0);
        // The repair occupies a budget slot: a planned restart elsewhere
        // is pushed back while the repair is in flight.
        let d = c.decide(&req(1, 210.0, RestartReason::Alarm));
        assert_eq!(d.deny, Some(DenyReason::Budget));
        // The crash reset machine 0's cooldown epoch.
        let d = c.decide(&req(0, 260.0, RestartReason::Alarm));
        assert_eq!(d.deny, Some(DenyReason::Cooldown));
    }

    #[test]
    fn decision_log_matches_replay() {
        let requests = [
            req(0, 120.0, RestartReason::Alarm),
            req(1, 130.0, RestartReason::Periodic),
            req(0, 180.0, RestartReason::Alarm),
            req(2, 300.0, RestartReason::CrashReboot),
            req(1, 400.0, RestartReason::Alarm),
        ];
        let run = || {
            let mut c = RejuvController::new(config(), 3).unwrap();
            for r in &requests {
                c.decide(r);
            }
            c.decisions().to_vec()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same requests must yield identical decisions");
        assert_eq!(a.len(), requests.len());
    }

    #[test]
    fn reason_codes_round_trip() {
        for reason in [
            RestartReason::Alarm,
            RestartReason::Periodic,
            RestartReason::CrashReboot,
        ] {
            assert_eq!(RestartReason::from_code(reason.code()).unwrap(), reason);
        }
        assert!(RestartReason::from_code(99).is_err());
    }

    #[test]
    fn rejects_empty_fleet() {
        assert!(RejuvController::new(config(), 0).is_err());
    }
}
