//! Global Hurst-exponent estimators: rescaled range (R/S), detrended
//! fluctuation analysis (DFA), and aggregated variance.
//!
//! All estimators regress a scale statistic on scale in log–log
//! coordinates and return the fit diagnostics alongside the exponent, so
//! callers can reject poor scaling fits instead of trusting a number.

use aging_timeseries::regression::{log_log_fit, LineFit};
use aging_timeseries::window::{blocks, dyadic_scales};
use aging_timeseries::{detrend, stats, Error, Result};

/// A Hurst estimate together with the log–log fit it came from.
#[derive(Debug, Clone, PartialEq)]
pub struct HurstEstimate {
    /// The estimated Hurst exponent.
    pub hurst: f64,
    /// The underlying scaling fit (slope, R², …).
    pub fit: LineFit,
    /// The `(scale, statistic)` pairs used in the fit.
    pub points: Vec<(f64, f64)>,
}

/// Rescaled-range (R/S) analysis.
///
/// For each scale `s`, the series is cut into blocks of `s` samples; each
/// block contributes `R/S` — the range of its mean-adjusted cumulative sum
/// divided by its standard deviation. `E[R/S] ∝ s^H`.
///
/// # Errors
///
/// Returns [`Error::TooShort`] when fewer than 64 samples are supplied (at
/// least a few dyadic scales with ≥ 4 blocks each are needed for a
/// meaningful fit), and propagates numerical failures.
///
/// # Examples
///
/// ```
/// use aging_fractal::{generate, hurst};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let noise = generate::fgn(4096, 0.7, 1)?;
/// let est = hurst::rescaled_range(&noise)?;
/// assert!((est.hurst - 0.7).abs() < 0.15);
/// # Ok(())
/// # }
/// ```
pub fn rescaled_range(data: &[f64]) -> Result<HurstEstimate> {
    Error::require_len(data, 64)?;
    Error::require_finite(data)?;
    let scales: Vec<usize> = dyadic_scales(data.len(), 4)?
        .into_iter()
        .filter(|&s| s >= 8)
        .collect();
    if scales.len() < 3 {
        return Err(Error::TooShort {
            required: 64,
            actual: data.len(),
        });
    }
    let mut points = Vec::with_capacity(scales.len());
    for &s in &scales {
        let mut ratios = Vec::new();
        for block in blocks(data, s)? {
            let mean = stats::mean(block)?;
            let mut cum = 0.0;
            let mut min = f64::MAX;
            let mut max = f64::MIN;
            for &v in block {
                cum += v - mean;
                min = min.min(cum);
                max = max.max(cum);
            }
            let range = max - min;
            let sd = stats::population_variance(block)?.sqrt();
            if sd > f64::EPSILON {
                ratios.push(range / sd);
            }
        }
        if !ratios.is_empty() {
            points.push((s as f64, stats::mean(&ratios)?));
        }
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = points.iter().copied().unzip();
    let fit = log_log_fit(&xs, &ys)?;
    Ok(HurstEstimate {
        hurst: fit.slope,
        fit,
        points,
    })
}

/// Detrended fluctuation analysis of order `order` (DFA-1 removes linear
/// trends per window, DFA-2 quadratic, …).
///
/// The input is treated as **noise-like** (an increment process): the
/// profile (centred cumulative sum) is built internally and the fluctuation
/// function `F(s)` scales as `s^α` with `α = H` for fGn-like input and
/// `α = H + 1` for fBm-like input.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for `order == 0` or `order > 4`,
/// [`Error::TooShort`] below 64 samples, and propagates fit failures.
pub fn dfa(data: &[f64], order: usize) -> Result<HurstEstimate> {
    if order == 0 || order > 4 {
        return Err(Error::invalid("order", "must lie in 1..=4"));
    }
    Error::require_len(data, 64)?;
    Error::require_finite(data)?;

    // Profile.
    let mean = stats::mean(data)?;
    let mut acc = 0.0;
    let profile: Vec<f64> = data
        .iter()
        .map(|&v| {
            acc += v - mean;
            acc
        })
        .collect();

    let min_scale = (order + 2).max(4);
    let scales: Vec<usize> = dyadic_scales(profile.len(), 4)?
        .into_iter()
        .filter(|&s| s >= min_scale)
        .collect();
    if scales.len() < 3 {
        return Err(Error::TooShort {
            required: 64,
            actual: data.len(),
        });
    }

    // Also cover the tail by analysing the reversed profile, as is
    // standard, so the fit is not biased by dropped samples.
    let reversed: Vec<f64> = profile.iter().rev().copied().collect();
    let mut points = Vec::with_capacity(scales.len());
    for &s in &scales {
        let mut sq = Vec::new();
        for block in blocks(&profile, s)? {
            sq.push(detrend::fluctuation(block, order)?);
        }
        for block in blocks(&reversed, s)? {
            sq.push(detrend::fluctuation(block, order)?);
        }
        let f = stats::mean(&sq)?.sqrt();
        if f > 0.0 {
            points.push((s as f64, f));
        }
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = points.iter().copied().unzip();
    let fit = log_log_fit(&xs, &ys)?;
    Ok(HurstEstimate {
        hurst: fit.slope,
        fit,
        points,
    })
}

/// Aggregated-variance estimator: the variance of block means at block size
/// `m` scales as `m^{2H−2}`, so `H = 1 + slope/2`.
///
/// # Errors
///
/// Returns [`Error::TooShort`] below 64 samples and propagates fit
/// failures.
pub fn aggregated_variance(data: &[f64]) -> Result<HurstEstimate> {
    Error::require_len(data, 64)?;
    Error::require_finite(data)?;
    let scales: Vec<usize> = dyadic_scales(data.len(), 8)?
        .into_iter()
        .filter(|&s| s >= 2)
        .collect();
    if scales.len() < 3 {
        return Err(Error::TooShort {
            required: 64,
            actual: data.len(),
        });
    }
    let mut points = Vec::with_capacity(scales.len());
    for &s in &scales {
        let means: Vec<f64> = blocks(data, s)?
            .into_iter()
            .map(stats::mean)
            .collect::<Result<_>>()?;
        let v = stats::variance(&means)?;
        if v > 0.0 {
            points.push((s as f64, v));
        }
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = points.iter().copied().unzip();
    let fit = log_log_fit(&xs, &ys)?;
    Ok(HurstEstimate {
        hurst: 1.0 + fit.slope / 2.0,
        fit,
        points,
    })
}

/// Periodogram (spectral) estimator: the power spectrum of fGn behaves as
/// `f^{1−2H}` at low frequencies, so a log–log fit over the lowest decade
/// of frequencies gives `H = (1 − slope)/2`.
///
/// # Errors
///
/// Returns [`Error::TooShort`] below 128 samples and propagates fit
/// failures.
pub fn periodogram_hurst(data: &[f64]) -> Result<HurstEstimate> {
    Error::require_len(data, 128)?;
    let spec = crate::fft::periodogram(data)?;
    // Lowest ~12.5 % of frequencies (but at least 8 points).
    let count = (spec.len() / 8).max(8).min(spec.len());
    let pts: Vec<(f64, f64)> = spec
        .into_iter()
        .take(count)
        .filter(|&(_, p)| p > 0.0)
        .collect();
    let (xs, ys): (Vec<f64>, Vec<f64>) = pts.iter().copied().unzip();
    let fit = log_log_fit(&xs, &ys)?;
    Ok(HurstEstimate {
        hurst: (1.0 - fit.slope) / 2.0,
        fit,
        points: pts,
    })
}

/// Sliding-window DFA: the Hurst exponent tracked over time — a global
/// counterpart to the local Hölder trace (useful for slowly drifting
/// long-memory, e.g. mBm-like aging).
///
/// Returns `(last-sample-index-of-window, hurst)` pairs; windows whose DFA
/// fails (e.g. locally constant data) are skipped.
///
/// # Errors
///
/// Propagates window-plan errors ([`Error::TooShort`],
/// [`Error::InvalidParameter`]).
pub fn windowed_dfa(
    data: &[f64],
    window: usize,
    stride: usize,
    order: usize,
) -> Result<Vec<(usize, f64)>> {
    if window < 64 {
        return Err(Error::invalid("window", "must be at least 64"));
    }
    aging_timeseries::window::windowed_apply(data, window, stride, |w| Ok(dfa(w, order)?.hurst))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    const N: usize = 8192;

    #[test]
    fn dfa_recovers_hurst_of_fgn() {
        for &(h, seed) in &[(0.3, 1u64), (0.5, 2), (0.7, 3), (0.9, 4)] {
            let x = generate::fgn(N, h, seed).unwrap();
            let est = dfa(&x, 1).unwrap();
            assert!((est.hurst - h).abs() < 0.08, "H={h}: DFA {}", est.hurst);
            assert!(est.fit.r_squared > 0.9, "H={h}: R² {}", est.fit.r_squared);
        }
    }

    #[test]
    fn dfa_on_fbm_gives_h_plus_one() {
        let x = generate::fbm(N, 0.4, 5).unwrap();
        let est = dfa(&x, 2).unwrap();
        assert!((est.hurst - 1.4).abs() < 0.12, "alpha {}", est.hurst);
    }

    #[test]
    fn dfa_white_noise_is_half() {
        let x = generate::white_noise(N, 6).unwrap();
        let est = dfa(&x, 1).unwrap();
        assert!((est.hurst - 0.5).abs() < 0.06, "alpha {}", est.hurst);
    }

    #[test]
    fn dfa_guards() {
        let x = generate::white_noise(128, 0).unwrap();
        assert!(dfa(&x, 0).is_err());
        assert!(dfa(&x, 5).is_err());
        assert!(dfa(&x[..32], 1).is_err());
    }

    #[test]
    fn rs_orders_hurst_correctly() {
        // R/S is biased on finite samples, but must order H levels.
        let lo = rescaled_range(&generate::fgn(N, 0.3, 7).unwrap()).unwrap();
        let mid = rescaled_range(&generate::fgn(N, 0.6, 8).unwrap()).unwrap();
        let hi = rescaled_range(&generate::fgn(N, 0.9, 9).unwrap()).unwrap();
        assert!(lo.hurst < mid.hurst && mid.hurst < hi.hurst);
        assert!((mid.hurst - 0.6).abs() < 0.15, "R/S {}", mid.hurst);
    }

    #[test]
    fn aggregated_variance_recovers_hurst() {
        for &(h, seed) in &[(0.3, 10u64), (0.7, 11)] {
            let x = generate::fgn(N, h, seed).unwrap();
            let est = aggregated_variance(&x).unwrap();
            assert!((est.hurst - h).abs() < 0.12, "H={h}: aggvar {}", est.hurst);
        }
    }

    #[test]
    fn periodogram_recovers_hurst() {
        for &(h, seed) in &[(0.3, 12u64), (0.8, 13)] {
            let x = generate::fgn(N, h, seed).unwrap();
            let est = periodogram_hurst(&x).unwrap();
            assert!(
                (est.hurst - h).abs() < 0.15,
                "H={h}: periodogram {}",
                est.hurst
            );
        }
    }

    #[test]
    fn estimators_expose_fit_points() {
        let x = generate::fgn(1024, 0.5, 14).unwrap();
        let est = dfa(&x, 1).unwrap();
        assert!(est.points.len() >= 3);
        assert!(est.points.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn windowed_dfa_tracks_time_varying_hurst() {
        // First half rough (H=0.3) fGn, second half smooth (H=0.85): the
        // tracked exponent must rise.
        let mut x = generate::fgn(4096, 0.3, 20).unwrap();
        x.extend(generate::fgn(4096, 0.85, 21).unwrap());
        let trace = windowed_dfa(&x, 1024, 256, 1).unwrap();
        assert!(trace.len() > 20);
        let early: Vec<f64> = trace
            .iter()
            .filter(|&&(i, _)| i < 3500)
            .map(|&(_, h)| h)
            .collect();
        let late: Vec<f64> = trace
            .iter()
            .filter(|&&(i, _)| i > 5500)
            .map(|&(_, h)| h)
            .collect();
        let em = early.iter().sum::<f64>() / early.len() as f64;
        let lm = late.iter().sum::<f64>() / late.len() as f64;
        assert!((em - 0.3).abs() < 0.15, "early {em}");
        assert!((lm - 0.85).abs() < 0.15, "late {lm}");
        assert!(windowed_dfa(&x, 32, 8, 1).is_err());
    }

    #[test]
    fn constant_series_fails_gracefully() {
        // Constant input has zero fluctuation at every scale: no usable
        // fit points, so the estimators report an error instead of NaN.
        let x = vec![5.0; 512];
        assert!(dfa(&x, 1).is_err());
        assert!(rescaled_range(&x).is_err());
        assert!(aggregated_variance(&x).is_err());
    }
}
