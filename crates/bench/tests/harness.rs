//! Smoke tests for the experiment-reproduction harness: every experiment
//! must run to completion in quick mode without touching the filesystem.

use aging_bench::experiments::{run_experiment, ALL_EXPERIMENTS};
use aging_bench::scenarios;

#[test]
fn every_experiment_runs_in_quick_mode() {
    for id in ALL_EXPERIMENTS {
        run_experiment(id, true, None).unwrap_or_else(|e| panic!("{id} failed: {e}"));
    }
}

#[test]
fn unknown_experiment_rejected() {
    assert!(run_experiment("e0", true, None).is_err());
    assert!(run_experiment("everything", true, None).is_err());
}

#[test]
fn csv_outputs_land_in_requested_directory() {
    let dir = std::env::temp_dir().join("holder-aging-harness-test");
    let _ = std::fs::remove_dir_all(&dir);
    run_experiment("e5", true, Some(dir.as_path())).unwrap();
    let entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("output dir created")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().to_string())
        .collect();
    assert!(
        entries.iter().any(|n| n.starts_with("e5_")),
        "no e5 CSVs in {entries:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fleets_are_reproducible() {
    // The scenario builders must be deterministic: same call, same fleet.
    let a = scenarios::aging_fleet(6);
    let b = scenarios::aging_fleet(6);
    assert_eq!(a, b);
    assert_eq!(scenarios::machine_a(3), scenarios::machine_a(3));
}
