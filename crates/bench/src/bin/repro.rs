//! Regenerates the paper's (reconstructed) tables and figures.
//!
//! Usage:
//!   repro [e1 e2 … | all] [--quick] [--no-csv] [--no-trajectory]
//!
//! CSV outputs land in ./bench_results/. `--no-trajectory` skips the
//! `BENCH_<id>.json` trajectory append, so quick/dev probe runs don't
//! pollute the committed perf histories.

use aging_bench::experiments::{run_experiment_with, ALL_EXPERIMENTS};
use aging_bench::util::results_dir;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let no_csv = args.iter().any(|a| a == "--no-csv");
    let no_trajectory = args.iter().any(|a| a == "--no-trajectory");
    let mut ids: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_ascii_lowercase())
        .collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    let dir = results_dir();
    let out = if no_csv { None } else { Some(dir.as_path()) };
    println!(
        "holder-aging experiment reproduction ({} mode, CSV: {})",
        if quick { "quick" } else { "full" },
        if no_csv {
            "off".to_string()
        } else {
            dir.display().to_string()
        },
    );

    let started = std::time::Instant::now();
    let mut failures = 0;
    for id in &ids {
        if let Err(e) = run_experiment_with(id, quick, out, !no_trajectory) {
            eprintln!("experiment {id} failed: {e}");
            failures += 1;
        }
    }
    println!(
        "\ncompleted {} experiment(s) in {:.1}s ({failures} failure(s))",
        ids.len(),
        started.elapsed().as_secs_f64()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
