//! Cross-estimator consistency: independent estimators must agree on the
//! same signals (within their documented tolerances). This is the E5
//! methodology gate in test form, extended across the whole estimator zoo
//! including the wavelet-variance and WTMM routes.

use aging_fractal::spectrum::{mfdfa, MfdfaConfig};
use aging_fractal::wtmm::{wtmm, WtmmConfig};
use aging_fractal::{generate, hurst};
use aging_wavelet::variance::WaveletVariance;
use aging_wavelet::Wavelet;

#[test]
fn five_hurst_estimators_agree_on_fgn() {
    for &(h, seed) in &[(0.3, 1u64), (0.6, 2), (0.8, 3)] {
        let x = generate::fgn(8192, h, seed).unwrap();
        let estimates = [
            ("dfa", hurst::dfa(&x, 1).unwrap().hurst),
            ("aggvar", hurst::aggregated_variance(&x).unwrap().hurst),
            ("periodogram", hurst::periodogram_hurst(&x).unwrap().hurst),
            (
                "wavelet-variance",
                WaveletVariance::compute(&x, Wavelet::Daubechies4, 6)
                    .unwrap()
                    .hurst()
                    .unwrap(),
            ),
            (
                "mfdfa-h2",
                mfdfa(&x, &MfdfaConfig::default()).unwrap().hurst().unwrap(),
            ),
        ];
        for (name, est) in estimates {
            assert!((est - h).abs() < 0.15, "H={h}: {name} estimated {est}");
        }
    }
}

#[test]
fn wtmm_and_leaders_agree_on_fbm_regularity() {
    let h = 0.6;
    let x = generate::fbm(8192, h, 4).unwrap();
    // WTMM α(2) ≈ H.
    let res = wtmm(&x, &WtmmConfig::default()).unwrap();
    let alpha2 = res.alpha_at(2.0).unwrap();
    assert!((alpha2 - h).abs() < 0.25, "WTMM alpha(2) {alpha2}");
    // Leader c1 ≈ H.
    let lc = aging_fractal::spectrum::leader_cumulants(&x, Wavelet::Daubechies6, 9, 3).unwrap();
    assert!((lc.c1 - h).abs() < 0.15, "leader c1 {}", lc.c1);
    // And the two agree with each other.
    assert!((alpha2 - lc.c1).abs() < 0.3);
}

#[test]
fn denoising_preserves_hurst_of_smooth_component() {
    // fBm(H=0.8) plus white measurement noise: denoising should push the
    // DFA estimate back toward the smooth component's persistence.
    let clean = generate::fbm(4096, 0.8, 5).unwrap();
    let spread = {
        let mx = clean.iter().cloned().fold(f64::MIN, f64::max);
        let mn = clean.iter().cloned().fold(f64::MAX, f64::min);
        mx - mn
    };
    let noise = generate::white_noise(4096, 6).unwrap();
    let noisy: Vec<f64> = clean
        .iter()
        .zip(&noise)
        .map(|(c, e)| c + 0.02 * spread * e)
        .collect();
    let denoised = aging_wavelet::denoise::denoise(
        &noisy,
        Wavelet::Daubechies8,
        5,
        aging_wavelet::denoise::Shrinkage::Soft,
    )
    .unwrap();
    let before = hurst::dfa(&noisy, 2).unwrap().hurst;
    let after = hurst::dfa(&denoised.signal, 2).unwrap().hurst;
    let clean_h = hurst::dfa(&clean, 2).unwrap().hurst;
    assert!(
        (after - clean_h).abs() <= (before - clean_h).abs() + 0.02,
        "denoising moved DFA away from truth: clean {clean_h}, noisy {before}, denoised {after}"
    );
}

#[test]
fn multifractality_verdict_consistent_across_formalisms() {
    // Monofractal: both MF-DFA width and leader |c2| small.
    let mono = generate::fgn(8192, 0.6, 16).unwrap();
    let mono_width = mfdfa(&mono, &MfdfaConfig::default()).unwrap().width();
    let mono_c2 = aging_fractal::spectrum::leader_cumulants(
        &generate::fbm(8192, 0.6, 16).unwrap(),
        Wavelet::Daubechies6,
        9,
        3,
    )
    .unwrap()
    .c2;

    // Multifractal cascade: both large.
    let cascade = generate::binomial_cascade(13, 0.25, true, 8).unwrap();
    let multi_width = mfdfa(&cascade, &MfdfaConfig::default()).unwrap().width();
    let mut acc = 0.0;
    let walk: Vec<f64> = cascade
        .iter()
        .map(|&m| {
            acc += m;
            acc
        })
        .collect();
    let multi_c2 = aging_fractal::spectrum::leader_cumulants(&walk, Wavelet::Daubechies6, 9, 3)
        .unwrap()
        .c2;

    assert!(
        multi_width > mono_width + 0.3,
        "{multi_width} vs {mono_width}"
    );
    assert!(multi_c2 < mono_c2, "{multi_c2} vs {mono_c2}");
    assert!(mono_c2.abs() < 0.15, "monofractal c2 {mono_c2}");
}

#[test]
fn mbm_regularity_ordering_matches_design() {
    // Three mBm signals with increasing (constant) H must order their
    // graph dimensions decreasingly and their Hölder means increasingly.
    use aging_fractal::dimension;
    use aging_fractal::holder::{holder_trace, HolderEstimator};
    let mut dims = Vec::new();
    let mut holders = Vec::new();
    for (i, &h) in [0.25, 0.5, 0.75].iter().enumerate() {
        let x = generate::mbm(4096, move |_| h, 10 + i as u64).unwrap();
        dims.push(dimension::variation(&x).unwrap().dimension);
        let trace = holder_trace(&x, &HolderEstimator::default()).unwrap();
        holders.push(trace[512..].iter().sum::<f64>() / (trace.len() - 512) as f64);
    }
    assert!(dims[0] > dims[1] && dims[1] > dims[2], "{dims:?}");
    assert!(
        holders[0] < holders[1] && holders[1] < holders[2],
        "{holders:?}"
    );
}
