//! Cluster-aware wire chaos: a damaged client attacks ONE shard of a
//! 3-shard cluster while clean drivers feed the whole fleet. Every
//! fault class must (a) never panic any shard, (b) quarantine exactly
//! the damaged session on exactly the attacked shard, and (c) leave the
//! *other* shards' contributions to the merged global history
//! byte-identical to the offline supervisor — a wire fault is a local
//! event, not a cluster event.
//!
//! Fault injection is [`aging_chaos::wire`] — the same rewriter the
//! single-node suite (`crates/serve/tests/wire_chaos.rs`) uses, aimed
//! here at a shard picked through the ring.

use std::io::Write;
use std::net::{Shutdown, TcpStream};

use aging_chaos::wire::{WireChaos, WireFault, WirePlan, WriteOp};
use aging_cluster::{drive_fleet, Aggregator, AggregatorConfig, HashRing, LocalCluster};
use aging_core::baseline::TrendPredictorConfig;
use aging_memsim::{Counter, Scenario};
use aging_serve::loadgen::{BatchMode, LoadgenConfig};
use aging_serve::protocol::{
    counter_code, encode_events, encode_frame, Frame, Record, ServeEvent, PROTOCOL_VERSION,
};
use aging_serve::ServeConfig;
use aging_stream::detector::DetectorSpec;
use aging_stream::supervisor::{CounterDetector, FleetConfig, FleetSupervisor};
use aging_stream::GateConfig;

const RING_SEED: u64 = 0x5eed_0002;
const RING_VNODES: u32 = 32;
const SHARDS: u64 = 3;

fn fleet_config() -> FleetConfig {
    let detectors = vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(5.0)
        }),
    }];
    let mut cfg = FleetConfig::new(detectors, 8.0 * 3600.0);
    cfg.gate = GateConfig {
        nominal_period_secs: 5.0,
        ..GateConfig::default()
    };
    cfg
}

fn scenarios(seed: u64) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = (0..3)
        .map(|i| Scenario::tiny_aging(seed + i, 192.0))
        .collect();
    out.push(Scenario::tiny_aging(seed + 3, 0.0)); // healthy control
    out
}

fn offline_events(cfg: &FleetConfig, fleet: &[Scenario]) -> Vec<ServeEvent> {
    let report = FleetSupervisor::new(cfg.clone())
        .expect("offline supervisor")
        .run(fleet)
        .expect("offline run");
    report
        .events
        .iter()
        .map(|e| ServeEvent {
            machine_id: e.machine_index as u64,
            time_secs: e.time_secs,
            level: e.level,
            kind: e.kind,
        })
        .collect()
}

/// The extra machine id the damaged client publishes under: outside the
/// clean fleet, routed (by the ring) to the shard we want to attack.
fn damaged_machine_id(ring: &HashRing, target_shard: u64) -> u64 {
    (1_000_000..)
        .find(|&id| ring.shard_of(id) == target_shard)
        .expect("some large id routes to the target shard")
}

/// Frames a typical feeder connection would send for the damaged
/// machine (same shape as the single-node wire chaos suite).
fn damaged_client_frames(machine_id: u64) -> Vec<Vec<u8>> {
    let records = |base: usize| -> Vec<Record> {
        (0..8)
            .map(|i| Record {
                machine_id,
                counter: counter_code(Counter::AvailableBytes),
                time_secs: ((base + i) as f64) * 5.0,
                value: 1_000_000.0 - (base + i) as f64,
            })
            .collect()
    };
    vec![
        encode_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
            name: "cluster-chaos".into(),
        }),
        encode_frame(&Frame::Batch {
            seq: 1,
            records: records(0),
        }),
        encode_frame(&Frame::Batch {
            seq: 2,
            records: records(8),
        }),
        encode_frame(&Frame::Bye),
    ]
}

/// Writes the damaged frame sequence through the fault rewriter,
/// tolerating write errors (the shard may already have cut us off).
fn run_damaged_client(addr: std::net::SocketAddr, plan: &WirePlan, machine_id: u64) {
    let mut stream = TcpStream::connect(addr).expect("connect damaged client");
    stream.set_nodelay(true).expect("nodelay");
    let mut chaos = WireChaos::new(plan);
    let mut ops = Vec::new();
    for frame in damaged_client_frames(machine_id) {
        chaos.apply(&frame, &mut ops);
    }
    for op in ops {
        match op {
            WriteOp::Data(bytes) => {
                if stream.write_all(&bytes).is_err() {
                    return; // shard already quarantined us
                }
            }
            WriteOp::Disconnect => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
    std::thread::sleep(std::time::Duration::from_millis(50));
}

struct Expect {
    quarantined: u64,
    corrupt_streams: u64,
}

fn run_case(name: &str, plan: WirePlan, expect: &Expect) {
    let cfg = fleet_config();
    let fleet = scenarios(0x00c0_ffee);
    let ids: Vec<u64> = (0..fleet.len() as u64).collect();
    let ring = HashRing::new(SHARDS, RING_VNODES, RING_SEED).expect("ring");
    let parts = ring.partition_indices(&ids);
    // Attack the shard owning the most clean machines, so the fault
    // lands where it could do the most damage.
    let victim = (0..parts.len())
        .max_by_key(|&s| parts[s].len())
        .expect("three shards") as u64;
    let damaged_id = damaged_machine_id(&ring, victim);

    let offline = offline_events(&cfg, &fleet);
    assert!(!offline.is_empty(), "expected alarms from leaky machines");

    let template = ServeConfig::from_fleet(&cfg);
    let cluster = LocalCluster::launch(&ring, &template, &ids, None).expect("launch cluster");
    let aggregator = Aggregator::new(AggregatorConfig::default()).expect("aggregator");
    let loadgen = LoadgenConfig {
        connections: 2,
        batch_records: 32,
        rate_records_per_sec: 0.0,
        poll_alarms_ms: 0,
        counters: vec![Counter::AvailableBytes],
        mode: BatchMode::Record,
    };

    let victim_addr = cluster.addr(victim as usize);
    let (drive_result, agg_result) = std::thread::scope(|scope| {
        let agg = scope.spawn(|| aggregator.run(cluster.directory()));
        let damaged = scope.spawn(|| run_damaged_client(victim_addr, &plan, damaged_id));
        let drive = drive_fleet(
            &ring,
            cluster.directory(),
            &fleet,
            &ids,
            cfg.horizon_secs,
            &loadgen,
        );
        damaged.join().expect("damaged client thread");
        (drive, agg.join().expect("aggregator thread"))
    });
    let drive = drive_result.expect("fleet drive");
    assert!(drive.records_sent() > 0, "{name}: fleet drive fed nothing");
    let report = agg_result.expect("aggregator run");

    // (c) Healthy shards' contributions are byte-identical: filtering
    // both histories to machines living OFF the attacked shard must
    // agree exactly (filtering preserves each side's order).
    let off_victim = |events: &[ServeEvent]| -> Vec<ServeEvent> {
        events
            .iter()
            .filter(|e| ring.shard_of(e.machine_id) != victim)
            .cloned()
            .collect()
    };
    assert_eq!(
        encode_events(&off_victim(&offline)),
        encode_events(&off_victim(&report.events)),
        "{name}: healthy shards' merged contribution diverged from the offline run"
    );
    // The attacked shard's clean machines still deliver their exact
    // per-machine alarm sequences (intra-machine order is pinned by
    // time; only cross-machine interleaving on that shard may shift).
    for &pos in &parts[victim as usize] {
        let id = ids[pos];
        let per_machine = |events: &[ServeEvent]| -> Vec<ServeEvent> {
            events
                .iter()
                .filter(|e| e.machine_id == id)
                .cloned()
                .collect()
        };
        assert_eq!(
            encode_events(&per_machine(&offline)),
            encode_events(&per_machine(&report.events)),
            "{name}: machine {id} on the attacked shard lost or reordered alarms"
        );
    }
    // The damaged machine's partial feed must not fabricate alarms.
    assert!(
        report.events.iter().all(|e| e.machine_id != damaged_id),
        "{name}: the damaged machine's junk feed produced alarms"
    );

    // (a) + (b): zero panics everywhere; quarantine exactly on the
    // attacked shard.
    for (shard, outcome) in cluster.shutdown().into_iter().enumerate() {
        let outcome = outcome.expect("no shard was killed");
        assert_eq!(
            outcome.wire.session_panics, 0,
            "{name}: shard {shard} must never panic"
        );
        let (want_q, want_c) = if shard as u64 == victim {
            (expect.quarantined, expect.corrupt_streams)
        } else {
            (0, 0)
        };
        assert_eq!(
            outcome.wire.quarantined, want_q,
            "{name}: shard {shard} quarantine accounting (wire: {:?})",
            outcome.wire
        );
        assert_eq!(
            outcome.wire.corrupt_streams, want_c,
            "{name}: shard {shard} corrupt-stream accounting (wire: {:?})",
            outcome.wire
        );
    }
}

#[test]
fn clean_extra_client_perturbs_nothing() {
    run_case(
        "clean",
        WirePlan::new(11),
        &Expect {
            quarantined: 0,
            corrupt_streams: 0,
        },
    );
}

#[test]
fn corrupted_bit_on_one_shard_stays_local() {
    run_case(
        "corrupt-bit",
        WirePlan::new(11).with(WireFault::CorruptBit { frame: 1 }),
        &Expect {
            quarantined: 1,
            corrupt_streams: 1,
        },
    );
}

#[test]
fn truncated_frame_on_one_shard_stays_local() {
    run_case(
        "truncate",
        WirePlan::new(11).with(WireFault::Truncate {
            frame: 2,
            keep_bytes: 10,
        }),
        &Expect {
            quarantined: 1,
            corrupt_streams: 1,
        },
    );
}

#[test]
fn boundary_disconnect_on_one_shard_stays_local() {
    run_case(
        "disconnect-after",
        WirePlan::new(11).with(WireFault::DisconnectAfter { frames: 2 }),
        &Expect {
            quarantined: 0,
            corrupt_streams: 0,
        },
    );
}
