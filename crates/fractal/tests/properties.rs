//! Property-based tests for fractal-analysis invariants.

use aging_fractal::{dimension, generate, holder, spectrum};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn holder_trace_in_bounds(seed in 0u64..1000, hurst in 0.15f64..0.9) {
        let x = generate::fbm(512, hurst, seed).unwrap();
        let t = holder::holder_trace(&x, &holder::HolderEstimator::default()).unwrap();
        prop_assert_eq!(t.len(), x.len());
        prop_assert!(t.iter().all(|&h| (-1.0..=2.0).contains(&h)));
    }

    #[test]
    fn holder_trace_shift_invariant(seed in 0u64..1000, shift in -1e4f64..1e4) {
        let x = generate::fbm(256, 0.5, seed).unwrap();
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        let a = holder::holder_trace(&x, &holder::HolderEstimator::default()).unwrap();
        let b = holder::holder_trace(&shifted, &holder::HolderEstimator::default()).unwrap();
        for (u, v) in a.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn dimension_in_valid_range(seed in 0u64..1000, hurst in 0.15f64..0.9) {
        let x = generate::fbm(512, hurst, seed).unwrap();
        let d = dimension::variation(&x).unwrap();
        prop_assert!((1.0..=2.0).contains(&d.dimension));
        let b = dimension::box_counting(&x).unwrap();
        prop_assert!((1.0..=2.0).contains(&b.dimension));
    }

    #[test]
    fn dimension_translation_invariant(seed in 0u64..500, shift in -1e3f64..1e3) {
        let x = generate::fbm(256, 0.4, seed).unwrap();
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        let a = dimension::variation(&x).unwrap().dimension;
        let b = dimension::variation(&shifted).unwrap().dimension;
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn fgn_deterministic(seed in 0u64..10_000, hurst in 0.1f64..0.95) {
        let a = generate::fgn(128, hurst, seed).unwrap();
        let b = generate::fgn(128, hurst, seed).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn cascade_mass_conservation(levels in 2usize..12, m0 in 0.05f64..0.95, seed in 0u64..100) {
        let m = generate::binomial_cascade(levels, m0, true, seed).unwrap();
        prop_assert_eq!(m.len(), 1 << levels);
        let total: f64 = m.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(m.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn legendre_f_never_exceeds_alpha_identity(q0 in 0.2f64..0.9) {
        // For τ(q) = qH − 1 (monofractal), the transform must return the
        // single point (H, 1) regardless of H.
        let qs = spectrum::default_qs();
        let tau: Vec<f64> = qs.iter().map(|&q| q * q0 - 1.0).collect();
        let spec = spectrum::legendre(&qs, &tau).unwrap();
        for p in spec {
            prop_assert!((p.alpha - q0).abs() < 1e-9);
            prop_assert!((p.f - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn partition_tau_zero_at_q1(levels in 6usize..12, m0 in 0.1f64..0.9) {
        // Σ μ = 1 at every box size ⇒ τ(1) = 0 for any measure.
        let m = generate::binomial_cascade(levels, m0, false, 0).unwrap();
        let est = spectrum::partition_function(&m, &[1.0]).unwrap();
        prop_assert!(est.exponents[0].abs() < 1e-9);
    }

    #[test]
    fn weierstrass_amplitude_independent_of_phase_scale(h in 0.2f64..0.8) {
        let x = generate::weierstrass(256, h).unwrap();
        prop_assert_eq!(x.len(), 256);
        prop_assert!(x.iter().all(|v| v.is_finite()));
    }
}
