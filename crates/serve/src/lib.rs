//! # aging-serve
//!
//! Networked ingestion/query layer of the `holder-aging` workspace —
//! dependency-free (std-only sockets) TCP serving for the streaming
//! detectors reproducing *"Software Aging and Multifractality of Memory
//! Resources"* (Shereshevsky et al., DSN 2003).
//!
//! Where `aging-stream`'s supervisor multiplexes an *in-process* fleet,
//! this crate moves the machine feeds across a socket: remote monitors
//! publish `(machine_id, counter, t_secs, value)` records over a
//! length-prefixed, CRC-checked, versioned binary protocol (with a
//! line-delimited text fallback for `nc`-style debugging), and the
//! server routes them through the exact same per-machine
//! gate → detector → fusion pipeline
//! ([`aging_stream::pipeline::MachinePipeline`]). Because both paths
//! share one pipeline and one ordering rule, the TCP path is held to
//! *byte-identical* alarm parity with an offline
//! [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor) run
//! (experiment E14).
//!
//! Layers:
//!
//! 1. **Wire format** ([`protocol`]): frame layout, CRC-32, the
//!    [`protocol::Frame`] grammar, and the canonical event codec whose
//!    bytes double as the parity fingerprint.
//! 2. **Decoding** ([`codec`]): incremental frame extraction across
//!    arbitrary TCP chunk boundaries, distinguishing recoverable
//!    malformed payloads from fatal framing corruption, plus the text
//!    command parser.
//! 3. **Serving** ([`server`]): thread-per-connection sessions over a
//!    shared engine of per-machine pipelines, bounded queues with
//!    advisory backpressure, strike-based quarantine mirroring the
//!    sample gate, watermarked alarm history, live JSON telemetry
//!    (same [`aging_stream::telemetry::Snapshot`] schema as the
//!    supervisor), and graceful drain on shutdown.
//! 4. **Clients** ([`client`], [`loadgen`]): a blocking windowed client
//!    and a multi-connection load generator driving memsim scenarios,
//!    measuring throughput, ack RTT and alarm visibility latency.
//!
//! # Examples
//!
//! ```
//! use aging_serve::{LoadgenConfig, ServeClient, ServeConfig, Server};
//! use aging_memsim::{Counter, Scenario};
//! use aging_serve::loadgen::drive;
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! // An in-process server on an ephemeral loopback port …
//! let detectors = aging_serve::test_detectors();
//! let server = Server::bind("127.0.0.1:0", ServeConfig::new(detectors))?;
//!
//! // … fed by a load generator over real TCP.
//! let report = drive(
//!     server.local_addr(),
//!     &[Scenario::tiny_aging(7, 0.0)],
//!     600.0,
//!     &LoadgenConfig {
//!         counters: vec![Counter::AvailableBytes],
//!         poll_alarms_ms: 0,
//!         ..LoadgenConfig::default()
//!     },
//! )?;
//! assert!(report.records_sent > 0);
//! assert_eq!(report.records_sent, report.records_accepted);
//!
//! let outcome = server.shutdown();
//! assert_eq!(outcome.wire.session_panics, 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod codec;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{AlarmChunk, RejuvAdvice, ServeClient};
pub use codec::{CorruptStream, FrameDecoder, TextCommand};
pub use loadgen::{drive, drive_with_ids, BatchMode, LoadgenConfig, LoadgenReport, ScenarioFeeder};
pub use protocol::{
    column_delta_units, columnar_spans, decode_events, encode_events, expand_column_times, Frame,
    Record, ServeEvent, DEFAULT_MAX_FRAME, PROTOCOL_VERSION, PROTOCOL_VERSION_V2,
};
pub use server::{
    PersistStats, ServeConfig, ServeConfigBuilder, ServeReport, ServeStatus, Server, WireCounters,
};

use aging_core::baseline::TrendPredictorConfig;
use aging_memsim::Counter;
use aging_stream::detector::DetectorSpec;
use aging_stream::supervisor::CounterDetector;

/// A small single-counter detector set sized for the tiny test machine —
/// shared by doctests, integration tests and the quick E14 variant.
pub fn test_detectors() -> Vec<CounterDetector> {
    vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 64,
            refit_every: 4,
            alarm_horizon_secs: 1e6,
            ..TrendPredictorConfig::depleting(5.0)
        }),
    }]
}
