//! Blocking client for the aging-serve wire protocol.
//!
//! [`ServeClient`] speaks the binary framing from [`crate::protocol`]:
//! it performs the version handshake, streams record batches under the
//! server-advertised credit window (blocking on acks when the window is
//! full), and issues status/machine/alarm queries. Ack round-trip times
//! are folded into a [`LatencyHistogram`] so load generators get ingest
//! latency for free.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use aging_stream::telemetry::{LatencyHistogram, MachineSnapshot};
use aging_timeseries::{Error, Result};

use crate::codec::FrameDecoder;
use crate::protocol::{encode_frame, Frame, Record, ServeEvent, PROTOCOL_VERSION};
use crate::server::ServeStatus;

/// How long [`ServeClient`] waits for any single reply frame before
/// giving up with [`Error::Io`].
pub const CLIENT_REPLY_TIMEOUT_MS: u64 = 10_000;

/// One `AlarmsReply` with its shard/watermark advertisement — what a
/// cluster aggregator consumes per poll.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmChunk {
    /// Shard identity the server advertises
    /// ([`crate::ServeConfig::shard_id`]; `0` for standalone servers).
    pub shard: u64,
    /// Release watermark consistent with `total`: every released event
    /// at or below this time is within the first `total` events, and the
    /// server will never release another event at or below it. `+inf`
    /// means the shard has drained (no feed can reopen the promise).
    pub watermark_secs: f64,
    /// Total released events on the server at reply time.
    pub total: u64,
    /// The events at `since..since + events.len()`.
    pub events: Vec<ServeEvent>,
}

/// A connected, handshaken client session.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Credit window granted by the server's `HelloAck`.
    window: u16,
    /// Frame size limit granted by the server's `HelloAck`.
    max_frame: u32,
    inflight: VecDeque<(u64, Instant)>,
    next_seq: u64,
    ack_rtt: LatencyHistogram,
    records_accepted: u64,
    busy_frames: u64,
}

impl ServeClient {
    /// Connects and completes the `Hello`/`HelloAck` handshake.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure, a rejected protocol version, or
    /// an unexpected handshake reply.
    pub fn connect(addr: SocketAddr, name: &str) -> Result<ServeClient> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(io_err)?;
        let mut client = ServeClient {
            stream,
            dec: FrameDecoder::new(u32::MAX),
            window: 1,
            max_frame: u32::MAX,
            inflight: VecDeque::new(),
            next_seq: 0,
            ack_rtt: LatencyHistogram::default(),
            records_accepted: 0,
            busy_frames: 0,
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            name: name.to_string(),
        })?;
        match client.recv_reply()? {
            Frame::HelloAck {
                version: _,
                window,
                max_frame,
            } => {
                client.window = window.max(1);
                client.max_frame = max_frame;
                Ok(client)
            }
            Frame::Error { code, message } => Err(Error::Io(format!(
                "handshake rejected (code {code}): {message}"
            ))),
            other => Err(Error::Io(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// Ack round-trip latency observed so far (one sample per batch).
    pub fn ack_rtt(&self) -> &LatencyHistogram {
        &self.ack_rtt
    }

    /// Total records the server has acked as accepted.
    pub fn records_accepted(&self) -> u64 {
        self.records_accepted
    }

    /// Advisory `Busy` frames received (backpressure signals).
    pub fn busy_frames(&self) -> u64 {
        self.busy_frames
    }

    /// Sequence numbers of batches sent but not yet acked, oldest first.
    ///
    /// After a server crash these are exactly the batches whose
    /// durability is unknown — a resuming client re-sends them (the
    /// engine's gates drop any records that were in fact journaled, so
    /// redelivery is idempotent).
    pub fn unacked_seqs(&self) -> Vec<u64> {
        self.inflight.iter().map(|&(seq, _)| seq).collect()
    }

    /// Sends one batch, blocking for an ack first if the credit window
    /// is exhausted.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a server `Error` frame.
    pub fn send_batch(&mut self, records: &[Record]) -> Result<u64> {
        while self.inflight.len() >= usize::from(self.window) {
            self.pump_one()?;
        }
        self.next_seq += 1;
        let seq = self.next_seq;
        self.send(&Frame::Batch {
            seq,
            records: records.to_vec(),
        })?;
        self.inflight.push_back((seq, Instant::now()));
        // Opportunistically drain any acks already on the wire.
        self.drain_ready()?;
        Ok(seq)
    }

    /// Blocks until every outstanding batch has been acked.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or reply timeout.
    pub fn flush(&mut self) -> Result<()> {
        while !self.inflight.is_empty() {
            self.pump_one()?;
        }
        Ok(())
    }

    /// Declares a machine's feed complete (its pipeline is flushed and
    /// stops holding the fleet watermark).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure.
    pub fn machine_done(&mut self, machine_id: u64) -> Result<()> {
        self.send(&Frame::MachineDone { machine_id })
    }

    /// Fetches the server's status document.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_status(&mut self) -> Result<ServeStatus> {
        self.send(&Frame::QueryStatus)?;
        match self.recv_reply()? {
            Frame::StatusReply { json } => {
                serde_json::from_str(&json).map_err(|e| Error::Io(format!("bad status reply: {e}")))
            }
            other => Err(Error::Io(format!("unexpected status reply: {other:?}"))),
        }
    }

    /// Fetches one machine's pipeline snapshot, `None` when the server
    /// has never seen that machine.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_machine(&mut self, machine_id: u64) -> Result<Option<MachineSnapshot>> {
        self.send(&Frame::QueryMachine { machine_id })?;
        match self.recv_reply()? {
            Frame::MachineReply { json: None } => Ok(None),
            Frame::MachineReply { json: Some(json) } => serde_json::from_str(&json)
                .map(Some)
                .map_err(|e| Error::Io(format!("bad machine reply: {e}"))),
            other => Err(Error::Io(format!("unexpected machine reply: {other:?}"))),
        }
    }

    /// Fetches one chunk of released alarm history starting at `since`;
    /// returns `(total_released, chunk)`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_alarms(&mut self, since: u64) -> Result<(u64, Vec<ServeEvent>)> {
        let chunk = self.query_alarms_chunk(since)?;
        Ok((chunk.total, chunk.events))
    }

    /// Fetches one chunk of released alarm history starting at `since`,
    /// including the server's shard/watermark advertisement — what the
    /// cluster aggregator's merge loop consumes.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_alarms_chunk(&mut self, since: u64) -> Result<AlarmChunk> {
        self.send(&Frame::QueryAlarms { since })?;
        match self.recv_reply()? {
            Frame::AlarmsReply {
                since: _,
                total,
                shard,
                watermark_secs,
                events,
            } => Ok(AlarmChunk {
                shard,
                watermark_secs,
                total,
                events,
            }),
            other => Err(Error::Io(format!("unexpected alarms reply: {other:?}"))),
        }
    }

    /// Fetches the complete released alarm history, following the chunk
    /// cursor until caught up.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_alarms_all(&mut self) -> Result<Vec<ServeEvent>> {
        let mut events: Vec<ServeEvent> = Vec::new();
        loop {
            let (total, chunk) = self.query_alarms(events.len() as u64)?;
            let done = chunk.is_empty();
            events.extend(chunk);
            if done || events.len() as u64 >= total {
                return Ok(events);
            }
        }
    }

    /// Flushes outstanding acks and closes the session with `Bye`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the flush fails; a missing `ByeAck` (server
    /// already gone) is tolerated.
    pub fn bye(mut self) -> Result<LatencyHistogram> {
        self.flush()?;
        self.send(&Frame::Bye)?;
        // Best effort: the reply may race the close.
        let _ = self.recv_reply();
        Ok(self.ack_rtt)
    }

    // -- internals --------------------------------------------------------

    fn send(&mut self, frame: &Frame) -> Result<()> {
        self.stream.write_all(&encode_frame(frame)).map_err(io_err)
    }

    /// Handles one already-decoded incoming frame; `true` when it was an
    /// ack (progress for window flushing).
    fn absorb(&mut self, frame: Frame) -> Result<bool> {
        match frame {
            Frame::Ack { seq, accepted } => {
                self.records_accepted += u64::from(accepted);
                if let Some(pos) = self.inflight.iter().position(|&(s, _)| s == seq) {
                    let (_, sent) = self.inflight.remove(pos).expect("position just found");
                    self.ack_rtt.record(sent.elapsed());
                }
                Ok(true)
            }
            Frame::Busy { .. } => {
                self.busy_frames += 1;
                Ok(false)
            }
            Frame::Error { code, message } => {
                Err(Error::Io(format!("server error (code {code}): {message}")))
            }
            other => Err(Error::Io(format!("unsolicited frame: {other:?}"))),
        }
    }

    /// Decodes frames already buffered locally without blocking.
    fn drain_ready(&mut self) -> Result<()> {
        while let Some(payload) = self.dec.next_payload().map_err(corrupt_err)? {
            let frame = Frame::decode_payload(&payload).map_err(Error::Io)?;
            self.absorb(frame)?;
        }
        Ok(())
    }

    /// Blocks until one ack arrives (absorbing busy frames on the way).
    fn pump_one(&mut self) -> Result<()> {
        let deadline = Instant::now() + Duration::from_millis(CLIENT_REPLY_TIMEOUT_MS);
        loop {
            while let Some(payload) = self.dec.next_payload().map_err(corrupt_err)? {
                let frame = Frame::decode_payload(&payload).map_err(Error::Io)?;
                if self.absorb(frame)? {
                    return Ok(());
                }
            }
            self.fill(deadline)?;
        }
    }

    /// Blocks until the next non-ack reply frame arrives; acks and busy
    /// frames encountered on the way are absorbed.
    fn recv_reply(&mut self) -> Result<Frame> {
        let deadline = Instant::now() + Duration::from_millis(CLIENT_REPLY_TIMEOUT_MS);
        loop {
            while let Some(payload) = self.dec.next_payload().map_err(corrupt_err)? {
                let frame = Frame::decode_payload(&payload).map_err(Error::Io)?;
                match frame {
                    Frame::Ack { .. } | Frame::Busy { .. } => {
                        self.absorb(frame)?;
                    }
                    other => return Ok(other),
                }
            }
            self.fill(deadline)?;
        }
    }

    /// Reads more bytes from the socket into the decoder, failing past
    /// the deadline.
    fn fill(&mut self, deadline: Instant) -> Result<()> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(Error::Io("server closed the connection".into())),
                Ok(n) => {
                    self.dec.feed(&buf[..n]);
                    return Ok(());
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(Error::Io("timed out waiting for server reply".into()));
                    }
                }
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(e.to_string())
}

fn corrupt_err(c: crate::codec::CorruptStream) -> Error {
    Error::Io(format!("corrupt reply stream: {}", c.reason))
}
