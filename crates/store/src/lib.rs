//! # aging-store
//!
//! Crash-safe persistence for the streaming aging pipeline: an
//! append-only CRC32-framed **write-ahead journal** plus atomically
//! committed **snapshots**, dependency-free and std-only.
//!
//! The serve layer's in-process guarantee — an acked batch is never lost
//! — dies with the process. This crate upgrades it to *acked ⇒ durable*:
//! the server journals every state-mutating input **before**
//! acknowledging it, periodically checkpoints the full engine state into
//! a snapshot, and on restart replays `snapshot + journal suffix` to
//! reconstruct bit-identical detector state (the kill-and-recover
//! differential in `aging-serve` hard-gates byte-identical alarm
//! histories against an uninterrupted run).
//!
//! ## On-disk format
//!
//! Everything lives in one directory ([`StoreConfig::dir`]):
//!
//! - **`journal.wal`** — a sequence of frames, each
//!   `len: u32 LE | payload | crc32(payload): u32 LE` (the same framing
//!   discipline as the serve wire codec), where `payload` is
//!   `entry_id: u64 LE || caller bytes`. Entry ids are strictly
//!   increasing from 1 and survive snapshots.
//! - **`snapshot.bin`** — `magic "AGSTORE1" | applied_through: u64 LE |
//!   blob_len: u64 LE | blob | crc32: u32 LE` (CRC over everything after
//!   the magic). `applied_through` is the id of the last journal entry
//!   whose effects the blob contains.
//! - **`snapshot.tmp`** — scratch for the atomic commit; a leftover one
//!   is an aborted commit and is deleted on open.
//!
//! ## Crash-safety discipline
//!
//! - **Journal append**: frame written and flushed (plus `fdatasync`
//!   when [`StoreConfig::fsync`] is set) before [`Store::append`]
//!   returns — callers ack only after that.
//! - **Snapshot commit**: blob written to `snapshot.tmp`, synced, then
//!   `rename`d over `snapshot.bin` (atomic on POSIX), then the journal
//!   is truncated. A crash *between* rename and truncation is benign:
//!   recovery filters journal entries with `id ≤ applied_through`.
//! - **Torn-tail tolerance**: a crash mid-append leaves a partial or
//!   CRC-broken final frame. Recovery accepts every complete frame,
//!   truncates the journal at the first damaged one, and reports it via
//!   [`Recovery::torn_tail`] — nothing acked can be in the torn region,
//!   because the ack happens only after the flush.
//!
//! # Examples
//!
//! ```
//! use aging_store::{Store, StoreConfig};
//!
//! # fn main() -> aging_store::Result<()> {
//! let dir = std::env::temp_dir().join(format!("aging-store-doc-{}", std::process::id()));
//! let cfg = StoreConfig::new(&dir);
//! let (mut store, recovery) = Store::open(cfg.clone())?;
//! assert!(recovery.snapshot.is_none() && recovery.entries.is_empty());
//!
//! store.append(b"batch 1")?; // durable once this returns
//! store.commit_snapshot(b"state after batch 1")?;
//! store.append(b"batch 2")?;
//! drop(store); // "crash"
//!
//! let (_store, recovery) = Store::open(cfg)?;
//! assert_eq!(recovery.snapshot.as_deref(), Some(&b"state after batch 1"[..]));
//! assert_eq!(recovery.entries.len(), 1); // only the post-snapshot suffix
//! assert_eq!(recovery.entries[0].payload, b"batch 2");
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal file name inside the store directory.
pub const JOURNAL_FILE: &str = "journal.wal";
/// Committed snapshot file name.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Scratch file for the atomic snapshot commit.
pub const SNAPSHOT_TMP_FILE: &str = "snapshot.tmp";

/// Snapshot header magic: identifies the file and pins format version 1.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"AGSTORE1";

/// `len` prefix + `crc` suffix around every journal payload.
const FRAME_OVERHEAD: usize = 8;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Everything that can go wrong in the persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An I/O operation failed; the message carries the path and the OS
    /// error description.
    Io(String),
    /// On-disk state violates the format in a way recovery must not
    /// paper over (bad magic, short header, broken snapshot CRC).
    Corrupt(String),
    /// A caller request violates the store's limits (oversized entry).
    Invalid(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "store I/O error: {m}"),
            StoreError::Corrupt(m) => write!(f, "store corruption: {m}"),
            StoreError::Invalid(m) => write!(f, "store misuse: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StoreError>;

fn io_err(path: &Path, what: &str, e: &std::io::Error) -> StoreError {
    StoreError::Io(format!("{what} {}: {e}", path.display()))
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — the store is dependency-free, so it carries
// its own copy of the same table-driven implementation the serve wire
// protocol uses; the `crc_matches_serve_protocol` test in aging-serve
// pins the two together.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE 802.3, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    !c
}

/// Byte span of a whole frame with payload length `len`, or `None` when
/// the addition would overflow the host `usize` (the checked-arithmetic
/// discipline shared with the serve `FrameDecoder`).
fn frame_span(len: u32) -> Option<usize> {
    usize::try_from(len).ok()?.checked_add(FRAME_OVERHEAD)
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Persistence knobs. `Clone` so callers can stash the config and
/// re-open the same store after a crash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Directory holding the journal and snapshot (created on open).
    pub dir: PathBuf,
    /// Commit a snapshot automatically every this many journal entries
    /// (a hint consumed by the embedding layer, e.g. the serve engine;
    /// the store itself never snapshots spontaneously). `0` disables
    /// cadence-driven snapshots.
    pub snapshot_every_entries: u64,
    /// `fdatasync` the journal on every append and the snapshot on
    /// commit. Off by default: flushed-but-unsynced writes survive
    /// process crashes (the kill-and-recover model), while full
    /// power-loss durability costs a sync per ack.
    pub fsync: bool,
    /// Upper bound on one journal entry's payload, bytes. Appends beyond
    /// it are rejected; recovery treats larger length prefixes as
    /// corruption (torn tail).
    pub max_entry_bytes: u32,
}

impl StoreConfig {
    /// A config with library defaults: snapshot every 64 entries, no
    /// fsync, 16 MiB entry cap.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreConfig {
            dir: dir.into(),
            snapshot_every_entries: 64,
            fsync: false,
            max_entry_bytes: 16 * 1024 * 1024,
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Invalid`] for a zero entry cap.
    pub fn validate(&self) -> Result<()> {
        if self.max_entry_bytes == 0 {
            return Err(StoreError::Invalid(
                "max_entry_bytes must be positive".to_string(),
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Recovery report
// ---------------------------------------------------------------------------

/// One journal entry surviving recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Strictly increasing entry id (1-based over the store's lifetime).
    pub id: u64,
    /// The caller's bytes, exactly as appended.
    pub payload: Vec<u8>,
}

/// What [`Store::open`] found on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The committed snapshot blob, if any.
    pub snapshot: Option<Vec<u8>>,
    /// Id of the last journal entry the snapshot covers (`0` without a
    /// snapshot). Entries at or below it are filtered out of `entries`.
    pub applied_through: u64,
    /// Journal entries to replay on top of the snapshot, in id order.
    pub entries: Vec<JournalEntry>,
    /// Whether the journal ended in a damaged frame (crash mid-append).
    /// The damage was truncated away; everything in `entries` is intact.
    pub torn_tail: bool,
    /// Bytes of journal discarded by the torn-tail truncation.
    pub truncated_bytes: u64,
}

impl Recovery {
    /// Whether the store held no state at all (fresh directory).
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// An open journal + snapshot directory.
///
/// Not internally synchronized: the embedding layer (the serve engine's
/// mutex, the supervisor's merge thread) serializes access.
#[derive(Debug)]
pub struct Store {
    cfg: StoreConfig,
    journal: File,
    journal_path: PathBuf,
    /// Id the next append will carry.
    next_id: u64,
    /// Entries appended since the last snapshot commit (or open).
    since_snapshot: u64,
    /// Bytes appended to the journal over the store's lifetime (overhead
    /// included) — the journal-overhead measurement for E15.
    appended_bytes: u64,
    /// Current journal file length, bytes.
    journal_len: u64,
    /// Snapshots committed over the store's lifetime.
    snapshots_committed: u64,
}

impl Store {
    /// Opens (creating if necessary) the store at `cfg.dir`, recovering
    /// whatever a previous incarnation left behind.
    ///
    /// Recovery is torn-tail tolerant: the journal is truncated at the
    /// first incomplete or CRC-damaged frame, and entries already
    /// covered by the snapshot (`id ≤ applied_through`) are filtered out
    /// — the benign residue of a crash between snapshot rename and
    /// journal truncation.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failures and
    /// [`StoreError::Corrupt`] when `snapshot.bin` exists but fails its
    /// structural checks (magic, header, CRC) — a damaged *snapshot*,
    /// unlike a damaged journal tail, cannot be safely dropped.
    pub fn open(cfg: StoreConfig) -> Result<(Self, Recovery)> {
        cfg.validate()?;
        fs::create_dir_all(&cfg.dir).map_err(|e| io_err(&cfg.dir, "create dir", &e))?;

        // A leftover tmp is an aborted commit: the committed snapshot (if
        // any) is still intact, the tmp is garbage.
        let tmp = cfg.dir.join(SNAPSHOT_TMP_FILE);
        if tmp.exists() {
            fs::remove_file(&tmp).map_err(|e| io_err(&tmp, "remove stale", &e))?;
        }

        let (snapshot, applied_through) = read_snapshot(&cfg.dir.join(SNAPSHOT_FILE))?;
        let journal_path = cfg.dir.join(JOURNAL_FILE);
        let scan = scan_journal(&journal_path, applied_through, cfg.max_entry_bytes)?;

        if scan.truncate_to < scan.file_len {
            let f = OpenOptions::new()
                .write(true)
                .open(&journal_path)
                .map_err(|e| io_err(&journal_path, "open for truncation", &e))?;
            f.set_len(scan.truncate_to)
                .map_err(|e| io_err(&journal_path, "truncate", &e))?;
            f.sync_data()
                .map_err(|e| io_err(&journal_path, "sync after truncation", &e))?;
        }

        let journal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)
            .map_err(|e| io_err(&journal_path, "open journal", &e))?;

        let next_id = scan.last_id.max(applied_through) + 1;
        let store = Store {
            cfg,
            journal,
            journal_path,
            next_id,
            since_snapshot: scan.entries.len() as u64,
            appended_bytes: 0,
            journal_len: scan.truncate_to,
            snapshots_committed: 0,
        };
        let recovery = Recovery {
            snapshot,
            applied_through,
            entries: scan.entries,
            torn_tail: scan.torn,
            truncated_bytes: scan.file_len - scan.truncate_to,
        };
        Ok((store, recovery))
    }

    /// The configuration the store was opened with.
    pub fn config(&self) -> &StoreConfig {
        &self.cfg
    }

    /// Appends one entry to the journal; once this returns, the entry
    /// survives a process crash (and a power loss too when
    /// [`StoreConfig::fsync`] is set). Returns the entry's id.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Invalid`] for a payload over the configured
    /// cap and [`StoreError::Io`] on write failures. After an I/O error
    /// the entry must be assumed *not* durable — callers must not ack.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        let framed_len = payload.len().checked_add(8); // id prefix
        let too_big = match framed_len {
            Some(n) => n > self.cfg.max_entry_bytes as usize,
            None => true,
        };
        if too_big {
            return Err(StoreError::Invalid(format!(
                "entry of {} bytes exceeds max_entry_bytes {}",
                payload.len(),
                self.cfg.max_entry_bytes
            )));
        }
        let id = self.next_id;
        let mut frame = Vec::with_capacity(payload.len() + 8 + FRAME_OVERHEAD);
        frame.extend_from_slice(&((payload.len() as u32 + 8).to_le_bytes()));
        frame.extend_from_slice(&id.to_le_bytes());
        frame.extend_from_slice(payload);
        let crc = crc32(&frame[4..]);
        frame.extend_from_slice(&crc.to_le_bytes());

        self.journal
            .write_all(&frame)
            .map_err(|e| io_err(&self.journal_path, "append", &e))?;
        self.journal
            .flush()
            .map_err(|e| io_err(&self.journal_path, "flush", &e))?;
        if self.cfg.fsync {
            self.journal
                .sync_data()
                .map_err(|e| io_err(&self.journal_path, "fsync", &e))?;
        }
        self.next_id += 1;
        self.since_snapshot += 1;
        self.appended_bytes += frame.len() as u64;
        self.journal_len += frame.len() as u64;
        Ok(id)
    }

    /// Whether the configured snapshot cadence says it is time to
    /// checkpoint (`snapshot_every_entries` appends since the last one).
    pub fn snapshot_due(&self) -> bool {
        self.cfg.snapshot_every_entries > 0
            && self.since_snapshot >= self.cfg.snapshot_every_entries
    }

    /// Atomically commits `blob` as the new snapshot, covering every
    /// entry appended so far, then truncates the journal.
    ///
    /// The commit point is the `rename`: before it the old snapshot (or
    /// none) is intact, after it the new one is. A crash after the
    /// rename but before the truncation leaves already-covered entries
    /// in the journal; [`Store::open`] filters them by id.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on write/rename failures; the previous
    /// snapshot remains the committed one in that case.
    pub fn commit_snapshot(&mut self, blob: &[u8]) -> Result<()> {
        let applied_through = self.next_id - 1;
        let tmp = self.cfg.dir.join(SNAPSHOT_TMP_FILE);
        let dst = self.cfg.dir.join(SNAPSHOT_FILE);

        let mut body = Vec::with_capacity(blob.len() + 16);
        body.extend_from_slice(&applied_through.to_le_bytes());
        body.extend_from_slice(&(blob.len() as u64).to_le_bytes());
        body.extend_from_slice(blob);
        let crc = crc32(&body);

        let mut f = File::create(&tmp).map_err(|e| io_err(&tmp, "create", &e))?;
        f.write_all(&SNAPSHOT_MAGIC)
            .and_then(|()| f.write_all(&body))
            .and_then(|()| f.write_all(&crc.to_le_bytes()))
            .map_err(|e| io_err(&tmp, "write", &e))?;
        if self.cfg.fsync {
            f.sync_all().map_err(|e| io_err(&tmp, "sync", &e))?;
        } else {
            f.flush().map_err(|e| io_err(&tmp, "flush", &e))?;
        }
        drop(f);
        fs::rename(&tmp, &dst).map_err(|e| io_err(&dst, "rename over", &e))?;

        // The journal's entries are now covered by the snapshot; drop
        // them. The append handle keeps working after set_len(0) because
        // it writes at the (new) end.
        self.journal
            .set_len(0)
            .map_err(|e| io_err(&self.journal_path, "truncate", &e))?;
        if self.cfg.fsync {
            self.journal
                .sync_data()
                .map_err(|e| io_err(&self.journal_path, "sync after truncate", &e))?;
        }
        self.journal_len = 0;
        self.since_snapshot = 0;
        self.snapshots_committed += 1;
        Ok(())
    }

    /// Id of the most recently appended entry (`0` before any append in
    /// this incarnation and with an empty recovered journal).
    pub fn last_entry_id(&self) -> u64 {
        self.next_id - 1
    }

    /// Entries appended since the last snapshot commit (or open).
    pub fn entries_since_snapshot(&self) -> u64 {
        self.since_snapshot
    }

    /// Journal bytes written by this incarnation, framing included — the
    /// E15 journal-overhead measurement.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Current journal file length, bytes.
    pub fn journal_len(&self) -> u64 {
        self.journal_len
    }

    /// Snapshots committed by this incarnation.
    pub fn snapshots_committed(&self) -> u64 {
        self.snapshots_committed
    }
}

// ---------------------------------------------------------------------------
// Recovery internals
// ---------------------------------------------------------------------------

/// Parses `snapshot.bin`; `(None, 0)` when absent.
fn read_snapshot(path: &Path) -> Result<(Option<Vec<u8>>, u64)> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((None, 0)),
        Err(e) => return Err(io_err(path, "read", &e)),
    };
    let corrupt = |m: &str| StoreError::Corrupt(format!("{}: {m}", path.display()));
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 + 8 + 4 {
        return Err(corrupt("shorter than the fixed header"));
    }
    if bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(corrupt(
            "bad magic (not an aging-store snapshot, or a future version)",
        ));
    }
    let body = &bytes[SNAPSHOT_MAGIC.len()..bytes.len() - 4];
    let crc_stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
    if crc32(body) != crc_stored {
        return Err(corrupt("CRC mismatch"));
    }
    let applied_through = u64::from_le_bytes(body[..8].try_into().expect("8 bytes"));
    let blob_len = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    if blob_len != (body.len() - 16) as u64 {
        return Err(corrupt("blob length disagrees with file length"));
    }
    Ok((Some(body[16..].to_vec()), applied_through))
}

struct JournalScan {
    entries: Vec<JournalEntry>,
    last_id: u64,
    torn: bool,
    /// Byte offset of the first damaged frame (== `file_len` when clean).
    truncate_to: u64,
    file_len: u64,
}

/// Walks the journal, collecting complete well-formed frames and
/// stopping — without error — at the first damaged one.
fn scan_journal(path: &Path, applied_through: u64, max_entry_bytes: u32) -> Result<JournalScan> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(JournalScan {
                entries: Vec::new(),
                last_id: 0,
                torn: false,
                truncate_to: 0,
                file_len: 0,
            })
        }
        Err(e) => return Err(io_err(path, "open", &e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err(path, "read", &e))?;
    // Rewind so the caller's truncation handle sees a consistent file.
    file.seek(SeekFrom::Start(0)).ok();

    let file_len = bytes.len() as u64;
    let mut entries = Vec::new();
    let mut last_id = 0u64;
    let mut pos = 0usize;
    let mut torn = false;

    while bytes.len() - pos >= 4 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        // A zero-length payload cannot even hold the id prefix, and an
        // oversized one exceeds what append() could have written — both
        // mean the length word itself is damage.
        let span = match frame_span(len) {
            Some(s) if len as usize >= 8 && len <= max_entry_bytes => s,
            _ => {
                torn = true;
                break;
            }
        };
        if bytes.len() - pos < span {
            torn = true; // partial final frame
            break;
        }
        let payload = &bytes[pos + 4..pos + 4 + len as usize];
        let crc_stored = u32::from_le_bytes(
            bytes[pos + 4 + len as usize..pos + span]
                .try_into()
                .expect("4"),
        );
        if crc32(payload) != crc_stored {
            torn = true;
            break;
        }
        let id = u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"));
        if id <= last_id && last_id != 0 {
            // Ids must strictly increase; a regression means the frame
            // boundary drifted onto stale bytes. Stop here.
            torn = true;
            break;
        }
        last_id = id;
        if id > applied_through {
            entries.push(JournalEntry {
                id,
                payload: payload[8..].to_vec(),
            });
        }
        pos += span;
    }
    // Trailing sub-header bytes (1..=3) are also a torn tail.
    if !torn && pos < bytes.len() {
        torn = true;
    }

    Ok(JournalScan {
        entries,
        last_id,
        torn,
        truncate_to: pos as u64,
        file_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory wiped on drop.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!(
                "aging-store-test-{tag}-{}-{:p}",
                std::process::id(),
                &tag
            ));
            fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.0).ok();
        }
    }

    fn open(dir: &Path) -> (Store, Recovery) {
        Store::open(StoreConfig::new(dir)).expect("open store")
    }

    #[test]
    fn crc_reference_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let tmp = TempDir::new("fresh");
        let (store, rec) = open(tmp.path());
        assert!(rec.is_empty());
        assert_eq!(rec.applied_through, 0);
        assert!(!rec.torn_tail);
        assert_eq!(store.last_entry_id(), 0);
    }

    #[test]
    fn journal_round_trip_across_reopen() {
        let tmp = TempDir::new("roundtrip");
        {
            let (mut store, _) = open(tmp.path());
            for i in 0..10u8 {
                let id = store.append(&[i; 5]).unwrap();
                assert_eq!(id, u64::from(i) + 1);
            }
            assert_eq!(store.entries_since_snapshot(), 10);
            assert!(store.appended_bytes() > 0);
        }
        let (store, rec) = open(tmp.path());
        assert_eq!(rec.entries.len(), 10);
        assert!(!rec.torn_tail);
        assert!(rec.snapshot.is_none());
        for (i, e) in rec.entries.iter().enumerate() {
            assert_eq!(e.id, i as u64 + 1);
            assert_eq!(e.payload, vec![i as u8; 5]);
        }
        // Ids continue where the previous incarnation stopped.
        assert_eq!(store.last_entry_id(), 10);
    }

    #[test]
    fn snapshot_only_recovery() {
        let tmp = TempDir::new("snaponly");
        {
            let (mut store, _) = open(tmp.path());
            store.append(b"a").unwrap();
            store.append(b"b").unwrap();
            store.commit_snapshot(b"covers a+b").unwrap();
            assert_eq!(store.entries_since_snapshot(), 0);
            assert_eq!(store.journal_len(), 0);
            assert_eq!(store.snapshots_committed(), 1);
        }
        let (mut store, rec) = open(tmp.path());
        assert_eq!(rec.snapshot.as_deref(), Some(&b"covers a+b"[..]));
        assert_eq!(rec.applied_through, 2);
        assert!(rec.entries.is_empty());
        assert!(!rec.torn_tail);
        // New appends continue the id sequence past the snapshot.
        assert_eq!(store.append(b"c").unwrap(), 3);
    }

    #[test]
    fn snapshot_plus_journal_suffix() {
        let tmp = TempDir::new("suffix");
        {
            let (mut store, _) = open(tmp.path());
            store.append(b"old").unwrap();
            store.commit_snapshot(b"state@1").unwrap();
            store.append(b"new-1").unwrap();
            store.append(b"new-2").unwrap();
        }
        let (_, rec) = open(tmp.path());
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state@1"[..]));
        assert_eq!(rec.applied_through, 1);
        let payloads: Vec<&[u8]> = rec.entries.iter().map(|e| e.payload.as_slice()).collect();
        assert_eq!(payloads, vec![&b"new-1"[..], &b"new-2"[..]]);
    }

    #[test]
    fn torn_final_frame_is_truncated_and_survivors_kept() {
        let tmp = TempDir::new("torn");
        {
            let (mut store, _) = open(tmp.path());
            store.append(b"intact-1").unwrap();
            store.append(b"intact-2").unwrap();
        }
        // Simulate a crash mid-append: half a frame of garbage.
        let journal = tmp.path().join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&journal).unwrap();
        f.write_all(&[0x40, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
        drop(f);

        let before = fs::metadata(&journal).unwrap().len();
        let (mut store, rec) = open(tmp.path());
        assert!(rec.torn_tail);
        assert_eq!(rec.truncated_bytes, 6);
        assert_eq!(rec.entries.len(), 2);
        assert_eq!(rec.entries[1].payload, b"intact-2");
        // The damage is physically gone and appends work again.
        assert_eq!(fs::metadata(&journal).unwrap().len(), before - 6);
        store.append(b"after-recovery").unwrap();
        let (_, rec2) = open(tmp.path());
        assert!(!rec2.torn_tail);
        assert_eq!(rec2.entries.len(), 3);
    }

    #[test]
    fn crc_damage_mid_journal_truncates_from_there() {
        let tmp = TempDir::new("crcdmg");
        {
            let (mut store, _) = open(tmp.path());
            store.append(b"first").unwrap();
            store.append(b"second").unwrap();
            store.append(b"third").unwrap();
        }
        let journal = tmp.path().join(JOURNAL_FILE);
        let mut bytes = fs::read(&journal).unwrap();
        // Flip a payload byte inside the second frame: frame 1 spans
        // 4 + (8+5) + 4 = 21 bytes, so offset 30 is in frame 2's payload.
        bytes[30] ^= 0xff;
        fs::write(&journal, &bytes).unwrap();

        let (_, rec) = open(tmp.path());
        assert!(rec.torn_tail);
        assert_eq!(rec.entries.len(), 1, "only the frame before the damage");
        assert_eq!(rec.entries[0].payload, b"first");
        // Everything from the damaged frame on was discarded.
        assert!(rec.truncated_bytes > 0);
    }

    #[test]
    fn crash_between_rename_and_truncate_filters_covered_entries() {
        let tmp = TempDir::new("renamecrash");
        let journal = tmp.path().join(JOURNAL_FILE);
        let (mut store, _) = open(tmp.path());
        store.append(b"covered-1").unwrap();
        store.append(b"covered-2").unwrap();
        // Preserve the pre-truncation journal, commit, then put the old
        // journal back — exactly the state a crash between the snapshot
        // rename and the journal truncation leaves behind.
        let old_journal = fs::read(&journal).unwrap();
        store.commit_snapshot(b"state@2").unwrap();
        drop(store);
        fs::write(&journal, &old_journal).unwrap();

        let (mut store, rec) = open(tmp.path());
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state@2"[..]));
        assert_eq!(rec.applied_through, 2);
        assert!(rec.entries.is_empty(), "covered entries must be filtered");
        // Id allocation resumes after the stale ids, not on top of them.
        assert_eq!(store.append(b"next").unwrap(), 3);
    }

    #[test]
    fn stale_tmp_snapshot_is_discarded() {
        let tmp = TempDir::new("staletmp");
        {
            let (mut store, _) = open(tmp.path());
            store.append(b"e1").unwrap();
            store.commit_snapshot(b"good").unwrap();
        }
        // A crash mid-commit leaves a half-written tmp file.
        fs::write(tmp.path().join(SNAPSHOT_TMP_FILE), b"half-written").unwrap();
        let (_, rec) = open(tmp.path());
        assert_eq!(rec.snapshot.as_deref(), Some(&b"good"[..]));
        assert!(!tmp.path().join(SNAPSHOT_TMP_FILE).exists());
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let tmp = TempDir::new("badsnap");
        {
            let (mut store, _) = open(tmp.path());
            store.append(b"e1").unwrap();
            store.commit_snapshot(b"blob").unwrap();
        }
        let snap = tmp.path().join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // break the CRC
        fs::write(&snap, &bytes).unwrap();
        match Store::open(StoreConfig::new(tmp.path())) {
            Err(StoreError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Bad magic is equally fatal.
        fs::write(&snap, b"NOTASNAPxxxxxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(
            Store::open(StoreConfig::new(tmp.path())),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn oversized_appends_rejected_and_oversized_lengths_are_torn() {
        let tmp = TempDir::new("oversize");
        let mut cfg = StoreConfig::new(tmp.path());
        cfg.max_entry_bytes = 64;
        let (mut store, _) = Store::open(cfg.clone()).unwrap();
        assert!(matches!(
            store.append(&[0u8; 100]),
            Err(StoreError::Invalid(_))
        ));
        store.append(b"fits").unwrap();
        drop(store);
        // A length prefix beyond the cap (e.g. u32::MAX, which would
        // also overflow 32-bit `4 + len + 4` arithmetic) is torn tail,
        // not a panic.
        let journal = tmp.path().join(JOURNAL_FILE);
        let mut f = OpenOptions::new().append(true).open(&journal).unwrap();
        f.write_all(&u32::MAX.to_le_bytes()).unwrap();
        f.write_all(&[0u8; 16]).unwrap();
        drop(f);
        let (_, rec) = Store::open(cfg).unwrap();
        assert!(rec.torn_tail);
        assert_eq!(rec.entries.len(), 1);
    }

    #[test]
    fn snapshot_due_follows_cadence() {
        let tmp = TempDir::new("cadence");
        let mut cfg = StoreConfig::new(tmp.path());
        cfg.snapshot_every_entries = 3;
        let (mut store, _) = Store::open(cfg).unwrap();
        store.append(b"1").unwrap();
        store.append(b"2").unwrap();
        assert!(!store.snapshot_due());
        store.append(b"3").unwrap();
        assert!(store.snapshot_due());
        store.commit_snapshot(b"s").unwrap();
        assert!(!store.snapshot_due());
    }

    #[test]
    fn zero_config_guard() {
        let tmp = TempDir::new("guard");
        let mut cfg = StoreConfig::new(tmp.path());
        cfg.max_entry_bytes = 0;
        assert!(Store::open(cfg).is_err());
    }
}
