//! Protocol v2 negotiation and back-compat suite:
//!
//! 1. a v1 client against a v2 server negotiates down, and
//!    `send_column` silently falls back to per-record `Batch` frames —
//!    same acks, no strikes, no quarantine;
//! 2. a client offering a *future* version is negotiated down to v2
//!    rather than rejected;
//! 3. a pre-v1 (version 0) `Hello` is refused with `ERR_VERSION`;
//! 4. a columnar frame on a v1-negotiated session is intact-but-invalid:
//!    each one draws `ERR_MALFORMED` and a strike, and the strike
//!    threshold quarantines the session — exactly the sample-gate
//!    mirror the record path uses;
//! 5. a spectrum query on a v1-negotiated session is gated the same way:
//!    strikes, then quarantine — v2 capabilities never leak down.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use aging_memsim::Counter;
use aging_serve::codec::FrameDecoder;
use aging_serve::protocol::{
    counter_code, encode_frame, Frame, DEFAULT_MAX_FRAME, ERR_MALFORMED, ERR_QUARANTINED,
    ERR_VERSION, PROTOCOL_VERSION, PROTOCOL_VERSION_V2,
};
use aging_serve::{ServeClient, ServeConfig, Server};

fn test_server() -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServeConfig::new(aging_serve::test_detectors()),
    )
    .expect("bind server")
}

/// Reads frames off a raw socket until one arrives or the peer closes.
fn read_frame(stream: &mut TcpStream, dec: &mut FrameDecoder) -> Option<Frame> {
    let mut buf = [0u8; 4096];
    loop {
        match dec.next_payload() {
            Ok(Some(payload)) => {
                return Some(Frame::decode_payload(&payload).expect("server frames decode"))
            }
            Ok(None) => {}
            Err(_) => return None,
        }
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => dec.feed(&buf[..n]),
            Err(_) => return None,
        }
    }
}

fn raw_connect(addr: SocketAddr) -> (TcpStream, FrameDecoder) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    (stream, FrameDecoder::new(DEFAULT_MAX_FRAME))
}

#[test]
fn v1_client_negotiates_down_and_send_column_falls_back_to_batches() {
    let server = test_server();
    let mut client =
        ServeClient::connect_with_version(server.local_addr(), "v1-feeder", PROTOCOL_VERSION)
            .expect("v1 connect");
    assert_eq!(client.version(), PROTOCOL_VERSION, "server must echo v1");

    let times: Vec<f64> = (0..50).map(|i| i as f64 * 5.0).collect();
    let values: Vec<f64> = (0..50).map(|i| 1e6 - i as f64 * 100.0).collect();
    let frames = client
        .send_column(7, counter_code(Counter::AvailableBytes), &times, &values)
        .expect("column falls back to record batches");
    assert!(frames >= 1, "fallback must actually send");
    client.machine_done(7).expect("machine done");
    client.flush().expect("flush");
    assert_eq!(client.records_accepted(), 50, "every record acked");
    client.bye().expect("bye");

    let outcome = server.shutdown();
    assert_eq!(outcome.wire.records, 50);
    assert_eq!(
        outcome.wire.malformed_frames, 0,
        "the v1 fallback must never draw a strike"
    );
    assert_eq!(outcome.wire.quarantined, 0);
    assert_eq!(outcome.wire.session_panics, 0);
}

#[test]
fn future_version_client_is_negotiated_down_to_v2() {
    let server = test_server();
    let client = ServeClient::connect_with_version(
        server.local_addr(),
        "from-the-future",
        PROTOCOL_VERSION_V2 + 5,
    )
    .expect("future-version connect");
    assert_eq!(
        client.version(),
        PROTOCOL_VERSION_V2,
        "server caps negotiation at its own maximum"
    );
    // The default constructor offers v2 and lands on v2.
    let default_client =
        ServeClient::connect(server.local_addr(), "default").expect("default connect");
    assert_eq!(default_client.version(), PROTOCOL_VERSION_V2);
    server.shutdown();
}

#[test]
fn version_zero_hello_is_refused() {
    let server = test_server();
    let (mut stream, mut dec) = raw_connect(server.local_addr());
    stream
        .write_all(&encode_frame(&Frame::Hello {
            version: 0,
            name: "ancient".into(),
        }))
        .expect("send hello");
    let reply = read_frame(&mut stream, &mut dec).expect("server replies before closing");
    let Frame::Error { code, message } = reply else {
        panic!("expected an error frame, got {reply:?}");
    };
    assert_eq!(code, ERR_VERSION, "{message}");
    assert!(
        read_frame(&mut stream, &mut dec).is_none(),
        "connection closes after the version refusal"
    );
    server.shutdown();
}

#[test]
fn columnar_frame_on_v1_session_strikes_then_quarantines() {
    let server = test_server();
    let (mut stream, mut dec) = raw_connect(server.local_addr());
    stream
        .write_all(&encode_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
            name: "v1-but-columnar".into(),
        }))
        .expect("send hello");
    let ack = read_frame(&mut stream, &mut dec).expect("hello ack");
    let Frame::HelloAck { version, .. } = ack else {
        panic!("expected HelloAck, got {ack:?}");
    };
    assert_eq!(version, PROTOCOL_VERSION);

    // A perfectly well-formed columnar frame — just illegal on a v1
    // session. Each draws ERR_MALFORMED; the third quarantines.
    let mut saw_quarantine = false;
    for seq in 1..=3u64 {
        stream
            .write_all(&encode_frame(&Frame::BatchColumnar {
                seq,
                machine_id: 1,
                counter: counter_code(Counter::AvailableBytes),
                t0: 0.0,
                dt_units: vec![5 << 20],
                values: vec![1e6, 1e6 - 100.0],
            }))
            .expect("send columnar frame");
        let reply = read_frame(&mut stream, &mut dec).expect("strike reply");
        let Frame::Error { code, message } = reply else {
            panic!("expected an error frame, got {reply:?}");
        };
        assert_eq!(code, ERR_MALFORMED, "strike {seq}: {message}");
        assert!(
            message.contains("protocol v2"),
            "the strike names the version gate: {message}"
        );
        if seq == 3 {
            let last = read_frame(&mut stream, &mut dec).expect("quarantine notice");
            let Frame::Error { code, .. } = last else {
                panic!("expected the quarantine error, got {last:?}");
            };
            assert_eq!(code, ERR_QUARANTINED);
            saw_quarantine = true;
        }
    }
    assert!(saw_quarantine);

    let outcome = server.shutdown();
    assert_eq!(outcome.wire.quarantined, 1, "exactly this session");
    assert_eq!(outcome.wire.malformed_frames, 3);
    assert_eq!(outcome.wire.records, 0, "no column was ever applied");
    assert_eq!(outcome.wire.session_panics, 0);
}

#[test]
fn spectrum_query_on_v1_session_strikes_then_quarantines() {
    let server = test_server();
    let (mut stream, mut dec) = raw_connect(server.local_addr());
    stream
        .write_all(&encode_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
            name: "v1-but-curious".into(),
        }))
        .expect("send hello");
    let ack = read_frame(&mut stream, &mut dec).expect("hello ack");
    let Frame::HelloAck { version, .. } = ack else {
        panic!("expected HelloAck, got {ack:?}");
    };
    assert_eq!(version, PROTOCOL_VERSION);

    // A perfectly well-formed spectrum query — just illegal on a v1
    // session. Each draws ERR_MALFORMED; the third quarantines.
    let mut saw_quarantine = false;
    for attempt in 1..=3u32 {
        stream
            .write_all(&encode_frame(&Frame::QuerySpectrum { machine_id: 1 }))
            .expect("send spectrum query");
        let reply = read_frame(&mut stream, &mut dec).expect("strike reply");
        let Frame::Error { code, message } = reply else {
            panic!("expected an error frame, got {reply:?}");
        };
        assert_eq!(code, ERR_MALFORMED, "strike {attempt}: {message}");
        assert!(
            message.contains("protocol v2"),
            "the strike names the version gate: {message}"
        );
        if attempt == 3 {
            let last = read_frame(&mut stream, &mut dec).expect("quarantine notice");
            let Frame::Error { code, .. } = last else {
                panic!("expected the quarantine error, got {last:?}");
            };
            assert_eq!(code, ERR_QUARANTINED);
            saw_quarantine = true;
        }
    }
    assert!(saw_quarantine);

    let outcome = server.shutdown();
    assert_eq!(outcome.wire.quarantined, 1, "exactly this session");
    assert_eq!(outcome.wire.malformed_frames, 3);
    assert_eq!(outcome.wire.session_panics, 0);
}
