//! # aging-timeseries
//!
//! Foundation crate of the `holder-aging` workspace — the reproduction of
//! *"Software Aging and Multifractality of Memory Resources"*
//! (Shereshevsky, Cukic, Crowell, Gandikota, Liu — DSN 2003).
//!
//! It provides the uniformly sampled [`TimeSeries`] container plus the
//! statistical machinery every layer above relies on:
//!
//! - [`stats`] — descriptive statistics and summaries,
//! - [`window`] — sliding windows, blocks and scale grids,
//! - [`detrend`] — mean/linear/polynomial detrending and differencing,
//! - [`regression`] — OLS, log–log and Theil–Sen fits with diagnostics,
//! - [`trend`] — Mann–Kendall trend test and Sen's slope (the classical
//!   software-aging predictors used as baselines in the paper),
//! - [`interp`] — NaN gap repair for monitor logs,
//! - [`ring`] — fixed-capacity sample store with O(1) windowed statistics
//!   (the bounded-memory backbone of the streaming subsystem).
//!
//! # Examples
//!
//! ```
//! use aging_timeseries::{TimeSeries, trend::SenSlope};
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! // A leaking resource sampled every 30 s.
//! let free_mem = TimeSeries::from_fn(0.0, 30.0, 100, |t| 1e6 - 50.0 * t)?;
//! let sen = SenSlope::estimate(free_mem.values(), free_mem.dt())?;
//! assert!(sen.slope < 0.0); // depleting
//! let eta = sen.time_to_level(0.0).expect("depleting series crosses zero");
//! assert!((eta - 20_000.0).abs() < 1.0); // 1e6 / 50 = 20 000 s
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod series;

pub mod acf;
pub mod changepoint;
pub mod csv;
pub mod detrend;
pub mod interp;
pub mod persist;
pub mod regression;
pub mod ring;
pub mod smooth;
pub mod stats;
pub mod trend;
pub mod window;

pub use error::{Error, Result};
pub use series::TimeSeries;
