//! End-to-end detector benchmarks: offline analysis of a full monitor log
//! and per-sample streaming cost.

use aging_core::detector::{analyze, DetectorConfig, HolderDimensionDetector};
use aging_memsim::{simulate, Counter, Scenario};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_detector(c: &mut Criterion) {
    // Pre-simulate a 20 h NT4 log (~2400 samples).
    let report = simulate(&Scenario::aging_web_server(9), 20.0 * 3600.0).unwrap();
    let series = report.log.series(Counter::AvailableBytes).unwrap();
    let values = series.values().to_vec();

    let mut group = c.benchmark_group("detector");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("offline-analyze", |b| {
        b.iter(|| analyze(std::hint::black_box(&values), &DetectorConfig::default()).unwrap())
    });
    group.bench_function("streaming-push", |b| {
        b.iter(|| {
            let mut det = HolderDimensionDetector::new(DetectorConfig::default()).unwrap();
            for &v in &values {
                let _ = det.push(std::hint::black_box(v)).unwrap();
            }
            det.is_alarmed()
        })
    });
    group.finish();

    // Baseline comparison: Sen-slope predictor over the same log.
    use aging_core::baseline::{AgingPredictor, SenSlopePredictor, TrendPredictorConfig};
    c.bench_function("detector/sen-slope-predictor", |b| {
        b.iter(|| {
            let mut p = SenSlopePredictor::new(TrendPredictorConfig::depleting(30.0)).unwrap();
            for &v in &values {
                let _ = p.push(std::hint::black_box(v)).unwrap();
            }
            p.is_alarmed()
        })
    });
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
