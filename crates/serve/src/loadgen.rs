//! Load generator: drives N concurrent synthetic machines from memsim
//! scenarios into a running server.
//!
//! Each worker thread owns one [`ServeClient`] connection and a slice of
//! the fleet's [`ScenarioFeeder`]s, interleaving their ticks into record
//! batches at a configurable aggregate rate. A separate poller
//! connection repeatedly fetches the released alarm history, measuring
//! how long an alarm takes to become visible after the sample that made
//! it decidable was sent (send-to-visibility latency; its floor is the
//! poll interval).
//!
//! With [`drive`], machine ids are the scenario indices, so the report's
//! alarm history is directly comparable with an offline
//! [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor) run
//! over the same scenario slice — the E14 parity setup. A sharded
//! cluster partitions one global fleet across several servers, so each
//! shard's driver publishes under the *global* ids of the machines it
//! owns via [`drive_with_ids`].

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aging_memsim::{Counter, Machine, Scenario};
use aging_stream::telemetry::LatencyHistogram;
use aging_timeseries::{Error, Result};

use crate::client::ServeClient;
use crate::protocol::{counter_code, Record, ServeEvent};

/// How the feeders frame records on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Per-record `Batch` frames (protocol v1).
    #[default]
    Record,
    /// Columnar `BatchColumnar` frames (protocol v2): delta-encoded
    /// per-counter columns.
    Columnar,
}

/// Load generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Concurrent feeder connections; machines are dealt round-robin.
    pub connections: usize,
    /// Records per batch frame.
    pub batch_records: usize,
    /// Aggregate record rate across all connections; `0.0` = unthrottled.
    pub rate_records_per_sec: f64,
    /// Alarm poll interval for the visibility poller; `0` disables it.
    pub poll_alarms_ms: u64,
    /// Counters shipped per tick, in detector order. Empty = all
    /// counters. Must cover the server's detector set for parity runs.
    pub counters: Vec<Counter>,
    /// Wire framing: per-record batches or v2 columnar batches.
    pub mode: BatchMode,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            connections: 4,
            batch_records: 64,
            rate_records_per_sec: 0.0,
            poll_alarms_ms: 50,
            counters: Vec::new(),
            mode: BatchMode::Record,
        }
    }
}

impl LoadgenConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on zero connections or batch
    /// size, or a negative rate.
    pub fn validate(&self) -> Result<()> {
        if self.connections == 0 {
            return Err(Error::invalid("connections", "must be at least 1"));
        }
        if self.batch_records == 0 {
            return Err(Error::invalid("batch_records", "must be at least 1"));
        }
        if self.rate_records_per_sec < 0.0 || !self.rate_records_per_sec.is_finite() {
            return Err(Error::invalid(
                "rate_records_per_sec",
                "must be finite and non-negative",
            ));
        }
        Ok(())
    }
}

/// What a load-generation run produced.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Records sent across all connections.
    pub records_sent: u64,
    /// Records the server acked as accepted.
    pub records_accepted: u64,
    /// Batch frames sent.
    pub batches: u64,
    /// Wall-clock duration of the feeding phase, seconds.
    pub wall_secs: f64,
    /// Ack round-trip latency (one sample per batch) — the ingest
    /// latency a feeder observes.
    pub ack_rtt: LatencyHistogram,
    /// Send-to-visibility latency for released alarms, as seen by the
    /// poller. Empty when polling is disabled.
    pub alarm_visibility: LatencyHistogram,
    /// Visibility observations whose clock pair was inverted (the poll
    /// instant predated the recorded send instant, so the measurement
    /// was clamped to zero rather than silently folded into the
    /// histogram's lowest bucket). A non-zero count means the
    /// `alarm_visibility` floor is measurement noise, not real latency.
    pub visibility_clamped: u64,
    /// Advisory `Busy` frames received across connections.
    pub busy_frames: u64,
    /// The complete released alarm history fetched after all feeds
    /// finished (every machine done ⇒ the watermark releases everything).
    pub alarms: Vec<ServeEvent>,
    /// Per machine: simulated crash time, `None` for survivors.
    pub crash_times: Vec<(u64, Option<f64>)>,
}

impl LoadgenReport {
    /// Sustained ingest throughput, records per wall-clock second.
    pub fn records_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.records_sent as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Steps one memsim scenario and turns each monitor tick into wire
/// records — the client-side mirror of the supervisor's machine feed.
#[derive(Debug)]
pub struct ScenarioFeeder {
    machine_id: u64,
    machine: Machine,
    consumed: usize,
    horizon_secs: f64,
    crash_time_secs: Option<f64>,
    finished: bool,
}

impl ScenarioFeeder {
    /// Boots the scenario.
    ///
    /// # Errors
    ///
    /// Propagates scenario validation from [`Machine::boot`].
    pub fn new(machine_id: u64, scenario: &Scenario, horizon_secs: f64) -> Result<ScenarioFeeder> {
        Ok(ScenarioFeeder {
            machine_id,
            machine: Machine::boot(scenario)?,
            consumed: 0,
            horizon_secs,
            crash_time_secs: None,
            finished: false,
        })
    }

    /// The wire machine id this feeder publishes under.
    pub fn machine_id(&self) -> u64 {
        self.machine_id
    }

    /// `true` once the feed ended (crash or horizon).
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Simulated crash time, `None` while alive / for survivors.
    pub fn crash_time_secs(&self) -> Option<f64> {
        self.crash_time_secs
    }

    /// Appends one monitor tick (one record per counter, in `counters`
    /// order) to `out`; `false` when the feed just ended.
    pub fn next_tick(&mut self, counters: &[Counter], out: &mut Vec<Record>) -> bool {
        if self.finished {
            return false;
        }
        // Same stepping rule as the supervisor's shard feed: advance the
        // simulation until the monitor publishes a new row, stopping at
        // the horizon or on a crash.
        while self.machine.log().len() == self.consumed {
            if self.machine.now().as_secs() >= self.horizon_secs {
                self.finished = true;
                return false;
            }
            if let Some(crash) = self.machine.step() {
                self.crash_time_secs = Some(crash.time.as_secs());
                self.finished = true;
                return false;
            }
        }
        self.consumed += 1;
        let Some(sample) = self.machine.last_sample() else {
            self.finished = true;
            return false;
        };
        let time_secs = sample.time.as_secs();
        for &counter in counters {
            out.push(Record {
                machine_id: self.machine_id,
                counter: counter_code(counter),
                time_secs,
                value: sample.value(counter),
            });
        }
        true
    }
}

/// Per-machine log of "a batch whose newest tick is T was sent at this
/// wall instant" — what the poller consults to date an alarm's
/// decidability.
type FrontierLog = Mutex<HashMap<u64, Vec<(f64, Instant)>>>;

/// Drives `scenarios` into the server at `addr` and reports throughput,
/// latency and the final alarm history.
///
/// # Errors
///
/// Propagates config validation, scenario boot failures and any
/// connection's socket error.
pub fn drive(
    addr: SocketAddr,
    scenarios: &[Scenario],
    horizon_secs: f64,
    cfg: &LoadgenConfig,
) -> Result<LoadgenReport> {
    let machine_ids: Vec<u64> = (0..scenarios.len() as u64).collect();
    drive_with_ids(addr, scenarios, &machine_ids, horizon_secs, cfg)
}

/// [`drive`] with explicit wire machine ids: `scenarios[i]` publishes
/// under `machine_ids[i]` instead of its index.
///
/// This is the shard-local entry point of a cluster fleet drive: the
/// router partitions global machine ids across shards, and each shard's
/// driver replays exactly the scenarios it owns under their global ids,
/// so the aggregator's merged history lines up with a whole-fleet
/// offline run.
///
/// # Errors
///
/// Propagates everything [`drive`] can fail with, plus
/// [`Error::InvalidParameter`] when `machine_ids` and `scenarios`
/// disagree in length or contain a duplicate id.
pub fn drive_with_ids(
    addr: SocketAddr,
    scenarios: &[Scenario],
    machine_ids: &[u64],
    horizon_secs: f64,
    cfg: &LoadgenConfig,
) -> Result<LoadgenReport> {
    cfg.validate()?;
    if scenarios.is_empty() {
        return Err(Error::invalid("scenarios", "need at least one machine"));
    }
    if machine_ids.len() != scenarios.len() {
        return Err(Error::invalid(
            "machine_ids",
            "must name exactly one id per scenario",
        ));
    }
    {
        let mut sorted = machine_ids.to_vec();
        sorted.sort_unstable();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return Err(Error::invalid("machine_ids", "ids must be unique"));
        }
    }
    if !(horizon_secs > 0.0) {
        return Err(Error::invalid("horizon_secs", "must be positive"));
    }
    let counters: Vec<Counter> = if cfg.counters.is_empty() {
        Counter::ALL.to_vec()
    } else {
        cfg.counters.clone()
    };

    let workers = cfg.connections.min(scenarios.len());
    // Deal machines round-robin so each connection carries a similar mix.
    let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for idx in 0..scenarios.len() {
        assignments[idx % workers].push(idx);
    }
    let per_worker_rate = if cfg.rate_records_per_sec > 0.0 {
        cfg.rate_records_per_sec / workers as f64
    } else {
        0.0
    };

    let frontier: FrontierLog = Mutex::new(HashMap::new());
    let feeding_done = AtomicBool::new(false);

    // Both modes simulate every feed up front so the timed wall below
    // measures the wire-and-ingest path alone, never scenario stepping.
    // Columnar has always done this; record mode replays the same
    // pre-generated ticks as v1 frames, so the e14 record baseline is an
    // honest apples-to-apples wire+ingest number.
    let feeds: Vec<MachineFeed> = scenarios
        .iter()
        .zip(machine_ids)
        .map(|(scenario, &id)| generate_feed(id, scenario, horizon_secs, &counters))
        .collect::<Result<Vec<_>>>()?;
    let feeds: &[MachineFeed] = &feeds;
    let started = Instant::now();

    let (worker_results, poll_result) = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for machine_indices in &assignments {
            let frontier = &frontier;
            let counters = &counters;
            let handle = match cfg.mode {
                BatchMode::Columnar => scope.spawn(move || {
                    feed_worker_columnar(
                        addr,
                        feeds,
                        machine_indices,
                        counters,
                        cfg.batch_records,
                        per_worker_rate,
                        frontier,
                    )
                }),
                BatchMode::Record => scope.spawn(move || {
                    feed_worker_record(
                        addr,
                        feeds,
                        machine_indices,
                        counters,
                        cfg.batch_records,
                        per_worker_rate,
                        frontier,
                    )
                }),
            };
            handles.push(handle);
        }
        let poller = if cfg.poll_alarms_ms > 0 {
            let frontier = &frontier;
            let feeding_done = &feeding_done;
            let interval = Duration::from_millis(cfg.poll_alarms_ms);
            Some(scope.spawn(move || poll_worker(addr, interval, frontier, feeding_done)))
        } else {
            None
        };
        let worker_results: Vec<_> = handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(Error::Io("feed worker panicked".into())))
            })
            .collect();
        feeding_done.store(true, Ordering::SeqCst);
        let poll_result = poller.map(|h| {
            h.join()
                .unwrap_or_else(|_| Err(Error::Io("alarm poller panicked".into())))
        });
        (worker_results, poll_result)
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let mut report = LoadgenReport {
        records_sent: 0,
        records_accepted: 0,
        batches: 0,
        wall_secs,
        ack_rtt: LatencyHistogram::default(),
        alarm_visibility: LatencyHistogram::default(),
        visibility_clamped: 0,
        busy_frames: 0,
        alarms: Vec::new(),
        crash_times: Vec::new(),
    };
    for result in worker_results {
        let worker = result?;
        report.records_sent += worker.records_sent;
        report.records_accepted += worker.records_accepted;
        report.batches += worker.batches;
        report.ack_rtt.merge(&worker.ack_rtt);
        report.busy_frames += worker.busy_frames;
        report.crash_times.extend(worker.crash_times);
    }
    report.crash_times.sort_by_key(|&(id, _)| id);
    if let Some(polled) = poll_result {
        let (visibility, clamped) = polled?;
        report.alarm_visibility = visibility;
        report.visibility_clamped = clamped;
    }

    // Every machine is done, so the watermark has released the complete
    // history; fetch it on a fresh connection.
    let mut client = ServeClient::connect(addr, "loadgen-final")?;
    report.alarms = client.query_alarms_all()?;
    client.bye()?;
    Ok(report)
}

struct WorkerOutcome {
    records_sent: u64,
    records_accepted: u64,
    batches: u64,
    ack_rtt: LatencyHistogram,
    busy_frames: u64,
    crash_times: Vec<(u64, Option<f64>)>,
}

/// Replays pre-generated feeds as v1 per-record batches, one tick per
/// machine per round-robin pass — byte-for-byte the wire traffic the old
/// live-stepping worker produced, with the simulation cost moved outside
/// the timed wall.
fn feed_worker_record(
    addr: SocketAddr,
    feeds: &[MachineFeed],
    machine_indices: &[usize],
    counters: &[Counter],
    batch_records: usize,
    rate_records_per_sec: f64,
    frontier: &FrontierLog,
) -> Result<WorkerOutcome> {
    let mut client = ServeClient::connect(addr, "loadgen-feeder")?;
    let started = Instant::now();
    let mut records_sent = 0u64;
    let mut batches = 0u64;
    let mut batch: Vec<Record> = Vec::with_capacity(batch_records + counters.len());
    // cursor == ticks ⇒ the done marker is still owed; ticks + 1 ⇒ done.
    let mut cursors = vec![0usize; machine_indices.len()];

    loop {
        let mut progressed = false;
        for (slot, &idx) in machine_indices.iter().enumerate() {
            let feed = &feeds[idx];
            let cursor = cursors[slot];
            if cursor > feed.times.len() {
                continue;
            }
            if cursor < feed.times.len() {
                let time_secs = feed.times[cursor];
                for (counter, column) in counters.iter().zip(&feed.columns) {
                    batch.push(Record {
                        machine_id: feed.machine_id,
                        counter: counter_code(*counter),
                        time_secs,
                        value: column[cursor],
                    });
                }
                cursors[slot] = cursor + 1;
                progressed = true;
            } else {
                // Flush first: the server must see every record of this
                // machine before its done marker, or the pipeline would
                // finish on a stale tick and the late records would
                // resurrect the feed with its tail events stuck pending.
                if !batch.is_empty() {
                    let flushed = batch.len() as u64;
                    flush_batch(&mut client, &mut batch, frontier)?;
                    records_sent += flushed;
                    batches += 1;
                }
                client.machine_done(feed.machine_id)?;
                cursors[slot] = feed.times.len() + 1;
            }
            if batch.len() >= batch_records {
                let flushed = batch.len() as u64;
                flush_batch(&mut client, &mut batch, frontier)?;
                records_sent += flushed;
                batches += 1;
                throttle(records_sent, rate_records_per_sec, started);
            }
        }
        if !progressed {
            break;
        }
    }
    if !batch.is_empty() {
        records_sent += batch.len() as u64;
        flush_batch(&mut client, &mut batch, frontier)?;
        batches += 1;
    }
    client.flush()?;
    let records_accepted = client.records_accepted();
    let busy_frames = client.busy_frames();
    let ack_rtt = client.bye()?;
    Ok(WorkerOutcome {
        records_sent,
        records_accepted,
        batches,
        ack_rtt,
        busy_frames,
        crash_times: machine_indices
            .iter()
            .map(|&idx| (feeds[idx].machine_id, feeds[idx].crash_time_secs))
            .collect(),
    })
}

/// One machine's fully simulated feed: tick times plus one value column
/// per configured counter, generated before the timed wall in both wire
/// modes.
struct MachineFeed {
    machine_id: u64,
    times: Vec<f64>,
    /// `columns[c][t]` = value of `counters[c]` at tick `t`.
    columns: Vec<Vec<f64>>,
    crash_time_secs: Option<f64>,
}

fn generate_feed(
    machine_id: u64,
    scenario: &Scenario,
    horizon_secs: f64,
    counters: &[Counter],
) -> Result<MachineFeed> {
    let mut feeder = ScenarioFeeder::new(machine_id, scenario, horizon_secs)?;
    let mut feed = MachineFeed {
        machine_id,
        times: Vec::new(),
        columns: vec![Vec::new(); counters.len()],
        crash_time_secs: None,
    };
    let mut records: Vec<Record> = Vec::with_capacity(counters.len());
    while feeder.next_tick(counters, &mut records) {
        let Some(first) = records.first() else {
            continue;
        };
        feed.times.push(first.time_secs);
        for (column, record) in feed.columns.iter_mut().zip(&records) {
            column.push(record.value);
        }
        records.clear();
    }
    feed.crash_time_secs = feeder.crash_time_secs();
    Ok(feed)
}

/// Ships pre-generated feeds as v2 columnar frames, chunk-interleaved
/// across this worker's machines like the record-mode tick interleave.
fn feed_worker_columnar(
    addr: SocketAddr,
    feeds: &[MachineFeed],
    machine_indices: &[usize],
    counters: &[Counter],
    batch_records: usize,
    rate_records_per_sec: f64,
    frontier: &FrontierLog,
) -> Result<WorkerOutcome> {
    let mut client = ServeClient::connect(addr, "loadgen-feeder")?;
    let started = Instant::now();
    let mut records_sent = 0u64;
    let mut batches = 0u64;
    // A chunk carries about `batch_records` records across the counter
    // columns, matching record-mode batch sizing.
    let ticks_per_chunk = (batch_records / counters.len().max(1)).max(1);
    let mut cursors = vec![0usize; machine_indices.len()];
    let mut remaining = machine_indices.len();
    while remaining > 0 {
        for (slot, &idx) in machine_indices.iter().enumerate() {
            let cursor = cursors[slot];
            let feed = &feeds[idx];
            if cursor > feed.times.len() {
                continue; // already done
            }
            if cursor == feed.times.len() {
                client.machine_done(feed.machine_id)?;
                cursors[slot] = feed.times.len() + 1;
                remaining -= 1;
                continue;
            }
            let end = (cursor + ticks_per_chunk).min(feed.times.len());
            let times = &feed.times[cursor..end];
            for (counter, column) in counters.iter().zip(&feed.columns) {
                batches += client.send_column(
                    feed.machine_id,
                    counter_code(*counter),
                    times,
                    &column[cursor..end],
                )?;
                records_sent += times.len() as u64;
            }
            cursors[slot] = end;
            let now = Instant::now();
            let newest = times[times.len() - 1];
            let mut log = frontier.lock().unwrap_or_else(|p| p.into_inner());
            let entries = log.entry(feed.machine_id).or_default();
            if entries.last().is_none_or(|&(t, _)| newest > t) {
                entries.push((newest, now));
            }
            drop(log);
            throttle(records_sent, rate_records_per_sec, started);
        }
    }
    client.flush()?;
    let records_accepted = client.records_accepted();
    let busy_frames = client.busy_frames();
    let ack_rtt = client.bye()?;
    Ok(WorkerOutcome {
        records_sent,
        records_accepted,
        batches,
        ack_rtt,
        busy_frames,
        crash_times: machine_indices
            .iter()
            .map(|&idx| (feeds[idx].machine_id, feeds[idx].crash_time_secs))
            .collect(),
    })
}

fn flush_batch(
    client: &mut ServeClient,
    batch: &mut Vec<Record>,
    frontier: &FrontierLog,
) -> Result<()> {
    client.send_batch(batch)?;
    let now = Instant::now();
    let mut log = frontier.lock().unwrap_or_else(|p| p.into_inner());
    for rec in batch.iter() {
        let entries = log.entry(rec.machine_id).or_default();
        if entries.last().is_none_or(|&(t, _)| rec.time_secs > t) {
            entries.push((rec.time_secs, now));
        }
    }
    batch.clear();
    Ok(())
}

fn throttle(records_sent: u64, rate_records_per_sec: f64, started: Instant) {
    if rate_records_per_sec <= 0.0 {
        return;
    }
    let target = records_sent as f64 / rate_records_per_sec;
    let actual = started.elapsed().as_secs_f64();
    if target > actual {
        std::thread::sleep(Duration::from_secs_f64((target - actual).min(0.25)));
    }
}

/// Polls the alarm history, dating each newly visible event against the
/// frontier log: an event at machine time T became decidable when the
/// first batch with a strictly later tick for that machine was sent.
fn poll_worker(
    addr: SocketAddr,
    interval: Duration,
    frontier: &FrontierLog,
    feeding_done: &AtomicBool,
) -> Result<(LatencyHistogram, u64)> {
    let mut client = ServeClient::connect(addr, "loadgen-poller")?;
    let mut visibility = LatencyHistogram::default();
    let mut clamped = 0u64;
    let mut seen = 0u64;
    loop {
        let done_before_poll = feeding_done.load(Ordering::SeqCst);
        let (total, chunk) = client.query_alarms(seen)?;
        let now = Instant::now();
        if !chunk.is_empty() {
            let log = frontier.lock().unwrap_or_else(|p| p.into_inner());
            for event in &chunk {
                if let Some(entries) = log.get(&event.machine_id) {
                    let sent_at = entries
                        .iter()
                        .find(|&&(t, _)| t > event.time_secs)
                        .or_else(|| entries.last())
                        .map(|&(_, at)| at);
                    if let Some(at) = sent_at {
                        // An inverted clock pair (the event polled before
                        // its frontier entry was stamped) records as zero
                        // but is counted, so the report can tell a true
                        // sub-bucket latency from a clamped artefact.
                        match now.checked_duration_since(at) {
                            Some(elapsed) => visibility.record(elapsed),
                            None => {
                                clamped += 1;
                                visibility.record(Duration::ZERO);
                            }
                        }
                    }
                }
            }
            seen += chunk.len() as u64;
        }
        if done_before_poll && seen >= total && chunk.is_empty() {
            break;
        }
        std::thread::sleep(interval);
    }
    client.bye()?;
    Ok((visibility, clamped))
}
