//! Wire protocol: frame layout, payload encodings and the event codec.
//!
//! # Frame layout
//!
//! Every binary frame on the wire is
//!
//! ```text
//! ┌──────────────┬───────────────────┬────────────────────┐
//! │ len: u32 LE  │ payload (len B)   │ crc: u32 LE        │
//! └──────────────┴───────────────────┴────────────────────┘
//! ```
//!
//! where `crc` is the CRC-32 (IEEE, reflected) of the payload bytes and
//! `len` must be in `1..=max_frame` (negotiated in the handshake, default
//! [`DEFAULT_MAX_FRAME`]). A zero or oversized `len`, or a CRC mismatch,
//! means framing is lost: the receiver cannot trust any later byte
//! boundary and must drop the connection ([`crate::codec::CorruptStream`]).
//! A frame that passes CRC but whose payload does not parse is *malformed*
//! but consumable — the receiver skips it, counts a strike, and keeps the
//! session (until the strike quarantine threshold).
//!
//! The first payload byte is the frame kind tag; multi-byte integers are
//! little-endian; floats travel as their IEEE-754 bit patterns
//! (`f64::to_bits`), so NaN payloads survive the round trip bit-exactly.
//! Strings are UTF-8 with a `u16` length prefix.
//!
//! # Version negotiation
//!
//! The client opens with [`Frame::Hello`] carrying its highest spoken
//! version; the server answers [`Frame::HelloAck`] whose `version` is the
//! *negotiated* version — the minimum of the client's and the server's
//! ([`PROTOCOL_VERSION_V2`]) — plus the credit `window` (max unacked
//! batches the client may have in flight) and `max_frame`. A client
//! version below [`PROTOCOL_VERSION`] is answered with [`Frame::Error`]
//! (code [`ERR_VERSION`]) and the connection closes; a version *above*
//! the server's is fine (the server negotiates down), so future clients
//! keep working against old servers.
//!
//! Version 2 adds the columnar batch frame [`Frame::BatchColumnar`]: one
//! machine and counter, delta-encoded timestamps (`u32` ticks of
//! 2⁻²⁰ s — see [`DT_UNITS_PER_SEC`]) and one contiguous value column,
//! ~12 B/record against the 25 B of a v1 [`Record`]. A columnar frame on
//! a session negotiated at v1 is malformed (strike). The delta encoding
//! is *bit-exact by construction*: [`column_delta_units`] only yields a
//! delta whose reconstruction (`prev + units/2²⁰`, the decoder's exact
//! arithmetic) reproduces the next timestamp's bit pattern, and
//! [`columnar_spans`] splits a column at every record where it cannot
//! (non-finite, non-monotone, too coarse, or `u32` overflow), so senders
//! fall back to fresh-`t0` spans rather than ship lossy deltas.
//!
//! # Text fallback
//!
//! A connection whose first five bytes are `TEXT\n` (see [`TEXT_PREAMBLE`])
//! speaks the line-delimited debug protocol instead — see
//! [`crate::codec::TextCommand`]. The preamble is unambiguous: read as a
//! binary length prefix it would be 0x54584554 ≈ 1.4 GB, far above any
//! permitted `max_frame`.

use aging_core::detector::{Alert, AlertLevel, Trigger};
use aging_memsim::Counter;
use aging_stream::detector::AlertDetail;
use aging_stream::supervisor::AlarmKind;

/// Baseline protocol version: record batches only.
pub const PROTOCOL_VERSION: u8 = 1;

/// Protocol version 2: baseline plus the columnar batch frame
/// ([`Frame::BatchColumnar`]). The highest version this crate speaks;
/// sessions negotiate `min(client, server)` in the handshake.
pub const PROTOCOL_VERSION_V2: u8 = 2;

/// Timestamp resolution of a columnar frame: delta units per second.
/// One unit is 2⁻²⁰ s (~0.95 µs) — an exact binary fraction, so scaling
/// by it never rounds and reconstruction is deterministic.
pub const DT_UNITS_PER_SEC: f64 = (1u64 << 20) as f64;

/// Default maximum frame payload size, bytes (64 KiB).
pub const DEFAULT_MAX_FRAME: u32 = 64 * 1024;

/// First bytes of a text-mode connection.
pub const TEXT_PREAMBLE: &[u8] = b"TEXT\n";

/// Error code: protocol version mismatch.
pub const ERR_VERSION: u8 = 1;
/// Error code: client quarantined (too many malformed frames, or framing
/// integrity lost).
pub const ERR_QUARANTINED: u8 = 2;
/// Error code: malformed frame (reported, connection kept).
pub const ERR_MALFORMED: u8 = 3;
/// Error code: the server could not journal the batch to its persistent
/// store; the batch is *not* acked and the connection is closed, so the
/// acked⇒durable invariant holds even under disk failure.
pub const ERR_STORE: u8 = 4;

/// One ingestion record: a counter reading of one machine at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Caller-assigned machine identity.
    pub machine_id: u64,
    /// Counter code: index into [`Counter::ALL`].
    pub counter: u8,
    /// Sample timestamp, seconds.
    pub time_secs: f64,
    /// Counter value.
    pub value: f64,
}

/// Encoded size of one [`Record`] on the wire.
pub const RECORD_BYTES: usize = 8 + 1 + 8 + 8;

/// Amortised per-record wire cost inside a [`Frame::BatchColumnar`]:
/// one `u32` timestamp delta plus one `f64` value.
pub const COLUMN_RECORD_BYTES: usize = 4 + 8;

/// Fixed wire overhead of a [`Frame::BatchColumnar`] payload: tag, seq,
/// machine id, counter code, `t0` bits and the record count.
pub const COLUMN_HEADER_BYTES: usize = 1 + 8 + 8 + 1 + 8 + 2;

/// One event in the server's watermark-ordered alarm history.
///
/// The networked analogue of [`aging_stream::supervisor::AlarmEvent`],
/// keyed by wire `machine_id` instead of a fleet slice index.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// Machine identity from the ingestion records.
    pub machine_id: u64,
    /// Stream time of the tick that produced the event, seconds.
    pub time_secs: f64,
    /// Severity.
    pub level: AlertLevel,
    /// What fired.
    pub kind: AlarmKind,
}

/// A parsed frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client handshake: protocol version and a display name.
    Hello {
        /// Client's protocol version.
        version: u8,
        /// Client display name (diagnostics only).
        name: String,
    },
    /// Server handshake reply.
    HelloAck {
        /// Server's protocol version.
        version: u8,
        /// Credit window: max unacked [`Frame::Batch`]es in flight.
        window: u16,
        /// Maximum frame payload the server accepts, bytes.
        max_frame: u32,
    },
    /// A batch of ingestion records; acked by seq.
    Batch {
        /// Client-chosen batch sequence number (echoed in the ack).
        seq: u64,
        /// The records.
        records: Vec<Record>,
    },
    /// A columnar batch (protocol v2): one machine and one counter, `N`
    /// delta-encoded timestamps and one contiguous value column. Shares
    /// the seq/ack/credit machinery of [`Frame::Batch`] — an ack for a
    /// columnar seq means the whole column is in the engine and durable.
    ///
    /// Timestamps expand as `t[0] = t0`,
    /// `t[k] = t[k-1] + dt_units[k-1] / 2²⁰` (see [`expand_column_times`]);
    /// `values.len()` must be `dt_units.len() + 1` and at least 1.
    BatchColumnar {
        /// Client-chosen batch sequence number (echoed in the ack).
        seq: u64,
        /// Machine identity shared by every record of the column.
        machine_id: u64,
        /// Counter code shared by every record of the column.
        counter: u8,
        /// Timestamp of the first record, seconds.
        t0: f64,
        /// Timestamp deltas in 2⁻²⁰ s units, one per record after the
        /// first.
        dt_units: Vec<u32>,
        /// The value column, one per record.
        values: Vec<f64>,
    },
    /// Server acknowledgement of a batch: once received, the batch's
    /// records are in the engine and its alarms survive shutdown drain.
    Ack {
        /// Sequence of the acked batch.
        seq: u64,
        /// Records accepted into pipelines (rejects carried bad counter
        /// codes).
        accepted: u16,
    },
    /// Advisory backpressure: the server is reading faster than it can
    /// process; `backlog` complete frames were buffered when it was sent.
    Busy {
        /// Buffered frame count at send time.
        backlog: u32,
    },
    /// The feed for one machine has ended (its final tick may now close).
    MachineDone {
        /// Machine whose feed ended.
        machine_id: u64,
    },
    /// Request the fleet-level status snapshot.
    QueryStatus,
    /// Fleet status as JSON — serialises [`crate::server::ServeStatus`],
    /// whose `fleet` field is the same [`aging_stream::telemetry::Snapshot`]
    /// schema the supervisor dumps.
    StatusReply {
        /// The JSON document.
        json: String,
    },
    /// Request one machine's pipeline snapshot.
    QueryMachine {
        /// Machine to query.
        machine_id: u64,
    },
    /// Per-machine snapshot as JSON
    /// ([`aging_stream::telemetry::MachineSnapshot`]); `None` if the
    /// machine is unknown.
    MachineReply {
        /// The JSON document, if the machine exists.
        json: Option<String>,
    },
    /// Request the latest per-counter spectrum widths (Δα) of one machine
    /// (protocol v2; on a v1 session this is malformed and counts a
    /// strike).
    QuerySpectrum {
        /// Machine to query.
        machine_id: u64,
    },
    /// Per-counter Δα measurements of one machine: one `(counter code,
    /// Δα)` entry for every enabled stream whose spectrum-width detector
    /// has emitted at least one window. `known = false` (and no entries)
    /// when the machine id is unknown to this server.
    SpectrumReply {
        /// Echo of the queried machine.
        machine_id: u64,
        /// Whether the machine id is known.
        known: bool,
        /// `(counter code, Δα)` pairs, in pipeline stream order.
        widths: Vec<(u8, f64)>,
    },
    /// Request the rejuvenation advisory for one machine (protocol v2;
    /// on a v1 session this is malformed and counts a strike).
    QueryRejuv {
        /// Machine to query.
        machine_id: u64,
    },
    /// Shadow-controller rejuvenation advisory for one machine: the
    /// server replays its configured [`aging_rejuv::RejuvPolicy`] over
    /// the machine's released alarm history and reports what the policy
    /// would have decided. The serve tier observes — the closed loop
    /// that actually restarts machines lives in the stream supervisor —
    /// so this is the operator's what-if surface for policy selection.
    /// `known = false` (and zeroed advice) when the machine id is
    /// unknown to this server.
    RejuvReply {
        /// Echo of the queried machine.
        machine_id: u64,
        /// Whether the machine id is known.
        known: bool,
        /// Configured policy ([`aging_rejuv::RejuvPolicy::code`]; `0`
        /// when the server has no rejuvenation config).
        policy: u8,
        /// Restarts the policy would have granted so far.
        restarts: u64,
        /// Requests the policy would have denied (cooldown or budget).
        denied: u64,
        /// Time of the last granted shadow restart, if any.
        last_restart_secs: Option<f64>,
    },
    /// Request the watermark-released alarm history from offset `since`.
    QueryAlarms {
        /// Offset into the released history.
        since: u64,
    },
    /// A chunk of released alarm history.
    AlarmsReply {
        /// Echo of the request offset.
        since: u64,
        /// Total released events on the server (fetch is chunked; keep
        /// querying from `since + events.len()` until caught up).
        total: u64,
        /// Shard identity advertisement ([`crate::ServeConfig::shard_id`]):
        /// which cluster shard answered, `0` for a standalone server.
        shard: u64,
        /// Release-watermark advertisement, computed atomically with
        /// `total`: every released event at or below this time is within
        /// the first `total` events, and the server will never release
        /// another event at or below it. `-inf` while the release hold
        /// ([`crate::ServeConfig::expected_machines`]) is active or no
        /// machine is known; `+inf` once every known feed has finished
        /// (the per-shard drain barrier an aggregator waits on).
        watermark_secs: f64,
        /// The events at `since..since + events.len()`.
        events: Vec<ServeEvent>,
    },
    /// Graceful close request.
    Bye,
    /// Graceful close acknowledgement.
    ByeAck,
    /// Error report.
    Error {
        /// One of the `ERR_*` codes.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_BATCH: u8 = 0x03;
const TAG_ACK: u8 = 0x04;
const TAG_BUSY: u8 = 0x05;
const TAG_MACHINE_DONE: u8 = 0x06;
const TAG_QUERY_STATUS: u8 = 0x07;
const TAG_STATUS_REPLY: u8 = 0x08;
const TAG_QUERY_MACHINE: u8 = 0x09;
const TAG_MACHINE_REPLY: u8 = 0x0a;
const TAG_QUERY_ALARMS: u8 = 0x0b;
const TAG_ALARMS_REPLY: u8 = 0x0c;
const TAG_BYE: u8 = 0x0d;
const TAG_BYE_ACK: u8 = 0x0e;
const TAG_ERROR: u8 = 0x0f;
const TAG_BATCH_COLUMNAR: u8 = 0x10;
const TAG_QUERY_SPECTRUM: u8 = 0x11;
const TAG_SPECTRUM_REPLY: u8 = 0x12;
const TAG_QUERY_REJUV: u8 = 0x13;
const TAG_REJUV_REPLY: u8 = 0x14;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected)
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE, reflected) of `data` — the per-frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Counter / enum codes
// ---------------------------------------------------------------------------

/// Wire code of a counter: its index in [`Counter::ALL`].
pub fn counter_code(counter: Counter) -> u8 {
    Counter::ALL
        .iter()
        .position(|&c| c == counter)
        .expect("Counter::ALL is exhaustive") as u8
}

/// Counter for a wire code, `None` for an unknown code.
pub fn counter_from_code(code: u8) -> Option<Counter> {
    Counter::ALL.get(usize::from(code)).copied()
}

fn level_code(level: AlertLevel) -> u8 {
    match level {
        AlertLevel::Warning => 0,
        AlertLevel::Alarm => 1,
    }
}

fn level_from_code(code: u8) -> Option<AlertLevel> {
    match code {
        0 => Some(AlertLevel::Warning),
        1 => Some(AlertLevel::Alarm),
        _ => None,
    }
}

fn trigger_code(trigger: Trigger) -> u8 {
    match trigger {
        Trigger::DimensionJump => 0,
        Trigger::HolderCollapse => 1,
        Trigger::Both => 2,
    }
}

fn trigger_from_code(code: u8) -> Option<Trigger> {
    match code {
        0 => Some(Trigger::DimensionJump),
        1 => Some(Trigger::HolderCollapse),
        2 => Some(Trigger::Both),
        _ => None,
    }
}

fn detector_code(name: &str) -> u8 {
    match name {
        "holder-dimension" => 0,
        "spectrum-width" => 2,
        _ => 1,
    }
}

fn detector_from_code(code: u8) -> Option<&'static str> {
    match code {
        0 => Some("holder-dimension"),
        1 => Some("mann-kendall-sen"),
        2 => Some("spectrum-width"),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Byte reader/writer
// ---------------------------------------------------------------------------

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 string".to_string())
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(usize::from(u16::MAX));
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

// ---------------------------------------------------------------------------
// Columnar timestamp deltas
// ---------------------------------------------------------------------------

/// The timestamp delta, in 2⁻²⁰ s units, that makes a columnar frame
/// reproduce `next` *bit-exactly* after `prev` — or `None` if no such
/// delta exists and the column must split (fresh `t0`) at `next`.
///
/// `None` when either endpoint is non-finite, the step is negative
/// (non-monotone), the step is not an exact multiple of 2⁻²⁰ s, the
/// delta overflows `u32`, or rounding in `prev + dt` fails to land on
/// `next`'s exact bit pattern (large magnitudes where one ulp exceeds
/// the unit). The check *is* the decoder's arithmetic, so a `Some`
/// delta can never decode to anything but `next`.
pub fn column_delta_units(prev: f64, next: f64) -> Option<u32> {
    if !prev.is_finite() || !next.is_finite() {
        return None;
    }
    let units = (next - prev) * DT_UNITS_PER_SEC;
    if !(units >= 0.0) || units > f64::from(u32::MAX) || units.fract() != 0.0 {
        return None;
    }
    let units = units as u32;
    (expand_column_step(prev, units).to_bits() == next.to_bits()).then_some(units)
}

/// One step of columnar timestamp reconstruction — the *only* arithmetic
/// either side uses, so encoder verification and decoder expansion can
/// never diverge.
#[inline]
pub fn expand_column_step(prev: f64, dt_units: u32) -> f64 {
    prev + f64::from(dt_units) / DT_UNITS_PER_SEC
}

/// Expands a columnar frame's timestamp column into `out` (cleared
/// first): `t0`, then one [`expand_column_step`] per delta.
pub fn expand_column_times(t0: f64, dt_units: &[u32], out: &mut Vec<f64>) {
    out.clear();
    out.reserve(dt_units.len() + 1);
    let mut t = t0;
    out.push(t);
    for &dt in dt_units {
        t = expand_column_step(t, dt);
        out.push(t);
    }
}

/// Splits a timestamp column into maximal `(start, len)` spans, each
/// encodable as one [`Frame::BatchColumnar`] with bit-exact timestamp
/// reconstruction. Appends to `out` (cleared first); spans cover
/// `times` exactly, in order.
///
/// A span grows while [`column_delta_units`] accepts the next step and
/// the span is shorter than `max_span` (callers derive `max_span` from
/// the negotiated `max_frame`; it is clamped to `u16::MAX`, the frame's
/// count field). Every record is coverable — a degenerate span of one
/// record carries any `f64` timestamp bit pattern, even NaN — so this
/// never fails; pathological columns just split often.
pub fn columnar_spans(times: &[f64], max_span: usize, out: &mut Vec<(usize, usize)>) {
    out.clear();
    let max_span = max_span.clamp(1, usize::from(u16::MAX));
    let mut start = 0usize;
    for i in 1..times.len() {
        if i - start >= max_span || column_delta_units(times[i - 1], times[i]).is_none() {
            out.push((start, i - start));
            start = i;
        }
    }
    if start < times.len() {
        out.push((start, times.len() - start));
    }
}

// ---------------------------------------------------------------------------
// Event codec
// ---------------------------------------------------------------------------

const EVENT_DETECTOR: u8 = 0;
const EVENT_MACHINE_ALARM: u8 = 1;
const EVENT_RESTART: u8 = 2;
const DETAIL_HOLDER: u8 = 0;
const DETAIL_TREND: u8 = 1;
const DETAIL_SPECTRUM: u8 = 2;

/// Appends one event's canonical wire encoding to `out`.
///
/// This encoding doubles as the parity fingerprint: E14 compares the
/// offline and TCP alarm histories by encoding both with
/// [`encode_events`] and requiring byte identity.
pub fn encode_event(event: &ServeEvent, out: &mut Vec<u8>) {
    out.extend_from_slice(&event.machine_id.to_le_bytes());
    out.extend_from_slice(&event.time_secs.to_bits().to_le_bytes());
    out.push(level_code(event.level));
    match &event.kind {
        AlarmKind::Detector {
            counter,
            detector,
            detail,
        } => {
            out.push(EVENT_DETECTOR);
            out.push(counter_code(*counter));
            out.push(detector_code(detector));
            match detail {
                AlertDetail::Holder(alert) => {
                    out.push(DETAIL_HOLDER);
                    out.extend_from_slice(&(alert.sample_index as u64).to_le_bytes());
                    out.push(level_code(alert.level));
                    out.push(trigger_code(alert.trigger));
                    for v in [
                        alert.dimension,
                        alert.mean_holder,
                        alert.dimension_baseline,
                        alert.holder_baseline,
                    ] {
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
                AlertDetail::Trend { eta_secs } => {
                    out.push(DETAIL_TREND);
                    out.push(u8::from(eta_secs.is_some()));
                    out.extend_from_slice(&eta_secs.unwrap_or(0.0).to_bits().to_le_bytes());
                }
                AlertDetail::Spectrum {
                    delta_alpha,
                    baseline_width,
                } => {
                    out.push(DETAIL_SPECTRUM);
                    out.extend_from_slice(&delta_alpha.to_bits().to_le_bytes());
                    out.extend_from_slice(&baseline_width.to_bits().to_le_bytes());
                }
            }
        }
        AlarmKind::MachineAlarm { votes, members } => {
            out.push(EVENT_MACHINE_ALARM);
            out.extend_from_slice(&(*votes as u64).to_le_bytes());
            out.extend_from_slice(&(*members as u64).to_le_bytes());
        }
        AlarmKind::Restart {
            reason,
            downtime_secs,
        } => {
            out.push(EVENT_RESTART);
            out.push(reason.code());
            out.extend_from_slice(&downtime_secs.to_bits().to_le_bytes());
        }
    }
}

/// Canonical encoding of a whole event sequence (the E14 parity
/// fingerprint — see [`encode_event`]).
pub fn encode_events(events: &[ServeEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 48);
    for e in events {
        encode_event(e, &mut out);
    }
    out
}

/// Decodes a canonical event sequence — the inverse of
/// [`encode_events`], used when restoring a persisted alarm history.
///
/// # Errors
///
/// Returns a description of the first malformation; a valid prefix is
/// not returned (the sequence is all-or-nothing, like a frame payload).
pub fn decode_events(bytes: &[u8]) -> Result<Vec<ServeEvent>, String> {
    let mut r = Reader::new(bytes);
    let mut out = Vec::new();
    while r.remaining() > 0 {
        out.push(decode_event(&mut r)?);
    }
    Ok(out)
}

pub(crate) fn decode_event(r: &mut Reader<'_>) -> Result<ServeEvent, String> {
    let machine_id = r.u64()?;
    let time_secs = r.f64()?;
    let level = level_from_code(r.u8()?).ok_or("bad level code")?;
    let kind = match r.u8()? {
        EVENT_DETECTOR => {
            let counter = counter_from_code(r.u8()?).ok_or("bad counter code")?;
            let detector = detector_from_code(r.u8()?).ok_or("bad detector code")?;
            let detail = match r.u8()? {
                DETAIL_HOLDER => {
                    let sample_index = r.u64()? as usize;
                    let alevel = level_from_code(r.u8()?).ok_or("bad alert level")?;
                    let trigger = trigger_from_code(r.u8()?).ok_or("bad trigger code")?;
                    let dimension = r.f64()?;
                    let mean_holder = r.f64()?;
                    let dimension_baseline = r.f64()?;
                    let holder_baseline = r.f64()?;
                    AlertDetail::Holder(Alert {
                        sample_index,
                        level: alevel,
                        trigger,
                        dimension,
                        mean_holder,
                        dimension_baseline,
                        holder_baseline,
                    })
                }
                DETAIL_TREND => {
                    let has_eta = r.u8()? != 0;
                    let eta = r.f64()?;
                    AlertDetail::Trend {
                        eta_secs: has_eta.then_some(eta),
                    }
                }
                DETAIL_SPECTRUM => {
                    let delta_alpha = r.f64()?;
                    let baseline_width = r.f64()?;
                    AlertDetail::Spectrum {
                        delta_alpha,
                        baseline_width,
                    }
                }
                t => return Err(format!("bad detail tag {t}")),
            };
            AlarmKind::Detector {
                counter,
                detector,
                detail,
            }
        }
        EVENT_MACHINE_ALARM => AlarmKind::MachineAlarm {
            votes: r.u64()? as usize,
            members: r.u64()? as usize,
        },
        EVENT_RESTART => AlarmKind::Restart {
            reason: aging_rejuv::RestartReason::from_code(r.u8()?)
                .map_err(|_| "bad restart reason code".to_string())?,
            downtime_secs: r.f64()?,
        },
        t => return Err(format!("bad event kind tag {t}")),
    };
    Ok(ServeEvent {
        machine_id,
        time_secs,
        level,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

impl Frame {
    /// Serialises the frame payload (no length prefix / CRC — see
    /// [`encode_frame`] for the full on-wire form).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.put_payload(&mut out);
        out
    }

    /// Serialises the frame payload into a reused buffer (cleared
    /// first) — the allocation-free form of [`Frame::encode_payload`].
    pub fn encode_payload_into(&self, out: &mut Vec<u8>) {
        out.clear();
        self.put_payload(out);
    }

    /// Appends the payload bytes to `out` without clearing.
    fn put_payload(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { version, name } => {
                out.push(TAG_HELLO);
                out.push(*version);
                put_string(out, name);
            }
            Frame::HelloAck {
                version,
                window,
                max_frame,
            } => {
                out.push(TAG_HELLO_ACK);
                out.push(*version);
                out.extend_from_slice(&window.to_le_bytes());
                out.extend_from_slice(&max_frame.to_le_bytes());
            }
            Frame::Batch { seq, records } => {
                out.push(TAG_BATCH);
                out.extend_from_slice(&seq.to_le_bytes());
                let n = records.len().min(usize::from(u16::MAX));
                out.extend_from_slice(&(n as u16).to_le_bytes());
                for rec in &records[..n] {
                    out.extend_from_slice(&rec.machine_id.to_le_bytes());
                    out.push(rec.counter);
                    out.extend_from_slice(&rec.time_secs.to_bits().to_le_bytes());
                    out.extend_from_slice(&rec.value.to_bits().to_le_bytes());
                }
            }
            Frame::BatchColumnar {
                seq,
                machine_id,
                counter,
                t0,
                dt_units,
                values,
            } => {
                debug_assert!(
                    values.is_empty() || values.len() == dt_units.len() + 1,
                    "ragged column"
                );
                out.push(TAG_BATCH_COLUMNAR);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&machine_id.to_le_bytes());
                out.push(*counter);
                out.extend_from_slice(&t0.to_bits().to_le_bytes());
                let n = values.len().min(usize::from(u16::MAX));
                out.extend_from_slice(&(n as u16).to_le_bytes());
                for dt in &dt_units[..n.saturating_sub(1)] {
                    out.extend_from_slice(&dt.to_le_bytes());
                }
                for v in &values[..n] {
                    out.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            Frame::Ack { seq, accepted } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&accepted.to_le_bytes());
            }
            Frame::Busy { backlog } => {
                out.push(TAG_BUSY);
                out.extend_from_slice(&backlog.to_le_bytes());
            }
            Frame::MachineDone { machine_id } => {
                out.push(TAG_MACHINE_DONE);
                out.extend_from_slice(&machine_id.to_le_bytes());
            }
            Frame::QueryStatus => out.push(TAG_QUERY_STATUS),
            Frame::StatusReply { json } => {
                out.push(TAG_STATUS_REPLY);
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            Frame::QueryMachine { machine_id } => {
                out.push(TAG_QUERY_MACHINE);
                out.extend_from_slice(&machine_id.to_le_bytes());
            }
            Frame::MachineReply { json } => {
                out.push(TAG_MACHINE_REPLY);
                match json {
                    Some(json) => {
                        out.push(1);
                        out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                        out.extend_from_slice(json.as_bytes());
                    }
                    None => out.push(0),
                }
            }
            Frame::QuerySpectrum { machine_id } => {
                out.push(TAG_QUERY_SPECTRUM);
                out.extend_from_slice(&machine_id.to_le_bytes());
            }
            Frame::SpectrumReply {
                machine_id,
                known,
                widths,
            } => {
                out.push(TAG_SPECTRUM_REPLY);
                out.extend_from_slice(&machine_id.to_le_bytes());
                out.push(u8::from(*known));
                let n = widths.len().min(usize::from(u16::MAX));
                out.extend_from_slice(&(n as u16).to_le_bytes());
                for (counter, delta_alpha) in &widths[..n] {
                    out.push(*counter);
                    out.extend_from_slice(&delta_alpha.to_bits().to_le_bytes());
                }
            }
            Frame::QueryRejuv { machine_id } => {
                out.push(TAG_QUERY_REJUV);
                out.extend_from_slice(&machine_id.to_le_bytes());
            }
            Frame::RejuvReply {
                machine_id,
                known,
                policy,
                restarts,
                denied,
                last_restart_secs,
            } => {
                out.push(TAG_REJUV_REPLY);
                out.extend_from_slice(&machine_id.to_le_bytes());
                out.push(u8::from(*known));
                out.push(*policy);
                out.extend_from_slice(&restarts.to_le_bytes());
                out.extend_from_slice(&denied.to_le_bytes());
                out.push(u8::from(last_restart_secs.is_some()));
                out.extend_from_slice(&last_restart_secs.unwrap_or(0.0).to_bits().to_le_bytes());
            }
            Frame::QueryAlarms { since } => {
                out.push(TAG_QUERY_ALARMS);
                out.extend_from_slice(&since.to_le_bytes());
            }
            Frame::AlarmsReply {
                since,
                total,
                shard,
                watermark_secs,
                events,
            } => {
                out.push(TAG_ALARMS_REPLY);
                out.extend_from_slice(&since.to_le_bytes());
                out.extend_from_slice(&total.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&watermark_secs.to_bits().to_le_bytes());
                let n = events.len().min(usize::from(u16::MAX));
                out.extend_from_slice(&(n as u16).to_le_bytes());
                for event in &events[..n] {
                    encode_event(event, out);
                }
            }
            Frame::Bye => out.push(TAG_BYE),
            Frame::ByeAck => out.push(TAG_BYE_ACK),
            Frame::Error { code, message } => {
                out.push(TAG_ERROR);
                out.push(*code);
                put_string(out, message);
            }
        }
    }

    /// Parses a frame payload (the bytes between length prefix and CRC).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation. A payload that fails
    /// here arrived inside an intact frame: the connection's framing is
    /// still sound and the session may continue (it counts a strike).
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, String> {
        let mut r = Reader::new(payload);
        let frame = match r.u8()? {
            TAG_HELLO => Frame::Hello {
                version: r.u8()?,
                name: r.string()?,
            },
            TAG_HELLO_ACK => Frame::HelloAck {
                version: r.u8()?,
                window: r.u16()?,
                max_frame: r.u32()?,
            },
            TAG_BATCH => {
                let seq = r.u64()?;
                let n = usize::from(r.u16()?);
                let mut records = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    records.push(Record {
                        machine_id: r.u64()?,
                        counter: r.u8()?,
                        time_secs: r.f64()?,
                        value: r.f64()?,
                    });
                }
                Frame::Batch { seq, records }
            }
            TAG_BATCH_COLUMNAR => {
                let seq = r.u64()?;
                let machine_id = r.u64()?;
                let counter = r.u8()?;
                let t0 = r.f64()?;
                let n = usize::from(r.u16()?);
                if n == 0 {
                    return Err("empty columnar batch".to_string());
                }
                let mut dt_units = Vec::with_capacity((n - 1).min(4096));
                for _ in 1..n {
                    dt_units.push(r.u32()?);
                }
                let mut values = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    values.push(r.f64()?);
                }
                Frame::BatchColumnar {
                    seq,
                    machine_id,
                    counter,
                    t0,
                    dt_units,
                    values,
                }
            }
            TAG_ACK => Frame::Ack {
                seq: r.u64()?,
                accepted: r.u16()?,
            },
            TAG_BUSY => Frame::Busy { backlog: r.u32()? },
            TAG_MACHINE_DONE => Frame::MachineDone {
                machine_id: r.u64()?,
            },
            TAG_QUERY_STATUS => Frame::QueryStatus,
            TAG_STATUS_REPLY => {
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                Frame::StatusReply {
                    json: String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 JSON")?,
                }
            }
            TAG_QUERY_MACHINE => Frame::QueryMachine {
                machine_id: r.u64()?,
            },
            TAG_MACHINE_REPLY => {
                let present = r.u8()? != 0;
                let json = if present {
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?;
                    Some(String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 JSON")?)
                } else {
                    None
                };
                Frame::MachineReply { json }
            }
            TAG_QUERY_SPECTRUM => Frame::QuerySpectrum {
                machine_id: r.u64()?,
            },
            TAG_SPECTRUM_REPLY => {
                let machine_id = r.u64()?;
                let known = r.u8()? != 0;
                let n = usize::from(r.u16()?);
                let mut widths = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    widths.push((r.u8()?, r.f64()?));
                }
                Frame::SpectrumReply {
                    machine_id,
                    known,
                    widths,
                }
            }
            TAG_QUERY_REJUV => Frame::QueryRejuv {
                machine_id: r.u64()?,
            },
            TAG_REJUV_REPLY => {
                let machine_id = r.u64()?;
                let known = r.u8()? != 0;
                let policy = r.u8()?;
                let restarts = r.u64()?;
                let denied = r.u64()?;
                let has_last = r.u8()? != 0;
                let last = r.f64()?;
                Frame::RejuvReply {
                    machine_id,
                    known,
                    policy,
                    restarts,
                    denied,
                    last_restart_secs: has_last.then_some(last),
                }
            }
            TAG_QUERY_ALARMS => Frame::QueryAlarms { since: r.u64()? },
            TAG_ALARMS_REPLY => {
                let since = r.u64()?;
                let total = r.u64()?;
                let shard = r.u64()?;
                let watermark_secs = r.f64()?;
                let n = usize::from(r.u16()?);
                let mut events = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    events.push(decode_event(&mut r)?);
                }
                Frame::AlarmsReply {
                    since,
                    total,
                    shard,
                    watermark_secs,
                    events,
                }
            }
            TAG_BYE => Frame::Bye,
            TAG_BYE_ACK => Frame::ByeAck,
            TAG_ERROR => Frame::Error {
                code: r.u8()?,
                message: r.string()?,
            },
            tag => return Err(format!("unknown frame tag 0x{tag:02x}")),
        };
        r.done()?;
        Ok(frame)
    }
}

/// Serialises a frame into its full on-wire form:
/// `len | payload | crc32(payload)`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame_into(frame, &mut out);
    out
}

/// Serialises a frame's full on-wire form into a reused buffer (cleared
/// first) — the allocation-free form of [`encode_frame`]. The payload is
/// written in place after a length placeholder, so no intermediate
/// payload buffer exists even for large batches.
pub fn encode_frame_into(frame: &Frame, out: &mut Vec<u8>) {
    begin_frame(out);
    frame.put_payload(out);
    finish_frame(out);
}

/// Starts an in-place frame: clears `out` and reserves the length
/// prefix.
fn begin_frame(out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
}

/// Completes an in-place frame: patches the length prefix and appends
/// the payload CRC.
fn finish_frame(out: &mut Vec<u8>) {
    let len = (out.len() - 4) as u32;
    out[..4].copy_from_slice(&len.to_le_bytes());
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Encodes a [`Frame::Batch`]'s full on-wire form directly from a record
/// slice — no owned `Frame` (and no `records.to_vec()`) on the send
/// path. `out` is cleared first; records beyond the count field's
/// `u16::MAX` ceiling are dropped, matching [`Frame::encode_payload`].
pub fn encode_batch_frame_into(seq: u64, records: &[Record], out: &mut Vec<u8>) {
    begin_frame(out);
    out.push(TAG_BATCH);
    out.extend_from_slice(&seq.to_le_bytes());
    let n = records.len().min(usize::from(u16::MAX));
    out.extend_from_slice(&(n as u16).to_le_bytes());
    for rec in &records[..n] {
        out.extend_from_slice(&rec.machine_id.to_le_bytes());
        out.push(rec.counter);
        out.extend_from_slice(&rec.time_secs.to_bits().to_le_bytes());
        out.extend_from_slice(&rec.value.to_bits().to_le_bytes());
    }
    finish_frame(out);
}

/// Encodes a [`Frame::BatchColumnar`]'s full on-wire form directly from
/// parallel time/value slices, computing the deltas on the fly — the
/// whole column is serialised without a single per-record allocation.
/// `out` is cleared first. Extra elements beyond the shorter slice are
/// ignored.
///
/// # Errors
///
/// When the column is empty, longer than the count field's `u16::MAX`
/// ceiling, or some timestamp step is not delta-encodable
/// ([`column_delta_units`] returns `None`) — split such columns with
/// [`columnar_spans`] first. On error `out`'s contents are unspecified.
pub fn encode_columnar_frame_into(
    seq: u64,
    machine_id: u64,
    counter: u8,
    times: &[f64],
    values: &[f64],
    out: &mut Vec<u8>,
) -> Result<(), String> {
    let n = times.len().min(values.len());
    if n == 0 {
        return Err("empty column".to_string());
    }
    if n > usize::from(u16::MAX) {
        return Err(format!("column of {n} records exceeds the u16 count"));
    }
    begin_frame(out);
    out.push(TAG_BATCH_COLUMNAR);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&machine_id.to_le_bytes());
    out.push(counter);
    out.extend_from_slice(&times[0].to_bits().to_le_bytes());
    out.extend_from_slice(&(n as u16).to_le_bytes());
    for w in times[..n].windows(2) {
        let dt = column_delta_units(w[0], w[1]).ok_or_else(|| {
            format!(
                "timestamp step {:?} -> {:?} is not delta-encodable",
                w[0], w[1]
            )
        })?;
        out.extend_from_slice(&dt.to_le_bytes());
    }
    for v in &values[..n] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    finish_frame(out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn counter_codes_round_trip() {
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(counter_code(c), i as u8);
            assert_eq!(counter_from_code(i as u8), Some(c));
        }
        assert_eq!(counter_from_code(Counter::ALL.len() as u8), None);
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                name: "loadgen-0".into(),
            },
            Frame::HelloAck {
                version: PROTOCOL_VERSION,
                window: 32,
                max_frame: DEFAULT_MAX_FRAME,
            },
            Frame::Batch {
                seq: 7,
                records: vec![
                    Record {
                        machine_id: 3,
                        counter: 0,
                        time_secs: 5.0,
                        value: 1e6,
                    },
                    Record {
                        machine_id: 3,
                        counter: 1,
                        time_secs: 5.0,
                        value: f64::NAN,
                    },
                ],
            },
            Frame::BatchColumnar {
                seq: 8,
                machine_id: 3,
                counter: 0,
                t0: 5.0,
                dt_units: vec![5 << 20, 0, 7 << 20],
                values: vec![1e6, 9.5e5, f64::NAN, 8.75e5],
            },
            Frame::Ack {
                seq: 7,
                accepted: 2,
            },
            Frame::Busy { backlog: 99 },
            Frame::MachineDone { machine_id: 3 },
            Frame::QueryStatus,
            Frame::StatusReply {
                json: "{\"x\":1}".into(),
            },
            Frame::QueryMachine { machine_id: 3 },
            Frame::MachineReply { json: None },
            Frame::MachineReply {
                json: Some("{}".into()),
            },
            Frame::QueryAlarms { since: 4 },
            Frame::AlarmsReply {
                since: 4,
                total: 6,
                shard: 2,
                watermark_secs: f64::NEG_INFINITY,
                events: vec![
                    ServeEvent {
                        machine_id: 3,
                        time_secs: 120.0,
                        level: AlertLevel::Alarm,
                        kind: AlarmKind::MachineAlarm {
                            votes: 1,
                            members: 1,
                        },
                    },
                    ServeEvent {
                        machine_id: 4,
                        time_secs: 60.0,
                        level: AlertLevel::Warning,
                        kind: AlarmKind::Detector {
                            counter: Counter::AvailableBytes,
                            detector: "holder-dimension",
                            detail: AlertDetail::Holder(Alert {
                                sample_index: 512,
                                level: AlertLevel::Warning,
                                trigger: Trigger::Both,
                                dimension: 1.4,
                                mean_holder: 0.3,
                                dimension_baseline: 1.1,
                                holder_baseline: 0.5,
                            }),
                        },
                    },
                    ServeEvent {
                        machine_id: 5,
                        time_secs: 90.0,
                        level: AlertLevel::Alarm,
                        kind: AlarmKind::Detector {
                            counter: Counter::UsedSwapBytes,
                            detector: "mann-kendall-sen",
                            detail: AlertDetail::Trend {
                                eta_secs: Some(1234.5),
                            },
                        },
                    },
                    ServeEvent {
                        machine_id: 6,
                        time_secs: 95.0,
                        level: AlertLevel::Alarm,
                        kind: AlarmKind::Detector {
                            counter: Counter::AvailableBytes,
                            detector: "spectrum-width",
                            detail: AlertDetail::Spectrum {
                                delta_alpha: 0.81,
                                baseline_width: 0.07,
                            },
                        },
                    },
                    ServeEvent {
                        machine_id: 7,
                        time_secs: 130.0,
                        level: AlertLevel::Warning,
                        kind: AlarmKind::Restart {
                            reason: aging_rejuv::RestartReason::Alarm,
                            downtime_secs: 30.0,
                        },
                    },
                ],
            },
            Frame::QuerySpectrum { machine_id: 3 },
            Frame::SpectrumReply {
                machine_id: 3,
                known: true,
                widths: vec![(0, 0.42), (1, 0.13)],
            },
            Frame::SpectrumReply {
                machine_id: 9,
                known: false,
                widths: vec![],
            },
            Frame::QueryRejuv { machine_id: 4 },
            Frame::RejuvReply {
                machine_id: 4,
                known: true,
                policy: 2,
                restarts: 3,
                denied: 1,
                last_restart_secs: Some(7200.0),
            },
            Frame::RejuvReply {
                machine_id: 11,
                known: false,
                policy: 0,
                restarts: 0,
                denied: 0,
                last_restart_secs: None,
            },
            Frame::Bye,
            Frame::ByeAck,
            Frame::Error {
                code: ERR_MALFORMED,
                message: "bad tag".into(),
            },
        ];
        for frame in frames {
            let payload = frame.encode_payload();
            let back = Frame::decode_payload(&payload).unwrap();
            // NaN-carrying batches can't use PartialEq; compare by
            // re-encoding, which is bit-exact.
            assert_eq!(payload, back.encode_payload(), "{frame:?}");
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_rejected() {
        let payload = Frame::MachineDone { machine_id: 9 }.encode_payload();
        for cut in 0..payload.len() {
            assert!(Frame::decode_payload(&payload[..cut]).is_err(), "{cut}");
        }
        let mut extended = payload.clone();
        extended.push(0);
        assert!(Frame::decode_payload(&extended).is_err());
    }

    #[test]
    fn empty_columnar_batch_rejected() {
        let payload = Frame::BatchColumnar {
            seq: 1,
            machine_id: 2,
            counter: 0,
            t0: 0.0,
            dt_units: vec![],
            values: vec![],
        }
        .encode_payload();
        assert!(Frame::decode_payload(&payload).is_err());
    }

    #[test]
    fn column_delta_rules() {
        // Exact 2⁻²⁰ s multiples round-trip, including dt = 0.
        assert_eq!(column_delta_units(5.0, 10.0), Some(5 << 20));
        assert_eq!(column_delta_units(5.0, 5.0), Some(0));
        // Non-monotone, non-finite and sub-resolution steps split.
        assert_eq!(column_delta_units(10.0, 5.0), None);
        assert_eq!(column_delta_units(f64::NAN, 5.0), None);
        assert_eq!(column_delta_units(5.0, f64::INFINITY), None);
        assert_eq!(column_delta_units(0.0, 2f64.powi(-21)), None);
        // u32 overflow: max delta is (2³² − 1) units = 4095.999… s.
        let max_dt = f64::from(u32::MAX) / DT_UNITS_PER_SEC;
        assert_eq!(column_delta_units(0.0, max_dt), Some(u32::MAX));
        assert_eq!(column_delta_units(0.0, 4096.0), None);
        // At 2⁶⁰ one ulp is 256 s, so `+ 5.0` is absorbed outright: the
        // pair collapses to dt = 0 and still round-trips bit-exactly.
        assert_eq!(
            column_delta_units(2f64.powi(60), 2f64.powi(60) + 5.0),
            Some(0)
        );
        // A real one-ulp step at that magnitude is 256 s = 2²⁸ units.
        assert_eq!(
            column_delta_units(2f64.powi(60), 2f64.powi(60) + 256.0),
            Some(256 << 20)
        );
    }

    #[test]
    fn columnar_spans_cover_and_split() {
        let times = [0.0, 5.0, 10.0, 9.0, 14.0, f64::NAN, 20.0, 25.0];
        let mut spans = Vec::new();
        columnar_spans(&times, 64, &mut spans);
        assert_eq!(spans, vec![(0, 3), (3, 2), (5, 1), (6, 2)]);
        assert_eq!(spans.iter().map(|&(_, l)| l).sum::<usize>(), times.len());

        // max_span caps growth.
        columnar_spans(&[0.0, 5.0, 10.0, 15.0], 2, &mut spans);
        assert_eq!(spans, vec![(0, 2), (2, 2)]);

        // Every span reconstructs its slice bit-exactly.
        columnar_spans(&times, 64, &mut spans);
        let mut expanded = Vec::new();
        for &(start, len) in &spans {
            let slice = &times[start..start + len];
            let dt: Vec<u32> = slice
                .windows(2)
                .map(|w| column_delta_units(w[0], w[1]).unwrap())
                .collect();
            expand_column_times(slice[0], &dt, &mut expanded);
            assert_eq!(expanded.len(), len);
            for (a, b) in expanded.iter().zip(slice) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn text_preamble_is_not_a_plausible_length() {
        let as_len = u32::from_le_bytes(TEXT_PREAMBLE[..4].try_into().unwrap());
        assert!(as_len > 16 * 1024 * 1024, "{as_len}");
    }
}
