//! Detector shoot-out: the paper's Hölder-dimension detector against the
//! classical trend-extrapolation baselines on a fleet of simulated
//! machines (a compact version of experiment E4).
//!
//! Run with: `cargo run --release --example trend_vs_holder`

use holder_aging::prelude::*;

fn main() -> Result<()> {
    // Fleet: aging machines (varying leak rates/seeds) plus healthy
    // controls that must not trip false alarms.
    let mut scenarios = Vec::new();
    for seed in 0..4u64 {
        let mut s = Scenario::tiny_aging(seed, 96.0 + 32.0 * seed as f64);
        s.name = format!("aging-{seed}");
        scenarios.push(s);
    }
    for seed in 10..12u64 {
        scenarios.push(Scenario {
            name: format!("healthy-{seed}"),
            machine: MachineConfig::tiny_test(),
            workload: WorkloadConfig::tiny_test(),
            faults: FaultPlan::healthy(),
            seed,
        });
    }
    println!("simulating {} machines (8 h horizon)…", scenarios.len());
    let reports = simulate_fleet(&scenarios, 8.0 * 3600.0)?;
    for r in &reports {
        match r.first_crash() {
            Some(c) => println!("  {:<12} crashed at {}", r.scenario_name, c.time),
            None => println!("  {:<12} survived", r.scenario_name),
        }
    }

    let dt = reports[0].log.sample_period();
    let ram = MachineConfig::tiny_test().ram.as_f64();
    let trend = TrendPredictorConfig {
        window: 120,
        refit_every: 8,
        exhaustion_level: 0.02 * ram,
        alarm_horizon_secs: 1800.0,
        ..TrendPredictorConfig::depleting(dt)
    };
    let detector = DetectorConfig::builder()
        .holder_radius(16)
        .holder_max_lag(4)
        .dimension_window(64)
        .dimension_stride(16)
        .baseline_windows(8)
        .build()?;
    let specs = [
        PredictorSpec::HolderDimension(detector),
        PredictorSpec::SenSlope(trend.clone()),
        PredictorSpec::Ols(trend),
        PredictorSpec::Threshold {
            level: 0.05 * ram,
            direction: ResourceDirection::Depleting,
        },
    ];

    println!("\nscoring on available_bytes:");
    for spec in &specs {
        let row = compare(spec, &reports, Counter::AvailableBytes)?;
        println!("  {row}");
    }
    println!(
        "\n(`detected` counts crashes predicted in time; `false` counts alarms\n on machines that never crashed — the paper's headline comparison.)"
    );
    Ok(())
}
