//! Structural CSV damage: what transport and crashing writers do to
//! recorded monitor logs.
//!
//! Value-level defects (NaN cells, spikes) are the injectors' job; this
//! module breaks the *file structure* — truncated rows, garbled cells,
//! blanked lines — to exercise the lossy reader path
//! ([`aging_timeseries::csv::read_csv_lossy`] and
//! `CsvReplaySource::from_csv_str_lossy`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-row damage probabilities for [`garble_csv`]. Draws are exclusive
/// in the order truncate → garble → blank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CsvChaosConfig {
    /// Probability a data row is truncated mid-write (loses cells).
    pub truncate_rate: f64,
    /// Probability one cell of a data row becomes non-numeric junk.
    pub garble_rate: f64,
    /// Probability a data row is blanked entirely.
    pub blank_rate: f64,
}

impl Default for CsvChaosConfig {
    fn default() -> Self {
        CsvChaosConfig {
            truncate_rate: 0.02,
            garble_rate: 0.02,
            blank_rate: 0.01,
        }
    }
}

/// What [`garble_csv`] actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsvGarbleCounts {
    /// Rows truncated to fewer cells than the header.
    pub truncated: u64,
    /// Rows with one cell replaced by non-numeric junk.
    pub garbled: u64,
    /// Rows blanked.
    pub blanked: u64,
}

impl CsvGarbleCounts {
    /// Total damaged rows.
    pub fn total(&self) -> u64 {
        self.truncated + self.garbled + self.blanked
    }
}

/// Structurally damages CSV `text`, deterministically in `seed`.
///
/// The header line is never touched (a lost header is unrecoverable by
/// design — see [`aging_timeseries::csv::read_csv_lossy`]). Truncation
/// keeps a strict prefix of the row's cells, so multi-column rows become
/// ragged; single-cell rows are garbled instead.
pub fn garble_csv(text: &str, seed: u64, config: &CsvChaosConfig) -> (String, CsvGarbleCounts) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = CsvGarbleCounts::default();
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        if i == 0 || line.trim().is_empty() {
            out.push_str(line);
            out.push('\n');
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if rng.gen_bool(config.truncate_rate) && cells.len() > 1 {
            // A writer killed mid-row: a strict prefix of the cells.
            let keep = rng.gen_range(1..cells.len());
            out.push_str(&cells[..keep].join(","));
            out.push('\n');
            counts.truncated += 1;
        } else if rng.gen_bool(config.garble_rate) {
            let victim = rng.gen_range(0..cells.len());
            for (j, cell) in cells.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                if j == victim {
                    out.push_str("@corrupt!");
                } else {
                    out.push_str(cell);
                }
            }
            out.push('\n');
            counts.garbled += 1;
        } else if rng.gen_bool(config.blank_rate) {
            out.push('\n');
            counts.blanked += 1;
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    (out, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_timeseries::csv::{read_csv, read_csv_lossy};

    fn clean_csv(rows: usize) -> String {
        let mut text = String::from("time,free\n");
        for i in 0..rows {
            text.push_str(&format!("{},{}\n", i * 30, 1000 - i));
        }
        text
    }

    #[test]
    fn garbling_is_deterministic_and_counted() {
        let clean = clean_csv(500);
        let cfg = CsvChaosConfig::default();
        let (a, ca) = garble_csv(&clean, 42, &cfg);
        let (b, cb) = garble_csv(&clean, 42, &cfg);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
        assert!(ca.total() > 0, "default rates must damage 500 rows");
        let (c, _) = garble_csv(&clean, 43, &cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn lossy_reader_survives_garbled_output() {
        let clean = clean_csv(400);
        let (dirty, counts) = garble_csv(&clean, 7, &CsvChaosConfig::default());
        assert!(counts.truncated > 0 && counts.garbled > 0);
        // The strict reader refuses the damage; the lossy reader recovers
        // every intact row and accounts for the rest exactly.
        assert!(read_csv(dirty.as_bytes()).is_err());
        let (table, defects) = read_csv_lossy(dirty.as_bytes()).unwrap();
        assert_eq!(defects.ragged_rows, counts.truncated);
        assert_eq!(defects.non_numeric_cells, counts.garbled);
        assert_eq!(
            table.columns[0].len() as u64,
            400 - counts.truncated - counts.blanked
        );
    }

    #[test]
    fn zero_rates_leave_text_untouched() {
        let clean = clean_csv(50);
        let cfg = CsvChaosConfig {
            truncate_rate: 0.0,
            garble_rate: 0.0,
            blank_rate: 0.0,
        };
        let (out, counts) = garble_csv(&clean, 1, &cfg);
        assert_eq!(out, clean);
        assert_eq!(counts.total(), 0);
    }
}
