//! Offline vendored `#[derive(Serialize, Deserialize)]` for the vendored
//! value-model `serde`.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`, so
//! no network dependencies). Supports the shapes the workspace actually
//! derives:
//!
//! - structs with named fields,
//! - tuple structs (newtype structs serialize transparently),
//! - unit structs,
//! - enums with unit, newtype, tuple and struct variants (externally
//!   tagged, matching upstream serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are intentionally unsupported —
//! the workspace uses neither — and produce a compile error naming the
//! limitation rather than silently wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen_serialize(&parsed)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen_deserialize(&parsed)
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skips `#[...]` attributes (including doc comments) and visibility.
    fn skip_attrs_and_vis(&mut self) {
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.pos += 1; // '#'
                    if let Some(TokenTree::Group(_)) = self.peek() {
                        self.pos += 1; // [ ... ]
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    self.pos += 1;
                    if let Some(TokenTree::Group(g)) = self.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            self.pos += 1; // pub(crate) etc.
                        }
                    }
                }
                _ => return,
            }
        }
    }
}

fn parse(input: TokenStream) -> Result<Input, String> {
    let mut cur = Cursor::new(input);
    cur.skip_attrs_and_vis();
    let kind = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    let name = match cur.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = cur.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde_derive does not support generics (type `{name}`)"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = parse_struct_body(&mut cur)?;
            Ok(Input::Struct { name, fields })
        }
        "enum" => {
            let body = match cur.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, got {other:?}")),
            };
            Ok(Input::Enum {
                name,
                variants: parse_variants(body)?,
            })
        }
        other => Err(format!("expected `struct` or `enum`, got `{other}`")),
    }
}

fn parse_struct_body(cur: &mut Cursor) -> Result<Fields, String> {
    match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Fields::Named(parse_named_fields(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Fields::Tuple(count_tuple_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Fields::Unit),
        None => Ok(Fields::Unit),
        other => Err(format!("unsupported struct body: {other:?}")),
    }
}

/// Extracts field names from a named-field body, honouring `<...>` nesting
/// so commas inside generic arguments do not split fields.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let name = match cur.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match cur.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        fields.push(name);
        // Skip the type up to a comma at angle-bracket depth 0.
        let mut angle: i32 = 0;
        loop {
            match cur.next() {
                None => break,
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                },
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Counts fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut cur = Cursor::new(stream);
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle: i32 = 0;
    while let Some(tok) = cur.next() {
        saw_tokens = true;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_tokens {
        // Tolerate a trailing comma: `(u64,)` is still one field.
        if matches!(cur.tokens.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            count
        } else {
            count + 1
        }
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        cur.skip_attrs_and_vis();
        let name = match cur.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let fields = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                cur.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                cur.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = cur.peek() {
            if p.as_char() == '=' {
                return Err(format!(
                    "vendored serde_derive does not support discriminants (variant `{name}`)"
                ));
            }
        }
        match cur.next() {
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                variants.push(Variant { name, fields });
            }
            other => return Err(format!("expected `,` after variant, got {other:?}")),
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from({vname:?})),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
                             ::std::string::String::from({vname:?}), \
                             ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Seq(::std::vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Fields::Named(field_names) => {
                            let binds = field_names.join(", ");
                            let entries: Vec<String> = field_names
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from({f:?}), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binds} }} => \
                                 ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from({vname:?}), \
                                 ::serde::Value::Map(::std::vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_named_builder(type_path: &str, field_names: &[String], map_expr: &str) -> String {
    let fields: Vec<String> = field_names
        .iter()
        .map(|f| {
            format!(
                "{f}: match ::serde::map_get({map_expr}, {f:?}) {{\n\
                     ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                     ::std::option::Option::None => ::serde::missing_field({f:?})?,\n\
                 }},"
            )
        })
        .collect();
    format!("{type_path} {{ {} }}", fields.join("\n"))
}

fn gen_deserialize(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(field_names) => {
                    let builder = gen_named_builder(name, field_names, "__map");
                    format!(
                        "let __map = __value.as_map().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected map for struct {name}\"))?;\n\
                         ::std::result::Result::Ok({builder})"
                    )
                }
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                        .collect();
                    format!(
                        "let __seq = __value.as_seq().ok_or_else(|| \
                         ::serde::DeError::custom(\"expected sequence for struct {name}\"))?;\n\
                         if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("{vname:?} => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let __seq = __inner.as_seq().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected sequence\"))?;\n\
                                 if __seq.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::custom(\"wrong variant arity\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({}))\n\
                                 }},",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(field_names) => {
                            let builder = gen_named_builder(
                                &format!("{name}::{vname}"),
                                field_names,
                                "__vmap",
                            );
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let __vmap = __inner.as_map().ok_or_else(|| \
                                 ::serde::DeError::custom(\"expected map\"))?;\n\
                                 ::std::result::Result::Ok({builder})\n\
                                 }},",
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match __value {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit}\n\
                                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {data}\n\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::DeError::custom(::std::format!(\
                                         \"unknown variant `{{__other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 ::std::format!(\"bad enum encoding for {name}: {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    }
}
