//! Per-machine detection pipeline: the gate → detector → fusion core of
//! the fleet supervisor, factored out so *any* transport can feed it one
//! sample at a time.
//!
//! A [`MachinePipeline`] owns one machine's counter streams — one
//! [`SampleGate`] and one [`StreamingDetector`] per monitored counter —
//! plus the machine-level [`FusionRule`] vote. It is the single shared
//! implementation behind two callers:
//!
//! - the in-process [`crate::supervisor::FleetSupervisor`], which steps
//!   simulated machines itself and knows exactly when a monitor *tick*
//!   (one sample of every counter at one timestamp) is complete, and
//! - the networked ingestion server (`aging-serve`), which receives
//!   `(machine, counter, time, value)` records one at a time over TCP
//!   and cannot see tick boundaries directly.
//!
//! Because both paths run the identical pipeline code on the identical
//! sample sequences, the network layer is alarm-for-alarm equivalent to
//! the offline supervisor *by construction* — the E14 parity experiment
//! turns that equivalence into a hard byte-identity gate.
//!
//! # Tick semantics
//!
//! Fusion votes are evaluated once per tick, after every counter's sample
//! of that tick has been consumed. The supervisor calls [`end_tick`]
//! explicitly. The record-at-a-time path uses [`ingest`], which infers
//! tick boundaries from the sample clock: a record with a strictly later
//! timestamp completes the previous tick (running its deferred fusion
//! vote first, so emission order matches the supervisor's), and
//! [`finish`] completes the final tick when the feed ends. The deferred
//! vote is why [`completed_time_secs`] — the watermark up to which this
//! machine's event stream is final — trails the newest sample by one
//! tick on the incremental path.
//!
//! [`end_tick`]: MachinePipeline::end_tick
//! [`ingest`]: MachinePipeline::ingest
//! [`finish`]: MachinePipeline::finish
//! [`completed_time_secs`]: MachinePipeline::completed_time_secs

use std::time::Instant;

use aging_core::fusion::FusionRule;
use aging_memsim::Counter;
use aging_timeseries::Result;

use crate::detector::{AlertDetail, DetectorSpec, StreamingDetector};
use crate::gate::{GateAction, GateConfig, GateHealth, SampleGate};
use crate::source::StreamSample;
use crate::telemetry::{CounterStreamSnapshot, LatencyHistogram, MachineSnapshot, StageCounters};

pub use aging_core::detector::AlertLevel;

/// One counter to monitor on a machine, and the detector to run on it.
#[derive(Debug, Clone)]
pub struct CounterDetector {
    /// The monitored counter.
    pub counter: Counter,
    /// The detector family and tuning for this counter.
    pub spec: DetectorSpec,
}

/// What fired: a single detector, or the machine-level fused vote.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AlarmKind {
    /// One counter's detector emitted an alert.
    Detector {
        /// The counter that triggered.
        counter: Counter,
        /// Stable detector-family name (see [`DetectorSpec::name`]).
        detector: &'static str,
        /// The detector's measurements.
        detail: AlertDetail,
    },
    /// The fusion rule's vote threshold was reached for a machine.
    MachineAlarm {
        /// Counters whose detectors had latched alarms.
        votes: usize,
        /// Counters voting in total.
        members: usize,
    },
}

/// One event produced by a machine pipeline.
///
/// `time_secs` is the *true* stream time of the tick that produced the
/// event — for the supervisor path that is the machine's monitor clock
/// even when a perturber rewrote the sample's own timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineEvent {
    /// Stream time of the sample/tick that produced the event, seconds.
    pub time_secs: f64,
    /// Severity.
    pub level: AlertLevel,
    /// What fired.
    pub kind: AlarmKind,
}

/// One counter stream: gate, detector and its poisoned flag.
#[derive(Debug)]
struct CounterStream {
    counter: Counter,
    detector_name: &'static str,
    gate: SampleGate,
    detector: StreamingDetector,
    /// Poisoned by an estimator error; keeps its latched vote but stops
    /// consuming samples.
    disabled: bool,
}

/// The gate → detector → fusion pipeline for one machine.
#[derive(Debug)]
pub struct MachinePipeline {
    streams: Vec<CounterStream>,
    fusion: FusionRule,
    fused: bool,
    latency: LatencyHistogram,
    detector_errors: u64,
    /// Tick currently being filled on the incremental ([`ingest`]) path.
    ///
    /// [`ingest`]: MachinePipeline::ingest
    tick_time: Option<f64>,
    /// Newest tick whose events are final (watermark), `-inf` initially.
    completed_time: f64,
    finished: bool,
}

impl MachinePipeline {
    /// Builds the pipeline: one gate + detector per entry of `detectors`.
    ///
    /// # Errors
    ///
    /// Propagates [`GateConfig::validate`] and detector-constructor
    /// failures; rejects an empty detector list.
    pub fn new(
        detectors: &[CounterDetector],
        fusion: FusionRule,
        gate: GateConfig,
    ) -> Result<Self> {
        if detectors.is_empty() {
            return Err(aging_timeseries::Error::invalid(
                "detectors",
                "need at least one counter",
            ));
        }
        let streams = detectors
            .iter()
            .map(|d| {
                Ok(CounterStream {
                    counter: d.counter,
                    detector_name: d.spec.name(),
                    gate: SampleGate::new(gate)?,
                    detector: StreamingDetector::new(&d.spec)?,
                    disabled: false,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(MachinePipeline {
            streams,
            fusion,
            fused: false,
            latency: LatencyHistogram::default(),
            detector_errors: 0,
            tick_time: None,
            completed_time: f64::NEG_INFINITY,
            finished: false,
        })
    }

    /// Feeds one sample to the counter stream at `stream` (an index into
    /// the `detectors` slice the pipeline was built from), appending any
    /// detector events to `out`.
    ///
    /// `true_time_secs` is the stream time stamped onto events — pass the
    /// machine's real monitor clock, which may differ from
    /// `sample.time_secs` when a perturber corrupted the sample.
    pub fn push_record(
        &mut self,
        stream: usize,
        sample: StreamSample,
        true_time_secs: f64,
        out: &mut Vec<PipelineEvent>,
    ) {
        let cs = &mut self.streams[stream];
        if cs.disabled {
            return;
        }
        let accepted = match cs.gate.push(sample) {
            GateAction::Accept(s) => s,
            GateAction::AcceptAfterGap(s) => {
                cs.detector.reset();
                s
            }
            GateAction::DropNonFinite | GateAction::DropOutOfOrder => return,
        };
        let started = Instant::now();
        let alert = cs.detector.push(accepted.value);
        self.latency.record(started.elapsed());
        match alert {
            Ok(Some(alert)) => out.push(PipelineEvent {
                time_secs: true_time_secs,
                level: alert.level,
                kind: AlarmKind::Detector {
                    counter: cs.counter,
                    detector: cs.detector_name,
                    detail: alert.detail,
                },
            }),
            Ok(None) => {}
            Err(_) => {
                self.detector_errors += 1;
                cs.disabled = true;
            }
        }
    }

    /// Completes one tick: evaluates the fusion vote over the latched
    /// per-counter alarms, appending the machine-level alarm to `out`
    /// the first time the rule fires.
    pub fn end_tick(&mut self, time_secs: f64, out: &mut Vec<PipelineEvent>) {
        self.completed_time = self.completed_time.max(time_secs);
        if self.fused {
            return;
        }
        let members = self.streams.len();
        let votes = self
            .streams
            .iter()
            .filter(|cs| cs.detector.is_alarmed())
            .count();
        if self.fusion.fires(votes, members) {
            self.fused = true;
            out.push(PipelineEvent {
                time_secs,
                level: AlertLevel::Alarm,
                kind: AlarmKind::MachineAlarm { votes, members },
            });
        }
    }

    /// Feeds one `(counter, sample)` record on the incremental path,
    /// routing it to every stream monitoring `counter` and inferring tick
    /// boundaries from the sample clock (see the module docs).
    ///
    /// Records whose counter matches no stream are ignored; records with
    /// a non-finite timestamp never advance the tick clock (the gates
    /// drop them).
    pub fn ingest(&mut self, counter: Counter, sample: StreamSample, out: &mut Vec<PipelineEvent>) {
        if sample.time_secs.is_finite() {
            match self.tick_time {
                Some(t) if sample.time_secs > t => {
                    self.end_tick(t, out);
                    self.tick_time = Some(sample.time_secs);
                }
                None => self.tick_time = Some(sample.time_secs),
                _ => {}
            }
            // A fresh sample resurrects a feed that was marked ended.
            self.finished = false;
        }
        for i in 0..self.streams.len() {
            if self.streams[i].counter == counter {
                self.push_record(i, sample, sample.time_secs, out);
            }
        }
    }

    /// Ends the incremental feed: completes the final pending tick (its
    /// deferred fusion vote runs now) and marks the feed finished.
    /// Idempotent; a later [`ingest`](MachinePipeline::ingest) resumes
    /// the feed.
    pub fn finish(&mut self, out: &mut Vec<PipelineEvent>) {
        if self.finished {
            return;
        }
        if let Some(t) = self.tick_time.take() {
            self.end_tick(t, out);
        }
        self.finished = true;
    }

    /// Whether the machine-level fused alarm has fired.
    pub fn is_fused(&self) -> bool {
        self.fused
    }

    /// Whether the incremental feed has been [`finish`]ed (and not
    /// resumed since).
    ///
    /// [`finish`]: MachinePipeline::finish
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Newest tick whose event stream is final — the machine's watermark
    /// on the incremental path. `-inf` before the first completed tick.
    pub fn completed_time_secs(&self) -> f64 {
        self.completed_time
    }

    /// Timestamp of the tick currently being filled on the incremental
    /// path, if any.
    pub fn tick_time_secs(&self) -> Option<f64> {
        self.tick_time
    }

    /// Gate counters aggregated over all counter streams.
    pub fn counters(&self) -> StageCounters {
        let mut total = StageCounters::default();
        for cs in &self.streams {
            total.merge(cs.gate.counters());
        }
        total
    }

    /// Per-sample detector latency accumulated so far.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// Detector streams poisoned by an estimator error and disabled.
    pub fn detector_errors(&self) -> u64 {
        self.detector_errors
    }

    /// Whether the counter stream at `stream` has been disabled by an
    /// estimator error. Lets callers skip producing work (e.g. running a
    /// perturber) for a stream that would discard it anyway.
    pub fn stream_disabled(&self, stream: usize) -> bool {
        self.streams[stream].disabled
    }

    /// Number of counter streams.
    pub fn stream_count(&self) -> usize {
        self.streams.len()
    }

    /// Serializes the pipeline's complete dynamic state — every stream's
    /// gate, detector and poisoned flag, the fused latch, telemetry, and
    /// the incremental-path tick/watermark clocks — via
    /// [`aging_timeseries::persist`].
    ///
    /// Configuration (detector specs, fusion rule, gate knobs) is *not*
    /// written: recovery constructs a fresh pipeline from the same config
    /// and then calls [`MachinePipeline::restore_state`], which makes the
    /// restored pipeline bit-identical to the snapshotted one — feeding
    /// both the same subsequent records produces the same events with the
    /// same floating-point state down to the last ULP (the
    /// `pipeline_persistence` test drives this exact differential).
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use aging_timeseries::persist::{put_bool, put_f64, put_opt_f64, put_u64, put_usize};
        put_usize(out, self.streams.len());
        for cs in &self.streams {
            cs.gate.encode_state(out);
            cs.detector.encode_state(out);
            put_bool(out, cs.disabled);
        }
        put_bool(out, self.fused);
        self.latency.encode_state(out);
        put_u64(out, self.detector_errors);
        put_opt_f64(out, self.tick_time);
        put_f64(out, self.completed_time);
        put_bool(out, self.finished);
    }

    /// Restores state written by [`MachinePipeline::encode_state`] into a
    /// pipeline freshly constructed from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`aging_timeseries::Error::InvalidParameter`] on
    /// truncation, a stream-count or detector-family mismatch, or corrupt
    /// inner state.
    pub fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        let n = r.usize_()?;
        if n != self.streams.len() {
            return Err(aging_timeseries::Error::invalid(
                "persist",
                format!("pipeline has {} streams, snapshot {n}", self.streams.len()),
            ));
        }
        for cs in &mut self.streams {
            cs.gate.restore_state(r)?;
            cs.detector.restore_state(r)?;
            cs.disabled = r.bool()?;
        }
        self.fused = r.bool()?;
        self.latency.restore_state(r)?;
        self.detector_errors = r.u64()?;
        self.tick_time = r.opt_f64()?;
        self.completed_time = r.f64()?;
        self.finished = r.bool()?;
        Ok(())
    }

    /// Serialisable point-in-time state of this machine's pipeline.
    pub fn snapshot(&self, machine_id: u64, name: &str) -> MachineSnapshot {
        MachineSnapshot {
            machine_id,
            name: name.to_string(),
            last_time_secs: self.tick_time.or_else(|| {
                self.completed_time
                    .is_finite()
                    .then_some(self.completed_time)
            }),
            finished: self.finished,
            fused: self.fused,
            detector_errors: self.detector_errors,
            ingestion: self.counters(),
            streams: self
                .streams
                .iter()
                .map(|cs| CounterStreamSnapshot {
                    counter: cs.counter.to_string(),
                    detector: cs.detector_name.to_string(),
                    alarmed: cs.detector.is_alarmed(),
                    disabled: cs.disabled,
                    degraded: cs.gate.health() == GateHealth::Degraded,
                    ingestion: *cs.gate.counters(),
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_core::baseline::TrendPredictorConfig;

    fn trend_detectors() -> Vec<CounterDetector> {
        vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 64,
                refit_every: 4,
                alarm_horizon_secs: 1e6,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }]
    }

    fn gate() -> GateConfig {
        GateConfig {
            nominal_period_secs: 5.0,
            ..GateConfig::default()
        }
    }

    #[test]
    fn rejects_empty_detector_list() {
        assert!(MachinePipeline::new(&[], FusionRule::Any, gate()).is_err());
    }

    #[test]
    fn incremental_feed_alarms_and_fuses_once() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        for i in 0..400 {
            let s = StreamSample {
                time_secs: i as f64 * 5.0,
                value: 1e6 - 400.0 * i as f64,
            };
            p.ingest(Counter::AvailableBytes, s, &mut out);
        }
        p.finish(&mut out);
        assert!(p.is_fused());
        assert!(p.is_finished());
        let fused: Vec<_> = out
            .iter()
            .filter(|e| matches!(e.kind, AlarmKind::MachineAlarm { .. }))
            .collect();
        assert_eq!(fused.len(), 1);
        let det: Vec<_> = out
            .iter()
            .filter(|e| {
                e.level == AlertLevel::Alarm && matches!(e.kind, AlarmKind::Detector { .. })
            })
            .collect();
        assert_eq!(det.len(), 1);
        // The deferred fusion vote lands on the same tick as the
        // detector alarm, and emission order preserves that tick order.
        assert_eq!(fused[0].time_secs, det[0].time_secs);
        assert!(p.completed_time_secs() >= fused[0].time_secs);
        // Idempotent finish.
        let before = out.len();
        p.finish(&mut out);
        assert_eq!(out.len(), before);
    }

    #[test]
    fn watermark_trails_by_one_tick_then_catches_up() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        assert_eq!(p.completed_time_secs(), f64::NEG_INFINITY);
        let s = |t: f64| StreamSample {
            time_secs: t,
            value: 1e6,
        };
        p.ingest(Counter::AvailableBytes, s(0.0), &mut out);
        assert_eq!(p.completed_time_secs(), f64::NEG_INFINITY);
        p.ingest(Counter::AvailableBytes, s(5.0), &mut out);
        assert_eq!(p.completed_time_secs(), 0.0);
        // Stale and non-finite records never advance the tick clock.
        p.ingest(Counter::AvailableBytes, s(5.0), &mut out);
        p.ingest(Counter::AvailableBytes, s(f64::NAN), &mut out);
        assert_eq!(p.completed_time_secs(), 0.0);
        p.finish(&mut out);
        assert_eq!(p.completed_time_secs(), 5.0);
    }

    #[test]
    fn unknown_counter_records_are_ignored() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        p.ingest(
            Counter::HandleCount,
            StreamSample {
                time_secs: 0.0,
                value: 1.0,
            },
            &mut out,
        );
        assert_eq!(p.counters().ingested, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn snapshot_reflects_stream_state() {
        let mut p = MachinePipeline::new(&trend_detectors(), FusionRule::Any, gate()).unwrap();
        let mut out = Vec::new();
        for i in 0..10 {
            p.ingest(
                Counter::AvailableBytes,
                StreamSample {
                    time_secs: i as f64 * 5.0,
                    value: 1e6,
                },
                &mut out,
            );
        }
        let snap = p.snapshot(7, "m007:test");
        assert_eq!(snap.machine_id, 7);
        assert_eq!(snap.name, "m007:test");
        assert_eq!(snap.last_time_secs, Some(45.0));
        assert!(!snap.fused);
        assert_eq!(snap.streams.len(), 1);
        assert_eq!(snap.streams[0].counter, "available_bytes");
        assert_eq!(snap.streams[0].detector, "mann-kendall-sen");
        assert_eq!(snap.ingestion.ingested, 10);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("available_bytes"), "{json}");
    }
}
