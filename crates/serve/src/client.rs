//! Blocking client for the aging-serve wire protocol.
//!
//! [`ServeClient`] speaks the binary framing from [`crate::protocol`]:
//! it performs the version handshake, streams record batches under the
//! server-advertised credit window (blocking on acks when the window is
//! full), and issues status/machine/alarm queries. Ack round-trip times
//! are folded into a [`LatencyHistogram`] so load generators get ingest
//! latency for free.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use aging_memsim::Counter;
use aging_stream::sink::IngestSink;
use aging_stream::telemetry::{LatencyHistogram, MachineSnapshot};
use aging_timeseries::{Error, Result};

use crate::codec::FrameDecoder;
use crate::protocol::{
    columnar_spans, counter_code, counter_from_code, encode_batch_frame_into,
    encode_columnar_frame_into, encode_frame_into, Frame, Record, ServeEvent, COLUMN_HEADER_BYTES,
    COLUMN_RECORD_BYTES, PROTOCOL_VERSION, PROTOCOL_VERSION_V2, RECORD_BYTES,
};
use crate::server::ServeStatus;

/// How long [`ServeClient`] waits for any single reply frame before
/// giving up with [`Error::Io`].
pub const CLIENT_REPLY_TIMEOUT_MS: u64 = 10_000;

/// One `AlarmsReply` with its shard/watermark advertisement — what a
/// cluster aggregator consumes per poll.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmChunk {
    /// Shard identity the server advertises
    /// ([`crate::ServeConfig::shard_id`]; `0` for standalone servers).
    pub shard: u64,
    /// Release watermark consistent with `total`: every released event
    /// at or below this time is within the first `total` events, and the
    /// server will never release another event at or below it. `+inf`
    /// means the shard has drained (no feed can reopen the promise).
    pub watermark_secs: f64,
    /// Total released events on the server at reply time.
    pub total: u64,
    /// The events at `since..since + events.len()`.
    pub events: Vec<ServeEvent>,
}

/// One machine's shadow rejuvenation advisory (a decoded
/// `Frame::RejuvReply` for a known machine): what the server's
/// configured [`aging_rejuv::RejuvPolicy`] would have decided over the
/// machine's released alarm history. Purely observational — the serve
/// tier never restarts anything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejuvAdvice {
    /// Configured policy ([`aging_rejuv::RejuvPolicy::code`]).
    pub policy: u8,
    /// Restarts the policy would have granted so far.
    pub restarts: u64,
    /// Requests the policy would have denied (cooldown or budget).
    pub denied: u64,
    /// Time of the last granted shadow restart, if any.
    pub last_restart_secs: Option<f64>,
}

/// A connected, handshaken client session.
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
    dec: FrameDecoder,
    /// Credit window granted by the server's `HelloAck`.
    window: u16,
    /// Frame size limit granted by the server's `HelloAck`.
    max_frame: u32,
    /// Protocol version negotiated in the handshake.
    version: u8,
    inflight: VecDeque<(u64, Instant)>,
    next_seq: u64,
    ack_rtt: LatencyHistogram,
    records_accepted: u64,
    busy_frames: u64,
    /// Reused wire-encoding buffer — batch sends allocate nothing.
    enc: Vec<u8>,
    /// Reused span-split scratch for [`ServeClient::send_column`].
    spans: Vec<(usize, usize)>,
}

impl ServeClient {
    /// Connects and completes the `Hello`/`HelloAck` handshake, offering
    /// [`PROTOCOL_VERSION_V2`] (the server negotiates down to v1 if that
    /// is all it speaks — check [`ServeClient::version`]).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure, a rejected protocol version, or
    /// an unexpected handshake reply.
    pub fn connect(addr: SocketAddr, name: &str) -> Result<ServeClient> {
        ServeClient::connect_with_version(addr, name, PROTOCOL_VERSION_V2)
    }

    /// Connects offering a specific protocol version — how a v1-only
    /// client presents itself (and how back-compat tests pin the
    /// negotiated session down).
    ///
    /// # Errors
    ///
    /// Same as [`ServeClient::connect`].
    pub fn connect_with_version(addr: SocketAddr, name: &str, version: u8) -> Result<ServeClient> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        stream.set_nodelay(true).map_err(io_err)?;
        stream
            .set_read_timeout(Some(Duration::from_millis(50)))
            .map_err(io_err)?;
        let mut client = ServeClient {
            stream,
            dec: FrameDecoder::new(u32::MAX),
            window: 1,
            max_frame: u32::MAX,
            version: PROTOCOL_VERSION,
            inflight: VecDeque::new(),
            next_seq: 0,
            ack_rtt: LatencyHistogram::default(),
            records_accepted: 0,
            busy_frames: 0,
            enc: Vec::new(),
            spans: Vec::new(),
        };
        client.send(&Frame::Hello {
            version,
            name: name.to_string(),
        })?;
        match client.recv_reply()? {
            Frame::HelloAck {
                version: negotiated,
                window,
                max_frame,
            } => {
                // Never speak above what we offered, whatever the server
                // claims.
                client.version = negotiated.min(version);
                client.window = window.max(1);
                client.max_frame = max_frame;
                Ok(client)
            }
            Frame::Error { code, message } => Err(Error::Io(format!(
                "handshake rejected (code {code}): {message}"
            ))),
            other => Err(Error::Io(format!("unexpected handshake reply: {other:?}"))),
        }
    }

    /// The protocol version negotiated in the handshake; columnar sends
    /// require [`PROTOCOL_VERSION_V2`].
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Ack round-trip latency observed so far (one sample per batch).
    pub fn ack_rtt(&self) -> &LatencyHistogram {
        &self.ack_rtt
    }

    /// Total records the server has acked as accepted.
    pub fn records_accepted(&self) -> u64 {
        self.records_accepted
    }

    /// Advisory `Busy` frames received (backpressure signals).
    pub fn busy_frames(&self) -> u64 {
        self.busy_frames
    }

    /// Sequence numbers of batches sent but not yet acked, oldest first.
    ///
    /// After a server crash these are exactly the batches whose
    /// durability is unknown — a resuming client re-sends them (the
    /// engine's gates drop any records that were in fact journaled, so
    /// redelivery is idempotent).
    pub fn unacked_seqs(&self) -> Vec<u64> {
        self.inflight.iter().map(|&(seq, _)| seq).collect()
    }

    /// Sends one batch, blocking for an ack first if the credit window
    /// is exhausted.
    ///
    /// **Deprecated in favor of the unified ingestion surface** — new
    /// code should feed through [`IngestSink`] (`ingest_record` /
    /// `ingest_column`) or [`ServeClient::send_column`], which pick the
    /// best wire framing for the negotiated protocol version. This
    /// method stays (not removed) as the protocol-v1 record-framing
    /// primitive those paths fall back to.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a server `Error` frame.
    pub fn send_batch(&mut self, records: &[Record]) -> Result<u64> {
        while self.inflight.len() >= usize::from(self.window) {
            self.pump_one()?;
        }
        self.next_seq += 1;
        let seq = self.next_seq;
        // Encode straight from the slice into the reused buffer: no
        // owned `Frame`, no `records.to_vec()`.
        let mut enc = std::mem::take(&mut self.enc);
        encode_batch_frame_into(seq, records, &mut enc);
        let sent = self.stream.write_all(&enc).map_err(io_err);
        self.enc = enc;
        sent?;
        self.inflight.push_back((seq, Instant::now()));
        // Opportunistically drain any acks already on the wire.
        self.drain_ready()?;
        Ok(seq)
    }

    /// Sends one column — `counter` on `machine_id` with parallel
    /// `times`/`values` slices — as [`Frame::BatchColumnar`] frames,
    /// splitting wherever the delta encoding cannot reproduce a
    /// timestamp bit-exactly ([`columnar_spans`]) and at the negotiated
    /// frame size. Extra elements beyond the shorter slice are ignored.
    /// Returns the number of frames sent; credit-window blocking and
    /// ack/RTT accounting are identical to [`ServeClient::send_batch`].
    ///
    /// On a session negotiated below [`PROTOCOL_VERSION_V2`] the column
    /// falls back to equivalent record batches, so callers never need to
    /// care what the server speaks.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a server `Error` frame.
    pub fn send_column(
        &mut self,
        machine_id: u64,
        counter: u8,
        times: &[f64],
        values: &[f64],
    ) -> Result<u64> {
        let n = times.len().min(values.len());
        if n == 0 {
            return Ok(0);
        }
        if self.version < PROTOCOL_VERSION_V2 {
            return self.send_column_as_batches(machine_id, counter, &times[..n], &values[..n]);
        }
        let max_span = ((self.max_frame as usize).saturating_sub(COLUMN_HEADER_BYTES)
            / COLUMN_RECORD_BYTES)
            .max(1);
        let mut spans = std::mem::take(&mut self.spans);
        columnar_spans(&times[..n], max_span, &mut spans);
        let mut frames = 0u64;
        for &(start, len) in &spans {
            while self.inflight.len() >= usize::from(self.window) {
                if let Err(e) = self.pump_one() {
                    self.spans = spans;
                    return Err(e);
                }
            }
            self.next_seq += 1;
            let seq = self.next_seq;
            let mut enc = std::mem::take(&mut self.enc);
            let sent = encode_columnar_frame_into(
                seq,
                machine_id,
                counter,
                &times[start..start + len],
                &values[start..start + len],
                &mut enc,
            )
            .map_err(Error::Io)
            .and_then(|()| self.stream.write_all(&enc).map_err(io_err));
            self.enc = enc;
            if let Err(e) = sent {
                self.spans = spans;
                return Err(e);
            }
            self.inflight.push_back((seq, Instant::now()));
            frames += 1;
            if let Err(e) = self.drain_ready() {
                self.spans = spans;
                return Err(e);
            }
        }
        self.spans = spans;
        Ok(frames)
    }

    /// v1 fallback for [`ServeClient::send_column`]: the same records as
    /// classic [`Frame::Batch`]es sized to the negotiated frame limit.
    fn send_column_as_batches(
        &mut self,
        machine_id: u64,
        counter: u8,
        times: &[f64],
        values: &[f64],
    ) -> Result<u64> {
        let per_batch = ((self.max_frame as usize).saturating_sub(11) / RECORD_BYTES)
            .clamp(1, usize::from(u16::MAX));
        let mut records = Vec::with_capacity(per_batch.min(times.len()));
        let mut frames = 0u64;
        for chunk_start in (0..times.len()).step_by(per_batch) {
            let end = (chunk_start + per_batch).min(times.len());
            records.clear();
            for k in chunk_start..end {
                records.push(Record {
                    machine_id,
                    counter,
                    time_secs: times[k],
                    value: values[k],
                });
            }
            self.send_batch(&records)?;
            frames += 1;
        }
        Ok(frames)
    }

    /// Blocks until every outstanding batch has been acked.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or reply timeout.
    pub fn flush(&mut self) -> Result<()> {
        while !self.inflight.is_empty() {
            self.pump_one()?;
        }
        Ok(())
    }

    /// Declares a machine's feed complete (its pipeline is flushed and
    /// stops holding the fleet watermark).
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure.
    pub fn machine_done(&mut self, machine_id: u64) -> Result<()> {
        self.send(&Frame::MachineDone { machine_id })
    }

    /// Fetches the server's status document.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_status(&mut self) -> Result<ServeStatus> {
        self.send(&Frame::QueryStatus)?;
        match self.recv_reply()? {
            Frame::StatusReply { json } => {
                serde_json::from_str(&json).map_err(|e| Error::Io(format!("bad status reply: {e}")))
            }
            other => Err(Error::Io(format!("unexpected status reply: {other:?}"))),
        }
    }

    /// Fetches one machine's pipeline snapshot, `None` when the server
    /// has never seen that machine.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_machine(&mut self, machine_id: u64) -> Result<Option<MachineSnapshot>> {
        self.send(&Frame::QueryMachine { machine_id })?;
        match self.recv_reply()? {
            Frame::MachineReply { json: None } => Ok(None),
            Frame::MachineReply { json: Some(json) } => serde_json::from_str(&json)
                .map(Some)
                .map_err(|e| Error::Io(format!("bad machine reply: {e}"))),
            other => Err(Error::Io(format!("unexpected machine reply: {other:?}"))),
        }
    }

    /// Fetches one machine's latest streaming Δα width per counter,
    /// `None` when the server has never seen that machine. Requires a
    /// v2-negotiated session; on a v1 session the server treats the
    /// query as a strike.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_spectrum(&mut self, machine_id: u64) -> Result<Option<Vec<(Counter, f64)>>> {
        self.send(&Frame::QuerySpectrum { machine_id })?;
        match self.recv_reply()? {
            Frame::SpectrumReply {
                machine_id: m,
                known,
                widths,
            } if m == machine_id => {
                if !known {
                    return Ok(None);
                }
                let mut decoded = Vec::with_capacity(widths.len());
                for (code, width) in widths {
                    let counter = counter_from_code(code).ok_or_else(|| {
                        Error::Io(format!("bad counter code {code} in spectrum reply"))
                    })?;
                    decoded.push((counter, width));
                }
                Ok(Some(decoded))
            }
            other => Err(Error::Io(format!("unexpected spectrum reply: {other:?}"))),
        }
    }

    /// Fetches one machine's shadow rejuvenation advisory — what the
    /// server's configured policy would have decided over the machine's
    /// released alarm history. `None` when the server has never seen
    /// that machine. Requires a v2-negotiated session; on a v1 session
    /// the server treats the query as a strike.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_rejuv(&mut self, machine_id: u64) -> Result<Option<RejuvAdvice>> {
        self.send(&Frame::QueryRejuv { machine_id })?;
        match self.recv_reply()? {
            Frame::RejuvReply {
                machine_id: m,
                known,
                policy,
                restarts,
                denied,
                last_restart_secs,
            } if m == machine_id => Ok(known.then_some(RejuvAdvice {
                policy,
                restarts,
                denied,
                last_restart_secs,
            })),
            other => Err(Error::Io(format!("unexpected rejuv reply: {other:?}"))),
        }
    }

    /// Fetches one chunk of released alarm history starting at `since`;
    /// returns `(total_released, chunk)`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_alarms(&mut self, since: u64) -> Result<(u64, Vec<ServeEvent>)> {
        let chunk = self.query_alarms_chunk(since)?;
        Ok((chunk.total, chunk.events))
    }

    /// Fetches one chunk of released alarm history starting at `since`,
    /// including the server's shard/watermark advertisement — what the
    /// cluster aggregator's merge loop consumes.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_alarms_chunk(&mut self, since: u64) -> Result<AlarmChunk> {
        self.send(&Frame::QueryAlarms { since })?;
        match self.recv_reply()? {
            Frame::AlarmsReply {
                since: _,
                total,
                shard,
                watermark_secs,
                events,
            } => Ok(AlarmChunk {
                shard,
                watermark_secs,
                total,
                events,
            }),
            other => Err(Error::Io(format!("unexpected alarms reply: {other:?}"))),
        }
    }

    /// Fetches the complete released alarm history, following the chunk
    /// cursor until caught up.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on socket failure or a malformed reply.
    pub fn query_alarms_all(&mut self) -> Result<Vec<ServeEvent>> {
        let mut events: Vec<ServeEvent> = Vec::new();
        loop {
            let (total, chunk) = self.query_alarms(events.len() as u64)?;
            let done = chunk.is_empty();
            events.extend(chunk);
            if done || events.len() as u64 >= total {
                return Ok(events);
            }
        }
    }

    /// Flushes outstanding acks and closes the session with `Bye`.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the flush fails; a missing `ByeAck` (server
    /// already gone) is tolerated.
    pub fn bye(mut self) -> Result<LatencyHistogram> {
        self.flush()?;
        self.send(&Frame::Bye)?;
        // Best effort: the reply may race the close.
        let _ = self.recv_reply();
        Ok(self.ack_rtt)
    }

    // -- internals --------------------------------------------------------

    fn send(&mut self, frame: &Frame) -> Result<()> {
        let mut enc = std::mem::take(&mut self.enc);
        encode_frame_into(frame, &mut enc);
        let sent = self.stream.write_all(&enc).map_err(io_err);
        self.enc = enc;
        sent
    }

    /// Handles one already-decoded incoming frame; `true` when it was an
    /// ack (progress for window flushing).
    fn absorb(&mut self, frame: Frame) -> Result<bool> {
        match frame {
            Frame::Ack { seq, accepted } => {
                self.records_accepted += u64::from(accepted);
                if let Some(pos) = self.inflight.iter().position(|&(s, _)| s == seq) {
                    let (_, sent) = self.inflight.remove(pos).expect("position just found");
                    self.ack_rtt.record(sent.elapsed());
                }
                Ok(true)
            }
            Frame::Busy { .. } => {
                self.busy_frames += 1;
                Ok(false)
            }
            Frame::Error { code, message } => {
                Err(Error::Io(format!("server error (code {code}): {message}")))
            }
            other => Err(Error::Io(format!("unsolicited frame: {other:?}"))),
        }
    }

    /// Decodes frames already buffered locally without blocking.
    fn drain_ready(&mut self) -> Result<()> {
        while let Some(payload) = self.dec.next_payload().map_err(corrupt_err)? {
            let frame = Frame::decode_payload(&payload).map_err(Error::Io)?;
            self.absorb(frame)?;
        }
        Ok(())
    }

    /// Blocks until one ack arrives (absorbing busy frames on the way).
    fn pump_one(&mut self) -> Result<()> {
        let deadline = Instant::now() + Duration::from_millis(CLIENT_REPLY_TIMEOUT_MS);
        loop {
            while let Some(payload) = self.dec.next_payload().map_err(corrupt_err)? {
                let frame = Frame::decode_payload(&payload).map_err(Error::Io)?;
                if self.absorb(frame)? {
                    return Ok(());
                }
            }
            self.fill(deadline)?;
        }
    }

    /// Blocks until the next non-ack reply frame arrives; acks and busy
    /// frames encountered on the way are absorbed.
    fn recv_reply(&mut self) -> Result<Frame> {
        let deadline = Instant::now() + Duration::from_millis(CLIENT_REPLY_TIMEOUT_MS);
        loop {
            while let Some(payload) = self.dec.next_payload().map_err(corrupt_err)? {
                let frame = Frame::decode_payload(&payload).map_err(Error::Io)?;
                match frame {
                    Frame::Ack { .. } | Frame::Busy { .. } => {
                        self.absorb(frame)?;
                    }
                    other => return Ok(other),
                }
            }
            self.fill(deadline)?;
        }
    }

    /// Reads more bytes from the socket into the decoder, failing past
    /// the deadline.
    fn fill(&mut self, deadline: Instant) -> Result<()> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(Error::Io("server closed the connection".into())),
                Ok(n) => {
                    self.dec.feed(&buf[..n]);
                    return Ok(());
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Err(Error::Io("timed out waiting for server reply".into()));
                    }
                }
                Err(e) => return Err(io_err(e)),
            }
        }
    }
}

/// Wire-side [`IngestSink`]: feeders written against the trait can push
/// samples through a live socket exactly as they would into an
/// in-process sink. Records travel as single-record batches (prefer the
/// column method or explicit [`ServeClient::send_batch`] calls for
/// throughput); columns use the columnar fast path with automatic v1
/// fallback. An `Ok` return means the frame was *sent*, not acked —
/// call [`ServeClient::flush`] for the durability barrier.
impl IngestSink for ServeClient {
    type Error = Error;

    fn ingest_record(
        &mut self,
        machine_id: u64,
        counter: Counter,
        time_secs: f64,
        value: f64,
    ) -> Result<()> {
        self.send_batch(&[Record {
            machine_id,
            counter: counter_code(counter),
            time_secs,
            value,
        }])
        .map(|_seq| ())
    }

    fn ingest_column(
        &mut self,
        machine_id: u64,
        counter: Counter,
        times: &[f64],
        values: &[f64],
    ) -> Result<()> {
        self.send_column(machine_id, counter_code(counter), times, values)
            .map(|_frames| ())
    }

    fn machine_done(&mut self, machine_id: u64) -> Result<()> {
        ServeClient::machine_done(self, machine_id)
    }
}

fn io_err(e: std::io::Error) -> Error {
    Error::Io(e.to_string())
}

fn corrupt_err(c: crate::codec::CorruptStream) -> Error {
    Error::Io(format!("corrupt reply stream: {}", c.reason))
}
