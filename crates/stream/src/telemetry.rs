//! Observability: per-stage counters, fixed-bucket latency histograms and
//! serialisable status snapshots.
//!
//! Every stage of the streaming pipeline counts what it does; the
//! supervisor aggregates those counts into a [`StatusSnapshot`] that
//! serialises to JSON (machine consumption) and renders as a one-line
//! plain-text status (operator consumption). Nothing here locks or
//! allocates on the hot path — counters are plain integers owned by their
//! stage and snapshotted by value.

use serde::{Deserialize, Serialize};

use aging_timeseries::Result;

/// Ingestion/gating counters for one stream (or aggregated over many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCounters {
    /// Raw samples pulled from the source.
    pub ingested: u64,
    /// Samples accepted into the detector.
    pub accepted: u64,
    /// Samples dropped for non-finite value or timestamp.
    pub dropped_non_finite: u64,
    /// Samples dropped for a non-advancing timestamp.
    pub dropped_out_of_order: u64,
    /// Feed discontinuities (detector resets forced by long gaps).
    pub gaps_detected: u64,
    /// Quarantine recoveries: detector resets forced after a run of
    /// `quarantine_after` consecutive drops (see
    /// [`crate::gate::GateConfig::quarantine_after`]).
    pub quarantines: u64,
}

impl StageCounters {
    /// Component-wise accumulation (for fleet-level aggregation).
    pub fn merge(&mut self, other: &StageCounters) {
        self.ingested += other.ingested;
        self.accepted += other.accepted;
        self.dropped_non_finite += other.dropped_non_finite;
        self.dropped_out_of_order += other.dropped_out_of_order;
        self.gaps_detected += other.gaps_detected;
        self.quarantines += other.quarantines;
    }

    /// Total dropped samples.
    pub fn dropped(&self) -> u64 {
        self.dropped_non_finite + self.dropped_out_of_order
    }

    /// Serializes the counters via [`aging_timeseries::persist`].
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use aging_timeseries::persist::put_u64;
        put_u64(out, self.ingested);
        put_u64(out, self.accepted);
        put_u64(out, self.dropped_non_finite);
        put_u64(out, self.dropped_out_of_order);
        put_u64(out, self.gaps_detected);
        put_u64(out, self.quarantines);
    }

    /// Restores counters written by [`StageCounters::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns [`aging_timeseries::Error::InvalidParameter`] on a
    /// truncated blob.
    pub fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        self.ingested = r.u64()?;
        self.accepted = r.u64()?;
        self.dropped_non_finite = r.u64()?;
        self.dropped_out_of_order = r.u64()?;
        self.gaps_detected = r.u64()?;
        self.quarantines = r.u64()?;
        Ok(())
    }
}

/// Upper edges of the fixed latency buckets, in microseconds. The last
/// bucket is unbounded.
pub const LATENCY_BUCKET_EDGES_US: [u64; 8] = [10, 30, 100, 300, 1_000, 3_000, 10_000, 100_000];

/// A fixed-bucket histogram of per-sample detector latencies.
///
/// Fixed buckets keep recording O(1) with zero allocation and make
/// snapshots trivially mergeable across shards — the standard trade
/// against exact quantiles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// `counts[i]` = observations ≤ `LATENCY_BUCKET_EDGES_US[i]` (and
    /// above the previous edge); the final slot counts the overflow.
    pub counts: [u64; 9],
    /// Total observations.
    pub total: u64,
    /// Sum of all observed latencies, µs (for the mean).
    pub sum_us: u64,
    /// Largest observed latency, µs.
    pub max_us: u64,
}

impl LatencyHistogram {
    /// Records one observation in microseconds.
    pub fn record_us(&mut self, us: u64) {
        let slot = LATENCY_BUCKET_EDGES_US
            .iter()
            .position(|&edge| us <= edge)
            .unwrap_or(LATENCY_BUCKET_EDGES_US.len());
        self.counts[slot] += 1;
        self.total += 1;
        self.sum_us += us;
        self.max_us = self.max_us.max(us);
    }

    /// Records an elapsed [`std::time::Duration`].
    pub fn record(&mut self, elapsed: std::time::Duration) {
        self.record_us(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.total as f64
        }
    }

    /// Smallest bucket edge covering at least `q` (0..=1) of the mass —
    /// an upper bound on the true quantile. Returns `None` when empty.
    pub fn quantile_upper_bound_us(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        // Clamp the rank to ≥ 1: with q = 0 a zero target would be
        // "reached" at the first bucket even when it is empty, reporting
        // the lowest edge regardless of where the mass actually lies. The
        // 0-quantile is the minimum — the first *non-empty* bucket's edge.
        let target = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(
                    LATENCY_BUCKET_EDGES_US
                        .get(i)
                        .copied()
                        .unwrap_or(self.max_us.max(1)),
                );
            }
        }
        Some(self.max_us.max(1))
    }

    /// Merges another histogram into this one.
    ///
    /// Audited field by field against the replay semantics (recording
    /// both underlying observation streams into one histogram): bucket
    /// counts — including the overflow slot, `counts[8]` — `total` and
    /// `sum_us` are sums, while `max_us` combines with `max` (the maximum
    /// of a concatenation is the maximum of the maxima). The equivalence
    /// `merge(a, b) == replay(a ++ b)` is locked by a proptest in
    /// `tests/telemetry_props.rs`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Serializes the histogram via [`aging_timeseries::persist`].
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use aging_timeseries::persist::put_u64;
        for &c in &self.counts {
            put_u64(out, c);
        }
        put_u64(out, self.total);
        put_u64(out, self.sum_us);
        put_u64(out, self.max_us);
    }

    /// Restores a histogram written by [`LatencyHistogram::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns [`aging_timeseries::Error::InvalidParameter`] on a
    /// truncated blob.
    pub fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        for c in &mut self.counts {
            *c = r.u64()?;
        }
        self.total = r.u64()?;
        self.sum_us = r.u64()?;
        self.max_us = r.u64()?;
        Ok(())
    }
}

/// Point-in-time state of the whole streaming pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatusSnapshot {
    /// Monotonic snapshot ordinal (one per status period).
    pub sequence: u64,
    /// Simulated/stream clock at the snapshot, seconds.
    pub stream_time_secs: f64,
    /// Machines still feeding samples.
    pub machines_live: usize,
    /// Machines whose feeds have ended (crash or horizon).
    pub machines_finished: usize,
    /// Fleet-aggregated ingestion counters.
    pub ingestion: StageCounters,
    /// Fleet-aggregated per-sample detector latency.
    pub detector_latency: LatencyHistogram,
    /// Warnings emitted so far.
    pub warnings_emitted: u64,
    /// Alarms emitted so far.
    pub alarms_emitted: u64,
    /// Alarm-channel depth at the snapshot (backpressure signal).
    pub alarm_queue_depth: usize,
    /// Telemetry snapshots dropped because the channel was full (the
    /// documented lossy path).
    pub telemetry_dropped: u64,
    /// Detector streams poisoned by an estimator error and disabled.
    pub detector_errors: u64,
    /// Rejuvenation restarts granted by the controller so far (zero when
    /// no rejuvenation policy is configured).
    pub restarts_granted: u64,
    /// Restart requests denied (cooldown or budget) so far.
    pub restarts_denied: u64,
}

/// Canonical name for the serialisable pipeline snapshot schema.
///
/// The supervisor's JSON status dump and the `aging-serve` query replies
/// both serialise exactly this type, so operators see one schema no
/// matter which surface they scrape.
pub type Snapshot = StatusSnapshot;

/// Serialisable state of one counter stream inside a machine pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStreamSnapshot {
    /// Monitored counter, by its stable display name.
    pub counter: String,
    /// Detector family name running on the counter.
    pub detector: String,
    /// Whether the detector's confirmed alarm has latched.
    pub alarmed: bool,
    /// Whether the stream was poisoned by an estimator error and disabled.
    pub disabled: bool,
    /// Whether the gate currently holds the stream in quarantine
    /// (a drop burst is in progress).
    pub degraded: bool,
    /// Latest multifractal spectrum width Δα, when the stream runs a
    /// spectrum-width detector that has emitted at least one window.
    pub delta_alpha: Option<f64>,
    /// This stream's gate counters.
    pub ingestion: StageCounters,
}

/// Serialisable state of one machine's whole detection pipeline —
/// the payload of a per-machine query reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSnapshot {
    /// Caller-assigned machine identity.
    pub machine_id: u64,
    /// Display name.
    pub name: String,
    /// Newest sample-clock reading seen, seconds (`None` before the
    /// first finite sample).
    pub last_time_secs: Option<f64>,
    /// Whether the feed has ended.
    pub finished: bool,
    /// Whether the machine-level fused alarm has fired.
    pub fused: bool,
    /// Detector streams poisoned by an estimator error.
    pub detector_errors: u64,
    /// Gate counters aggregated over all this machine's streams.
    pub ingestion: StageCounters,
    /// Per-counter stream states, in detector-config order.
    pub streams: Vec<CounterStreamSnapshot>,
}

impl StatusSnapshot {
    /// Serialises the snapshot as JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialisation failures.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self)
            .map_err(|e| aging_timeseries::Error::Numerical(format!("status snapshot: {e}")))
    }

    /// One-line operator-readable status.
    pub fn status_line(&self) -> String {
        format!(
            "[t={:>8.0}s] live={:<3} done={:<3} in={} ok={} drop={} gap={} quar={} warn={} alarm={} lat(mean={:.0}us p99<={}us) qd={} tdrop={} derr={}",
            self.stream_time_secs,
            self.machines_live,
            self.machines_finished,
            self.ingestion.ingested,
            self.ingestion.accepted,
            self.ingestion.dropped(),
            self.ingestion.gaps_detected,
            self.ingestion.quarantines,
            self.warnings_emitted,
            self.alarms_emitted,
            self.detector_latency.mean_us(),
            self.detector_latency
                .quantile_upper_bound_us(0.99)
                .unwrap_or(0),
            self.alarm_queue_depth,
            self.telemetry_dropped,
            self.detector_errors,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_componentwise() {
        let mut a = StageCounters {
            ingested: 10,
            accepted: 8,
            dropped_non_finite: 1,
            dropped_out_of_order: 1,
            gaps_detected: 2,
            quarantines: 1,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.ingested, 20);
        assert_eq!(a.dropped(), 4);
        assert_eq!(a.gaps_detected, 4);
        assert_eq!(a.quarantines, 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::default();
        for us in [5, 9, 50, 200, 2_000, 500_000] {
            h.record_us(us);
        }
        assert_eq!(h.total, 6);
        assert_eq!(h.counts[0], 2); // ≤10
        assert_eq!(h.counts[2], 1); // ≤100
        assert_eq!(h.counts[8], 1); // overflow
        assert_eq!(h.max_us, 500_000);
        // Median falls in the ≤300 bucket edge or lower.
        assert!(h.quantile_upper_bound_us(0.5).unwrap() <= 300);
        // Extreme quantile reports the overflow max.
        assert_eq!(h.quantile_upper_bound_us(1.0).unwrap(), 500_000);
        let mut other = LatencyHistogram::default();
        other.record_us(1);
        other.merge(&h);
        assert_eq!(other.total, 7);
        assert!(other.mean_us() > 0.0);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty histogram: no quantile at any q.
        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile_upper_bound_us(0.0), None);
        assert_eq!(empty.quantile_upper_bound_us(1.0), None);

        // All mass in one high bucket: q = 0 must skip the empty low
        // buckets and report that bucket's edge, not the lowest edge.
        let mut high = LatencyHistogram::default();
        for _ in 0..5 {
            high.record_us(2_000); // ≤3_000 bucket
        }
        assert_eq!(high.quantile_upper_bound_us(0.0), Some(3_000));
        assert_eq!(high.quantile_upper_bound_us(0.5), Some(3_000));
        assert_eq!(high.quantile_upper_bound_us(1.0), Some(3_000));

        // Single sample: every quantile is that sample's bucket edge.
        let mut one = LatencyHistogram::default();
        one.record_us(250);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile_upper_bound_us(q), Some(300), "q={q}");
        }

        // All mass in the overflow slot: the bound is the observed max.
        let mut over = LatencyHistogram::default();
        over.record_us(200_000);
        over.record_us(900_000);
        assert_eq!(over.quantile_upper_bound_us(0.0), Some(900_000));
        assert_eq!(over.quantile_upper_bound_us(1.0), Some(900_000));

        // Out-of-range q is clamped.
        assert_eq!(one.quantile_upper_bound_us(-3.0), Some(300));
        assert_eq!(one.quantile_upper_bound_us(7.0), Some(300));
    }

    #[test]
    fn telemetry_state_round_trips() {
        let mut h = LatencyHistogram::default();
        for us in [5, 9, 50, 200, 2_000, 500_000] {
            h.record_us(us);
        }
        let c = StageCounters {
            ingested: 10,
            accepted: 8,
            dropped_non_finite: 1,
            dropped_out_of_order: 1,
            gaps_detected: 2,
            quarantines: 1,
        };
        let mut blob = Vec::new();
        h.encode_state(&mut blob);
        c.encode_state(&mut blob);
        let mut h2 = LatencyHistogram::default();
        let mut c2 = StageCounters::default();
        let mut r = aging_timeseries::persist::Reader::new(&blob);
        h2.restore_state(&mut r).unwrap();
        c2.restore_state(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(h, h2);
        assert_eq!(c, c2);
    }

    #[test]
    fn snapshot_serialises_and_renders() {
        let snap = StatusSnapshot {
            sequence: 3,
            stream_time_secs: 1800.0,
            machines_live: 49,
            machines_finished: 1,
            ingestion: StageCounters {
                ingested: 1000,
                accepted: 990,
                dropped_non_finite: 6,
                dropped_out_of_order: 4,
                gaps_detected: 1,
                quarantines: 0,
            },
            detector_latency: LatencyHistogram::default(),
            warnings_emitted: 5,
            alarms_emitted: 2,
            alarm_queue_depth: 0,
            telemetry_dropped: 0,
            detector_errors: 0,
            restarts_granted: 0,
            restarts_denied: 0,
        };
        let json = snap.to_json().unwrap();
        assert!(json.contains("\"alarms_emitted\":2"), "{json}");
        let back: StatusSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.machines_live, 49);
        let line = snap.status_line();
        assert!(line.contains("alarm=2"), "{line}");
        assert!(line.contains("live=49"), "{line}");
    }
}
