//! Offline vendored subset of the [`criterion`](https://docs.rs/criterion)
//! benchmarking surface. No statistics engine or HTML reports — each
//! benchmark is auto-calibrated to a target measurement time, then the
//! mean per-iteration wall time (and throughput, when configured) is
//! printed in a criterion-like line format:
//!
//! ```text
//! holder/trace/local-increment  time: 1.234 ms/iter  thrpt: 3.32 Melem/s
//! ```
//!
//! Supported: `criterion_group!`/`criterion_main!`, `Criterion::
//! bench_function`, `benchmark_group` with `throughput`/`bench_function`/
//! `bench_with_input`/`finish`, `BenchmarkId::new`, `black_box`, and
//! command-line filtering (`cargo bench -- <substring>`).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is a re-export too).
pub use std::hint::black_box;

/// Target wall time per benchmark measurement (after calibration).
const TARGET: Duration = Duration::from_millis(300);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

/// Conversion into a benchmark id (accepts `&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing loop driver passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    /// Number of iterations of the measured closure per sample.
    iters: u64,
    /// Total elapsed time of the measured sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, auto-calibrating the iteration count so the
    /// measurement fills the target time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: double iterations until the batch takes ≥ ~1/8 of
        // the target, then scale up and measure once.
        let mut n: u64 = 1;
        let calibration_floor = TARGET / 8;
        let mut batch = loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = start.elapsed();
            if took >= calibration_floor || n >= 1 << 30 {
                break took.max(Duration::from_nanos(1));
            }
            n *= 2;
        };
        let scale = (TARGET.as_secs_f64() / batch.as_secs_f64()).clamp(1.0, 1024.0);
        let final_n = ((n as f64) * scale).ceil() as u64;
        if final_n > n {
            let start = Instant::now();
            for _ in 0..final_n {
                black_box(routine());
            }
            batch = start.elapsed();
            n = final_n;
        }
        self.iters = n;
        self.elapsed = batch;
    }

    fn per_iter_secs(&self) -> f64 {
        self.elapsed.as_secs_f64() / self.iters.max(1) as f64
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn format_rate(rate: f64, unit: &str) -> String {
    if rate >= 1e9 {
        format!("{:.2} G{unit}/s", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2} M{unit}/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2} K{unit}/s", rate / 1e3)
    } else {
        format!("{rate:.2} {unit}/s")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    filter: Option<&str>,
    thrpt: Option<Throughput>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut bencher = Bencher {
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.per_iter_secs();
    let mut line = format!("{id:<48} time: {:>12}/iter", format_time(per_iter));
    match thrpt {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            line.push_str(&format!(
                "  thrpt: {:>12}",
                format_rate(n as f64 / per_iter, "elem")
            ));
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            line.push_str(&format!(
                "  thrpt: {:>12}",
                format_rate(n as f64 / per_iter, "B")
            ));
        }
        _ => {}
    }
    println!("{line}");
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark-name filter from the command line
    /// (`cargo bench -- <substring>`).
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), self.filter.as_deref(), None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            filter: self.filter.clone(),
            _criterion: std::marker::PhantomData,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    filter: Option<String>,
    _criterion: std::marker::PhantomData<&'c ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput annotation.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(&full, self.filter.as_deref(), self.throughput, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.filter.as_deref(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        b.iter(|| std::hint::black_box(1u64 + 1));
        assert!(b.iters >= 1);
        assert!(b.per_iter_secs() > 0.0);
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("dwt", 4096).id, "dwt/4096");
        assert_eq!("plain".into_id(), "plain");
    }

    #[test]
    fn formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
        assert!(format_rate(5e9, "elem").starts_with("5.00 G"));
    }
}
