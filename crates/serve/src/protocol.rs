//! Wire protocol: frame layout, payload encodings and the event codec.
//!
//! # Frame layout
//!
//! Every binary frame on the wire is
//!
//! ```text
//! ┌──────────────┬───────────────────┬────────────────────┐
//! │ len: u32 LE  │ payload (len B)   │ crc: u32 LE        │
//! └──────────────┴───────────────────┴────────────────────┘
//! ```
//!
//! where `crc` is the CRC-32 (IEEE, reflected) of the payload bytes and
//! `len` must be in `1..=max_frame` (negotiated in the handshake, default
//! [`DEFAULT_MAX_FRAME`]). A zero or oversized `len`, or a CRC mismatch,
//! means framing is lost: the receiver cannot trust any later byte
//! boundary and must drop the connection ([`crate::codec::CorruptStream`]).
//! A frame that passes CRC but whose payload does not parse is *malformed*
//! but consumable — the receiver skips it, counts a strike, and keeps the
//! session (until the strike quarantine threshold).
//!
//! The first payload byte is the frame kind tag; multi-byte integers are
//! little-endian; floats travel as their IEEE-754 bit patterns
//! (`f64::to_bits`), so NaN payloads survive the round trip bit-exactly.
//! Strings are UTF-8 with a `u16` length prefix.
//!
//! # Version negotiation
//!
//! The client opens with [`Frame::Hello`] carrying
//! [`PROTOCOL_VERSION`]; the server answers [`Frame::HelloAck`] with its
//! own version, the credit `window` (max unacked batches the client may
//! have in flight) and `max_frame`. A version mismatch is answered with
//! [`Frame::Error`] (code [`ERR_VERSION`]) and the connection closes.
//!
//! # Text fallback
//!
//! A connection whose first five bytes are `TEXT\n` (see [`TEXT_PREAMBLE`])
//! speaks the line-delimited debug protocol instead — see
//! [`crate::codec::TextCommand`]. The preamble is unambiguous: read as a
//! binary length prefix it would be 0x54584554 ≈ 1.4 GB, far above any
//! permitted `max_frame`.

use aging_core::detector::{Alert, AlertLevel, Trigger};
use aging_memsim::Counter;
use aging_stream::detector::AlertDetail;
use aging_stream::supervisor::AlarmKind;

/// Protocol version spoken by this crate.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default maximum frame payload size, bytes (64 KiB).
pub const DEFAULT_MAX_FRAME: u32 = 64 * 1024;

/// First bytes of a text-mode connection.
pub const TEXT_PREAMBLE: &[u8] = b"TEXT\n";

/// Error code: protocol version mismatch.
pub const ERR_VERSION: u8 = 1;
/// Error code: client quarantined (too many malformed frames, or framing
/// integrity lost).
pub const ERR_QUARANTINED: u8 = 2;
/// Error code: malformed frame (reported, connection kept).
pub const ERR_MALFORMED: u8 = 3;
/// Error code: the server could not journal the batch to its persistent
/// store; the batch is *not* acked and the connection is closed, so the
/// acked⇒durable invariant holds even under disk failure.
pub const ERR_STORE: u8 = 4;

/// One ingestion record: a counter reading of one machine at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Record {
    /// Caller-assigned machine identity.
    pub machine_id: u64,
    /// Counter code: index into [`Counter::ALL`].
    pub counter: u8,
    /// Sample timestamp, seconds.
    pub time_secs: f64,
    /// Counter value.
    pub value: f64,
}

/// Encoded size of one [`Record`] on the wire.
pub const RECORD_BYTES: usize = 8 + 1 + 8 + 8;

/// One event in the server's watermark-ordered alarm history.
///
/// The networked analogue of [`aging_stream::supervisor::AlarmEvent`],
/// keyed by wire `machine_id` instead of a fleet slice index.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeEvent {
    /// Machine identity from the ingestion records.
    pub machine_id: u64,
    /// Stream time of the tick that produced the event, seconds.
    pub time_secs: f64,
    /// Severity.
    pub level: AlertLevel,
    /// What fired.
    pub kind: AlarmKind,
}

/// A parsed frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client handshake: protocol version and a display name.
    Hello {
        /// Client's protocol version.
        version: u8,
        /// Client display name (diagnostics only).
        name: String,
    },
    /// Server handshake reply.
    HelloAck {
        /// Server's protocol version.
        version: u8,
        /// Credit window: max unacked [`Frame::Batch`]es in flight.
        window: u16,
        /// Maximum frame payload the server accepts, bytes.
        max_frame: u32,
    },
    /// A batch of ingestion records; acked by seq.
    Batch {
        /// Client-chosen batch sequence number (echoed in the ack).
        seq: u64,
        /// The records.
        records: Vec<Record>,
    },
    /// Server acknowledgement of a batch: once received, the batch's
    /// records are in the engine and its alarms survive shutdown drain.
    Ack {
        /// Sequence of the acked batch.
        seq: u64,
        /// Records accepted into pipelines (rejects carried bad counter
        /// codes).
        accepted: u16,
    },
    /// Advisory backpressure: the server is reading faster than it can
    /// process; `backlog` complete frames were buffered when it was sent.
    Busy {
        /// Buffered frame count at send time.
        backlog: u32,
    },
    /// The feed for one machine has ended (its final tick may now close).
    MachineDone {
        /// Machine whose feed ended.
        machine_id: u64,
    },
    /// Request the fleet-level status snapshot.
    QueryStatus,
    /// Fleet status as JSON — serialises [`crate::server::ServeStatus`],
    /// whose `fleet` field is the same [`aging_stream::telemetry::Snapshot`]
    /// schema the supervisor dumps.
    StatusReply {
        /// The JSON document.
        json: String,
    },
    /// Request one machine's pipeline snapshot.
    QueryMachine {
        /// Machine to query.
        machine_id: u64,
    },
    /// Per-machine snapshot as JSON
    /// ([`aging_stream::telemetry::MachineSnapshot`]); `None` if the
    /// machine is unknown.
    MachineReply {
        /// The JSON document, if the machine exists.
        json: Option<String>,
    },
    /// Request the watermark-released alarm history from offset `since`.
    QueryAlarms {
        /// Offset into the released history.
        since: u64,
    },
    /// A chunk of released alarm history.
    AlarmsReply {
        /// Echo of the request offset.
        since: u64,
        /// Total released events on the server (fetch is chunked; keep
        /// querying from `since + events.len()` until caught up).
        total: u64,
        /// Shard identity advertisement ([`crate::ServeConfig::shard_id`]):
        /// which cluster shard answered, `0` for a standalone server.
        shard: u64,
        /// Release-watermark advertisement, computed atomically with
        /// `total`: every released event at or below this time is within
        /// the first `total` events, and the server will never release
        /// another event at or below it. `-inf` while the release hold
        /// ([`crate::ServeConfig::expected_machines`]) is active or no
        /// machine is known; `+inf` once every known feed has finished
        /// (the per-shard drain barrier an aggregator waits on).
        watermark_secs: f64,
        /// The events at `since..since + events.len()`.
        events: Vec<ServeEvent>,
    },
    /// Graceful close request.
    Bye,
    /// Graceful close acknowledgement.
    ByeAck,
    /// Error report.
    Error {
        /// One of the `ERR_*` codes.
        code: u8,
        /// Human-readable detail.
        message: String,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_BATCH: u8 = 0x03;
const TAG_ACK: u8 = 0x04;
const TAG_BUSY: u8 = 0x05;
const TAG_MACHINE_DONE: u8 = 0x06;
const TAG_QUERY_STATUS: u8 = 0x07;
const TAG_STATUS_REPLY: u8 = 0x08;
const TAG_QUERY_MACHINE: u8 = 0x09;
const TAG_MACHINE_REPLY: u8 = 0x0a;
const TAG_QUERY_ALARMS: u8 = 0x0b;
const TAG_ALARMS_REPLY: u8 = 0x0c;
const TAG_BYE: u8 = 0x0d;
const TAG_BYE_ACK: u8 = 0x0e;
const TAG_ERROR: u8 = 0x0f;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected)
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE, reflected) of `data` — the per-frame checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Counter / enum codes
// ---------------------------------------------------------------------------

/// Wire code of a counter: its index in [`Counter::ALL`].
pub fn counter_code(counter: Counter) -> u8 {
    Counter::ALL
        .iter()
        .position(|&c| c == counter)
        .expect("Counter::ALL is exhaustive") as u8
}

/// Counter for a wire code, `None` for an unknown code.
pub fn counter_from_code(code: u8) -> Option<Counter> {
    Counter::ALL.get(usize::from(code)).copied()
}

fn level_code(level: AlertLevel) -> u8 {
    match level {
        AlertLevel::Warning => 0,
        AlertLevel::Alarm => 1,
    }
}

fn level_from_code(code: u8) -> Option<AlertLevel> {
    match code {
        0 => Some(AlertLevel::Warning),
        1 => Some(AlertLevel::Alarm),
        _ => None,
    }
}

fn trigger_code(trigger: Trigger) -> u8 {
    match trigger {
        Trigger::DimensionJump => 0,
        Trigger::HolderCollapse => 1,
        Trigger::Both => 2,
    }
}

fn trigger_from_code(code: u8) -> Option<Trigger> {
    match code {
        0 => Some(Trigger::DimensionJump),
        1 => Some(Trigger::HolderCollapse),
        2 => Some(Trigger::Both),
        _ => None,
    }
}

fn detector_code(name: &str) -> u8 {
    match name {
        "holder-dimension" => 0,
        _ => 1,
    }
}

fn detector_from_code(code: u8) -> Option<&'static str> {
    match code {
        0 => Some("holder-dimension"),
        1 => Some("mann-kendall-sen"),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Byte reader/writer
// ---------------------------------------------------------------------------

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, String> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 string".to_string())
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            ))
        }
    }
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(usize::from(u16::MAX));
    out.extend_from_slice(&(len as u16).to_le_bytes());
    out.extend_from_slice(&bytes[..len]);
}

// ---------------------------------------------------------------------------
// Event codec
// ---------------------------------------------------------------------------

const EVENT_DETECTOR: u8 = 0;
const EVENT_MACHINE_ALARM: u8 = 1;
const DETAIL_HOLDER: u8 = 0;
const DETAIL_TREND: u8 = 1;

/// Appends one event's canonical wire encoding to `out`.
///
/// This encoding doubles as the parity fingerprint: E14 compares the
/// offline and TCP alarm histories by encoding both with
/// [`encode_events`] and requiring byte identity.
pub fn encode_event(event: &ServeEvent, out: &mut Vec<u8>) {
    out.extend_from_slice(&event.machine_id.to_le_bytes());
    out.extend_from_slice(&event.time_secs.to_bits().to_le_bytes());
    out.push(level_code(event.level));
    match &event.kind {
        AlarmKind::Detector {
            counter,
            detector,
            detail,
        } => {
            out.push(EVENT_DETECTOR);
            out.push(counter_code(*counter));
            out.push(detector_code(detector));
            match detail {
                AlertDetail::Holder(alert) => {
                    out.push(DETAIL_HOLDER);
                    out.extend_from_slice(&(alert.sample_index as u64).to_le_bytes());
                    out.push(level_code(alert.level));
                    out.push(trigger_code(alert.trigger));
                    for v in [
                        alert.dimension,
                        alert.mean_holder,
                        alert.dimension_baseline,
                        alert.holder_baseline,
                    ] {
                        out.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
                AlertDetail::Trend { eta_secs } => {
                    out.push(DETAIL_TREND);
                    out.push(u8::from(eta_secs.is_some()));
                    out.extend_from_slice(&eta_secs.unwrap_or(0.0).to_bits().to_le_bytes());
                }
            }
        }
        AlarmKind::MachineAlarm { votes, members } => {
            out.push(EVENT_MACHINE_ALARM);
            out.extend_from_slice(&(*votes as u64).to_le_bytes());
            out.extend_from_slice(&(*members as u64).to_le_bytes());
        }
    }
}

/// Canonical encoding of a whole event sequence (the E14 parity
/// fingerprint — see [`encode_event`]).
pub fn encode_events(events: &[ServeEvent]) -> Vec<u8> {
    let mut out = Vec::with_capacity(events.len() * 48);
    for e in events {
        encode_event(e, &mut out);
    }
    out
}

/// Decodes a canonical event sequence — the inverse of
/// [`encode_events`], used when restoring a persisted alarm history.
///
/// # Errors
///
/// Returns a description of the first malformation; a valid prefix is
/// not returned (the sequence is all-or-nothing, like a frame payload).
pub fn decode_events(bytes: &[u8]) -> Result<Vec<ServeEvent>, String> {
    let mut r = Reader::new(bytes);
    let mut out = Vec::new();
    while r.remaining() > 0 {
        out.push(decode_event(&mut r)?);
    }
    Ok(out)
}

pub(crate) fn decode_event(r: &mut Reader<'_>) -> Result<ServeEvent, String> {
    let machine_id = r.u64()?;
    let time_secs = r.f64()?;
    let level = level_from_code(r.u8()?).ok_or("bad level code")?;
    let kind = match r.u8()? {
        EVENT_DETECTOR => {
            let counter = counter_from_code(r.u8()?).ok_or("bad counter code")?;
            let detector = detector_from_code(r.u8()?).ok_or("bad detector code")?;
            let detail = match r.u8()? {
                DETAIL_HOLDER => {
                    let sample_index = r.u64()? as usize;
                    let alevel = level_from_code(r.u8()?).ok_or("bad alert level")?;
                    let trigger = trigger_from_code(r.u8()?).ok_or("bad trigger code")?;
                    let dimension = r.f64()?;
                    let mean_holder = r.f64()?;
                    let dimension_baseline = r.f64()?;
                    let holder_baseline = r.f64()?;
                    AlertDetail::Holder(Alert {
                        sample_index,
                        level: alevel,
                        trigger,
                        dimension,
                        mean_holder,
                        dimension_baseline,
                        holder_baseline,
                    })
                }
                DETAIL_TREND => {
                    let has_eta = r.u8()? != 0;
                    let eta = r.f64()?;
                    AlertDetail::Trend {
                        eta_secs: has_eta.then_some(eta),
                    }
                }
                t => return Err(format!("bad detail tag {t}")),
            };
            AlarmKind::Detector {
                counter,
                detector,
                detail,
            }
        }
        EVENT_MACHINE_ALARM => AlarmKind::MachineAlarm {
            votes: r.u64()? as usize,
            members: r.u64()? as usize,
        },
        t => return Err(format!("bad event kind tag {t}")),
    };
    Ok(ServeEvent {
        machine_id,
        time_secs,
        level,
        kind,
    })
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

impl Frame {
    /// Serialises the frame payload (no length prefix / CRC — see
    /// [`encode_frame`] for the full on-wire form).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Frame::Hello { version, name } => {
                out.push(TAG_HELLO);
                out.push(*version);
                put_string(&mut out, name);
            }
            Frame::HelloAck {
                version,
                window,
                max_frame,
            } => {
                out.push(TAG_HELLO_ACK);
                out.push(*version);
                out.extend_from_slice(&window.to_le_bytes());
                out.extend_from_slice(&max_frame.to_le_bytes());
            }
            Frame::Batch { seq, records } => {
                out.push(TAG_BATCH);
                out.extend_from_slice(&seq.to_le_bytes());
                let n = records.len().min(usize::from(u16::MAX));
                out.extend_from_slice(&(n as u16).to_le_bytes());
                for rec in &records[..n] {
                    out.extend_from_slice(&rec.machine_id.to_le_bytes());
                    out.push(rec.counter);
                    out.extend_from_slice(&rec.time_secs.to_bits().to_le_bytes());
                    out.extend_from_slice(&rec.value.to_bits().to_le_bytes());
                }
            }
            Frame::Ack { seq, accepted } => {
                out.push(TAG_ACK);
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&accepted.to_le_bytes());
            }
            Frame::Busy { backlog } => {
                out.push(TAG_BUSY);
                out.extend_from_slice(&backlog.to_le_bytes());
            }
            Frame::MachineDone { machine_id } => {
                out.push(TAG_MACHINE_DONE);
                out.extend_from_slice(&machine_id.to_le_bytes());
            }
            Frame::QueryStatus => out.push(TAG_QUERY_STATUS),
            Frame::StatusReply { json } => {
                out.push(TAG_STATUS_REPLY);
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            Frame::QueryMachine { machine_id } => {
                out.push(TAG_QUERY_MACHINE);
                out.extend_from_slice(&machine_id.to_le_bytes());
            }
            Frame::MachineReply { json } => {
                out.push(TAG_MACHINE_REPLY);
                match json {
                    Some(json) => {
                        out.push(1);
                        out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                        out.extend_from_slice(json.as_bytes());
                    }
                    None => out.push(0),
                }
            }
            Frame::QueryAlarms { since } => {
                out.push(TAG_QUERY_ALARMS);
                out.extend_from_slice(&since.to_le_bytes());
            }
            Frame::AlarmsReply {
                since,
                total,
                shard,
                watermark_secs,
                events,
            } => {
                out.push(TAG_ALARMS_REPLY);
                out.extend_from_slice(&since.to_le_bytes());
                out.extend_from_slice(&total.to_le_bytes());
                out.extend_from_slice(&shard.to_le_bytes());
                out.extend_from_slice(&watermark_secs.to_bits().to_le_bytes());
                let n = events.len().min(usize::from(u16::MAX));
                out.extend_from_slice(&(n as u16).to_le_bytes());
                for event in &events[..n] {
                    encode_event(event, &mut out);
                }
            }
            Frame::Bye => out.push(TAG_BYE),
            Frame::ByeAck => out.push(TAG_BYE_ACK),
            Frame::Error { code, message } => {
                out.push(TAG_ERROR);
                out.push(*code);
                put_string(&mut out, message);
            }
        }
        out
    }

    /// Parses a frame payload (the bytes between length prefix and CRC).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation. A payload that fails
    /// here arrived inside an intact frame: the connection's framing is
    /// still sound and the session may continue (it counts a strike).
    pub fn decode_payload(payload: &[u8]) -> Result<Frame, String> {
        let mut r = Reader::new(payload);
        let frame = match r.u8()? {
            TAG_HELLO => Frame::Hello {
                version: r.u8()?,
                name: r.string()?,
            },
            TAG_HELLO_ACK => Frame::HelloAck {
                version: r.u8()?,
                window: r.u16()?,
                max_frame: r.u32()?,
            },
            TAG_BATCH => {
                let seq = r.u64()?;
                let n = usize::from(r.u16()?);
                let mut records = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    records.push(Record {
                        machine_id: r.u64()?,
                        counter: r.u8()?,
                        time_secs: r.f64()?,
                        value: r.f64()?,
                    });
                }
                Frame::Batch { seq, records }
            }
            TAG_ACK => Frame::Ack {
                seq: r.u64()?,
                accepted: r.u16()?,
            },
            TAG_BUSY => Frame::Busy { backlog: r.u32()? },
            TAG_MACHINE_DONE => Frame::MachineDone {
                machine_id: r.u64()?,
            },
            TAG_QUERY_STATUS => Frame::QueryStatus,
            TAG_STATUS_REPLY => {
                let len = r.u32()? as usize;
                let bytes = r.take(len)?;
                Frame::StatusReply {
                    json: String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 JSON")?,
                }
            }
            TAG_QUERY_MACHINE => Frame::QueryMachine {
                machine_id: r.u64()?,
            },
            TAG_MACHINE_REPLY => {
                let present = r.u8()? != 0;
                let json = if present {
                    let len = r.u32()? as usize;
                    let bytes = r.take(len)?;
                    Some(String::from_utf8(bytes.to_vec()).map_err(|_| "invalid UTF-8 JSON")?)
                } else {
                    None
                };
                Frame::MachineReply { json }
            }
            TAG_QUERY_ALARMS => Frame::QueryAlarms { since: r.u64()? },
            TAG_ALARMS_REPLY => {
                let since = r.u64()?;
                let total = r.u64()?;
                let shard = r.u64()?;
                let watermark_secs = r.f64()?;
                let n = usize::from(r.u16()?);
                let mut events = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    events.push(decode_event(&mut r)?);
                }
                Frame::AlarmsReply {
                    since,
                    total,
                    shard,
                    watermark_secs,
                    events,
                }
            }
            TAG_BYE => Frame::Bye,
            TAG_BYE_ACK => Frame::ByeAck,
            TAG_ERROR => Frame::Error {
                code: r.u8()?,
                message: r.string()?,
            },
            tag => return Err(format!("unknown frame tag 0x{tag:02x}")),
        };
        r.done()?;
        Ok(frame)
    }
}

/// Serialises a frame into its full on-wire form:
/// `len | payload | crc32(payload)`.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let payload = frame.encode_payload();
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn counter_codes_round_trip() {
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(counter_code(c), i as u8);
            assert_eq!(counter_from_code(i as u8), Some(c));
        }
        assert_eq!(counter_from_code(Counter::ALL.len() as u8), None);
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            Frame::Hello {
                version: PROTOCOL_VERSION,
                name: "loadgen-0".into(),
            },
            Frame::HelloAck {
                version: PROTOCOL_VERSION,
                window: 32,
                max_frame: DEFAULT_MAX_FRAME,
            },
            Frame::Batch {
                seq: 7,
                records: vec![
                    Record {
                        machine_id: 3,
                        counter: 0,
                        time_secs: 5.0,
                        value: 1e6,
                    },
                    Record {
                        machine_id: 3,
                        counter: 1,
                        time_secs: 5.0,
                        value: f64::NAN,
                    },
                ],
            },
            Frame::Ack {
                seq: 7,
                accepted: 2,
            },
            Frame::Busy { backlog: 99 },
            Frame::MachineDone { machine_id: 3 },
            Frame::QueryStatus,
            Frame::StatusReply {
                json: "{\"x\":1}".into(),
            },
            Frame::QueryMachine { machine_id: 3 },
            Frame::MachineReply { json: None },
            Frame::MachineReply {
                json: Some("{}".into()),
            },
            Frame::QueryAlarms { since: 4 },
            Frame::AlarmsReply {
                since: 4,
                total: 6,
                shard: 2,
                watermark_secs: f64::NEG_INFINITY,
                events: vec![
                    ServeEvent {
                        machine_id: 3,
                        time_secs: 120.0,
                        level: AlertLevel::Alarm,
                        kind: AlarmKind::MachineAlarm {
                            votes: 1,
                            members: 1,
                        },
                    },
                    ServeEvent {
                        machine_id: 4,
                        time_secs: 60.0,
                        level: AlertLevel::Warning,
                        kind: AlarmKind::Detector {
                            counter: Counter::AvailableBytes,
                            detector: "holder-dimension",
                            detail: AlertDetail::Holder(Alert {
                                sample_index: 512,
                                level: AlertLevel::Warning,
                                trigger: Trigger::Both,
                                dimension: 1.4,
                                mean_holder: 0.3,
                                dimension_baseline: 1.1,
                                holder_baseline: 0.5,
                            }),
                        },
                    },
                    ServeEvent {
                        machine_id: 5,
                        time_secs: 90.0,
                        level: AlertLevel::Alarm,
                        kind: AlarmKind::Detector {
                            counter: Counter::UsedSwapBytes,
                            detector: "mann-kendall-sen",
                            detail: AlertDetail::Trend {
                                eta_secs: Some(1234.5),
                            },
                        },
                    },
                ],
            },
            Frame::Bye,
            Frame::ByeAck,
            Frame::Error {
                code: ERR_MALFORMED,
                message: "bad tag".into(),
            },
        ];
        for frame in frames {
            let payload = frame.encode_payload();
            let back = Frame::decode_payload(&payload).unwrap();
            // NaN-carrying batches can't use PartialEq; compare by
            // re-encoding, which is bit-exact.
            assert_eq!(payload, back.encode_payload(), "{frame:?}");
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_rejected() {
        let payload = Frame::MachineDone { machine_id: 9 }.encode_payload();
        for cut in 0..payload.len() {
            assert!(Frame::decode_payload(&payload[..cut]).is_err(), "{cut}");
        }
        let mut extended = payload.clone();
        extended.push(0);
        assert!(Frame::decode_payload(&extended).is_err());
    }

    #[test]
    fn text_preamble_is_not_a_plausible_length() {
        let as_len = u32::from_le_bytes(TEXT_PREAMBLE[..4].try_into().unwrap());
        assert!(as_len > 16 * 1024 * 1024, "{as_len}");
    }
}
