//! # aging-fractal
//!
//! Fractal and multifractal analysis substrate of the `holder-aging`
//! workspace — the reproduction of *"Software Aging and Multifractality of
//! Memory Resources"* (Shereshevsky et al., DSN 2003).
//!
//! The paper's method rests on three measurements, all provided here:
//!
//! 1. **Local Hölder exponents** ([`holder`]) — the regularity trace
//!    `h(t)` of a memory-resource signal;
//! 2. **Fractal dimension of a graph** ([`dimension`]) — applied to the
//!    Hölder trace over sliding windows, whose jumps precede crashes;
//! 3. **Multifractal spectra** ([`spectrum`]) — `f(α)` width and leader
//!    log-cumulants quantify how "turbulent" memory management is.
//!
//! Everything is validated against [`generate`] — synthetic signals (fBm,
//! Weierstrass, binomial cascades) with closed-form ground truth — and
//! classical Hurst estimators live in [`hurst`].
//!
//! # Examples
//!
//! ```
//! use aging_fractal::{generate, holder, dimension};
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! // A rough (anti-persistent) signal …
//! let signal = generate::fbm(2048, 0.3, 7)?;
//! // … has a low Hölder exponent …
//! let trace = holder::holder_trace(&signal, &holder::HolderEstimator::default())?;
//! let mean_h = trace.iter().sum::<f64>() / trace.len() as f64;
//! assert!(mean_h < 0.5);
//! // … and a rough graph.
//! let d = dimension::variation(&signal)?;
//! assert!(d.dimension > 1.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dimension;
pub mod fft;
pub mod generate;
pub mod holder;
pub mod hurst;
pub mod spectrum;
pub mod streaming;
pub mod surrogate;
pub mod wtmm;

pub use dimension::DimensionEstimate;
pub use holder::{HolderEstimator, HolderSummary};
pub use hurst::HurstEstimate;
pub use spectrum::{
    LogCumulants, MfdfaResult, SpectrumConfig, SpectrumEstimate, SpectrumPoint, SpectrumWindow,
    StreamingSpectrum,
};
