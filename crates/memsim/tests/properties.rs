//! Property-based tests for simulator invariants.

use aging_memsim::{simulate, Bytes, Counter, FaultPlan, MachineConfig, Scenario, WorkloadConfig};
use proptest::prelude::*;

fn tiny_scenario(seed: u64, leak_mib_per_hour: f64) -> Scenario {
    Scenario {
        name: format!("prop-{seed}"),
        machine: MachineConfig::tiny_test(),
        workload: WorkloadConfig::tiny_test(),
        faults: if leak_mib_per_hour > 0.0 {
            FaultPlan::aging(leak_mib_per_hour)
        } else {
            FaultPlan::healthy()
        },
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn counters_stay_within_physical_bounds(seed in 0u64..500, leak in 0.0f64..512.0) {
        let scenario = tiny_scenario(seed, leak);
        let report = simulate(&scenario, 1200.0).unwrap();
        let ram = scenario.machine.ram.as_f64();
        let swap = scenario.machine.swap.as_f64();
        for &v in report.log.values(Counter::AvailableBytes) {
            prop_assert!(v >= 0.0 && v <= ram, "available {v}");
        }
        for &v in report.log.values(Counter::UsedSwapBytes) {
            prop_assert!(v >= 0.0 && v <= swap, "swap {v}");
        }
        for &v in report.log.values(Counter::PageFaultsPerSec) {
            prop_assert!(v >= 0.0 && v.is_finite());
        }
    }

    #[test]
    fn committed_at_least_live_plus_overhead(seed in 0u64..500) {
        let scenario = tiny_scenario(seed, 64.0);
        let report = simulate(&scenario, 900.0).unwrap();
        let overhead = scenario.machine.os_overhead.as_f64();
        let committed = report.log.values(Counter::CommittedBytes);
        let live = report.log.values(Counter::LiveHeapBytes);
        for (&c, &l) in committed.iter().zip(live) {
            prop_assert!(c >= l + overhead - 1.0, "committed {c} live {l}");
        }
    }

    #[test]
    fn determinism(seed in 0u64..200) {
        let scenario = tiny_scenario(seed, 100.0);
        let a = simulate(&scenario, 600.0).unwrap();
        let b = simulate(&scenario, 600.0).unwrap();
        prop_assert_eq!(a.log, b.log);
    }

    #[test]
    fn stronger_leak_never_crashes_later(seed in 0u64..100) {
        // With identical seeds, doubling the leak rate cannot delay the
        // crash (it adds committed bytes monotonically).
        let slow = simulate(&tiny_scenario(seed, 512.0), 3600.0 * 3.0).unwrap();
        let fast = simulate(&tiny_scenario(seed, 1024.0), 3600.0 * 3.0).unwrap();
        if let (Some(s), Some(f)) = (slow.first_crash(), fast.first_crash()) {
            prop_assert!(f.time.as_secs() <= s.time.as_secs() + 1.0);
        } else if slow.first_crash().is_some() {
            // Slow crashed but fast did not — impossible.
            prop_assert!(false, "faster leak survived while slower crashed");
        }
    }

    #[test]
    fn handle_count_monotone_under_aging(seed in 0u64..200) {
        let report = simulate(&tiny_scenario(seed, 32.0), 900.0).unwrap();
        let handles = report.log.values(Counter::HandleCount);
        for w in handles.windows(2) {
            prop_assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn sample_count_matches_uptime(seed in 0u64..200) {
        let report = simulate(&tiny_scenario(seed, 0.0), 1000.0).unwrap();
        // 5 s sampling: 1000 s → 200 samples.
        prop_assert_eq!(report.log.len(), 200);
        prop_assert!(Bytes::from_f64(report.log.values(Counter::AvailableBytes)[0]) > Bytes::ZERO);
    }
}
