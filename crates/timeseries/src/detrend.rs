//! Detrending transforms.
//!
//! Scaling estimators assume (at most) weak stationarity of the fluctuations
//! around a trend; these helpers remove constant / linear / polynomial
//! components or difference the series outright.

use crate::error::{Error, Result};
use crate::regression::{ols, polyfit, polyval};

/// Subtracts the mean in place.
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input.
pub fn remove_mean(data: &mut [f64]) -> Result<()> {
    Error::require_len(data, 1)?;
    let m = data.iter().sum::<f64>() / data.len() as f64;
    for v in data.iter_mut() {
        *v -= m;
    }
    Ok(())
}

/// Subtracts the least-squares line (fit against sample index) in place.
///
/// # Errors
///
/// Returns [`Error::TooShort`] with fewer than two samples and propagates
/// fit failures.
pub fn remove_linear(data: &mut [f64]) -> Result<()> {
    Error::require_len(data, 2)?;
    let x: Vec<f64> = (0..data.len()).map(|i| i as f64).collect();
    let fit = ols(&x, data)?;
    for (i, v) in data.iter_mut().enumerate() {
        *v -= fit.predict(i as f64);
    }
    Ok(())
}

/// Subtracts a least-squares polynomial of the given degree (fit against
/// sample index) in place.
///
/// # Errors
///
/// Propagates [`crate::regression::polyfit`] failures.
pub fn remove_polynomial(data: &mut [f64], degree: usize) -> Result<()> {
    let x: Vec<f64> = (0..data.len()).map(|i| i as f64).collect();
    let coeffs = polyfit(&x, data, degree)?;
    for (i, v) in data.iter_mut().enumerate() {
        *v -= polyval(&coeffs, i as f64);
    }
    Ok(())
}

/// Returns the `lag`-differenced series `x[i + lag] - x[i]`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `lag == 0` and
/// [`Error::TooShort`] when `lag >= n`.
pub fn difference(data: &[f64], lag: usize) -> Result<Vec<f64>> {
    if lag == 0 {
        return Err(Error::invalid("lag", "must be positive"));
    }
    Error::require_len(data, lag + 1)?;
    Ok((0..data.len() - lag)
        .map(|i| data[i + lag] - data[i])
        .collect())
}

/// Residuals of a polynomial fit over a window — the core step of DFA.
/// Returns the sum of squared residuals divided by the window length
/// (the mean-square fluctuation).
///
/// # Errors
///
/// Propagates [`crate::regression::polyfit`] failures.
pub fn fluctuation(window: &[f64], degree: usize) -> Result<f64> {
    let x: Vec<f64> = (0..window.len()).map(|i| i as f64).collect();
    let coeffs = polyfit(&x, window, degree)?;
    let ss: f64 = window
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let r = v - polyval(&coeffs, i as f64);
            r * r
        })
        .sum();
    Ok(ss / window.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remove_mean_centres() {
        let mut d = vec![1.0, 2.0, 3.0];
        remove_mean(&mut d).unwrap();
        assert_eq!(d, vec![-1.0, 0.0, 1.0]);
        assert!(remove_mean(&mut []).is_err());
    }

    #[test]
    fn remove_linear_flattens_ramp() {
        let mut d: Vec<f64> = (0..20).map(|i| 3.0 + 0.5 * i as f64).collect();
        remove_linear(&mut d).unwrap();
        assert!(d.iter().all(|v| v.abs() < 1e-10));
    }

    #[test]
    fn remove_linear_preserves_fluctuation() {
        let mut d: Vec<f64> = (0..20)
            .map(|i| 0.5 * i as f64 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        remove_linear(&mut d).unwrap();
        // Alternating component survives with amplitude ~1.
        assert!(d.iter().map(|v| v.abs()).fold(0.0, f64::max) > 0.5);
        // But no drift remains.
        let x: Vec<f64> = (0..d.len()).map(|i| i as f64).collect();
        let fit = ols(&x, &d).unwrap();
        assert!(fit.slope.abs() < 1e-10);
    }

    #[test]
    fn remove_polynomial_kills_quadratic() {
        let mut d: Vec<f64> = (0..30)
            .map(|i| {
                let t = i as f64;
                1.0 + 2.0 * t - 0.1 * t * t
            })
            .collect();
        remove_polynomial(&mut d, 2).unwrap();
        assert!(d.iter().all(|v| v.abs() < 1e-7));
    }

    #[test]
    fn difference_basic() {
        let d = [1.0, 4.0, 9.0, 16.0];
        assert_eq!(difference(&d, 1).unwrap(), vec![3.0, 5.0, 7.0]);
        assert_eq!(difference(&d, 2).unwrap(), vec![8.0, 12.0]);
        assert!(difference(&d, 0).is_err());
        assert!(difference(&d, 4).is_err());
    }

    #[test]
    fn fluctuation_zero_for_exact_poly() {
        let w: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        assert!(fluctuation(&w, 1).unwrap() < 1e-16);
    }

    #[test]
    fn fluctuation_positive_for_noise() {
        let w = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(fluctuation(&w, 1).unwrap() > 0.5);
    }
}
