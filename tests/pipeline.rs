//! End-to-end integration tests spanning every crate in the workspace:
//! simulate → monitor → analyse → detect → score → rejuvenate.

use holder_aging::prelude::*;

/// A detector sized for the tiny test machine's 5 s sampling.
fn tiny_detector() -> DetectorConfig {
    DetectorConfig {
        holder_radius: 16,
        holder_max_lag: 4,
        dimension_window: 64,
        dimension_stride: 16,
        baseline_windows: 8,
        ..DetectorConfig::default()
    }
}

#[test]
fn simulate_analyze_detect_score() {
    // Simulate a crashing machine.
    let scenario = Scenario::tiny_aging(11, 192.0);
    let report = simulate(&scenario, 6.0 * 3600.0).unwrap();
    let crash = report.first_crash().expect("machine must crash");

    // The free-memory series trends down (Mann–Kendall agrees).
    let series = report.log.series(Counter::AvailableBytes).unwrap();
    let mk = MannKendall::test(series.values()).unwrap();
    assert!(mk.s < 0, "free memory must trend down, S = {}", mk.s);

    // The detector alarms before the crash.
    let spec = PredictorSpec::HolderDimension(tiny_detector());
    let outcomes = evaluate(&spec, &report, Counter::AvailableBytes).unwrap();
    assert_eq!(outcomes.len(), 1);
    let outcome = &outcomes[0];
    assert_eq!(outcome.crash_secs.unwrap(), crash.time.as_secs());
    assert!(
        outcome.detected(),
        "detector must predict this crash: {outcome:?}"
    );
    assert!(
        outcome.lead_secs.unwrap() > 60.0,
        "lead {:?}",
        outcome.lead_secs
    );
}

#[test]
fn holder_trace_of_simulated_counter_is_sane() {
    let report = simulate(&Scenario::tiny_aging(12, 0.0), 3.0 * 3600.0).unwrap();
    let series = report.log.series(Counter::AvailableBytes).unwrap();
    let trace = holder_trace(series.values(), &HolderEstimator::default()).unwrap();
    assert_eq!(trace.len(), series.len());
    // A healthy machine's trace is non-degenerate and mid-range on
    // average.
    let mean = trace.iter().sum::<f64>() / trace.len() as f64;
    assert!(mean > 0.05 && mean < 1.5, "mean h {mean}");
}

#[test]
fn streaming_online_agrees_with_offline_evaluation() {
    let scenario = Scenario::tiny_aging(13, 192.0);

    // Online: drive the machine step by step.
    let mut machine = Machine::boot(&scenario).unwrap();
    let mut det = HolderDimensionDetector::new(tiny_detector()).unwrap();
    let mut online_alarm: Option<f64> = None;
    loop {
        if machine.step().is_some() {
            break;
        }
        if machine.now().as_hours() > 6.0 {
            break;
        }
        if let Some(sample) = machine.last_sample() {
            if let Some(alert) = det.push(sample.available.as_f64()).unwrap() {
                if alert.level == AlertLevel::Alarm && online_alarm.is_none() {
                    online_alarm = Some(machine.now().as_secs());
                }
            }
        }
    }

    // Offline: same scenario, batch analysis.
    let report = simulate(&scenario, 6.0 * 3600.0).unwrap();
    let spec = PredictorSpec::HolderDimension(tiny_detector());
    let outcome = &evaluate(&spec, &report, Counter::AvailableBytes).unwrap()[0];

    match (online_alarm, outcome.alarm_secs) {
        (Some(online), Some(offline)) => {
            // The online loop timestamps by step clock, offline by sample
            // grid — they must agree to within one sampling period.
            assert!(
                (online - offline).abs() <= report.log.sample_period() + 1.0,
                "online {online} vs offline {offline}"
            );
        }
        (a, b) => panic!("alarm mismatch: online {a:?} offline {b:?}"),
    }
}

#[test]
fn multifractality_progression_on_aging_trace() {
    // Finer sampling so each life segment is long enough for MF-DFA.
    let mut scenario = Scenario::tiny_aging(14, 48.0);
    scenario.machine.sample_period_secs = 2.0;
    let report = simulate(&scenario, 4.0 * 3600.0).unwrap();
    let series = report.log.series(Counter::AvailableBytes).unwrap();
    assert!(series.len() >= 2048, "{} samples", series.len());
    let prog = progression(series.values(), &ProgressionConfig::default()).unwrap();
    assert_eq!(prog.len(), 4);
    // Every segment produces finite measurements.
    for seg in &prog {
        assert!(seg.mean_holder.is_finite());
        assert!(seg.spectrum_width.is_finite() && seg.spectrum_width >= 0.0);
    }
}

#[test]
fn rejuvenation_policies_end_to_end() {
    let scenario = Scenario::tiny_aging(16, 256.0);
    let costs = OutageCosts {
        crash_downtime_secs: 900.0,
        rejuvenation_downtime_secs: 60.0,
    };
    let horizon = 10.0 * 3600.0;

    let none = run_policy(&scenario, &Policy::None, horizon, costs).unwrap();
    let periodic = run_policy(
        &scenario,
        &Policy::Periodic {
            period_secs: 1200.0,
        },
        horizon,
        costs,
    )
    .unwrap();
    let triggered = run_policy(
        &scenario,
        &Policy::PredictorTriggered {
            spec: PredictorSpec::Threshold {
                level: 8.0 * 1024.0 * 1024.0,
                direction: ResourceDirection::Depleting,
            },
            counter: Counter::AvailableBytes,
            cooldown_secs: 600.0,
        },
        horizon,
        costs,
    )
    .unwrap();

    assert!(none.crashes > 0);
    assert_eq!(periodic.crashes, 0);
    assert_eq!(triggered.crashes, 0);
    // Both proactive policies beat doing nothing.
    assert!(periodic.availability() > none.availability());
    assert!(triggered.availability() > none.availability());
    // The triggered policy restarts at the depletion rate, not wildly more
    // often (a naive threshold fires once per depletion cycle).
    assert!(triggered.rejuvenations >= 1);
    assert!(triggered.rejuvenations <= 3 * periodic.rejuvenations);
}

#[test]
fn wavelet_analysis_of_simulated_counter() {
    let report = simulate(&Scenario::tiny_aging(16, 0.0), 2.0 * 3600.0).unwrap();
    let series = report.log.series(Counter::AvailableBytes).unwrap();
    // MODWT works on the non-dyadic monitor log and reconstructs it.
    let dec = modwt(series.values(), Wavelet::Daubechies4, 3).unwrap();
    let back = dec.reconstruct();
    for (a, b) in series.values().iter().zip(&back) {
        assert!((a - b).abs() < 1e-6 * a.abs().max(1.0));
    }
    // Leaders of the counter are computable and positive somewhere.
    let lead = WaveletLeaders::compute(series.values(), Wavelet::Daubechies4, 5).unwrap();
    assert!(lead.band(3).iter().any(|&v| v > 0.0));
}

#[test]
fn prelude_exposes_cross_crate_workflow() {
    // Compile-time check that the umbrella prelude suffices for the
    // README workflow (plus a smoke run).
    let noise = generate::fgn(512, 0.7, 99).unwrap();
    let est = hurst::dfa(&noise, 1).unwrap();
    assert!((est.hurst - 0.7).abs() < 0.15);
    let ts = TimeSeries::from_values(0.0, 30.0, noise).unwrap();
    let sen = SenSlope::estimate(ts.values(), ts.dt()).unwrap();
    assert!(sen.slope.is_finite());
}
