//! Fleet supervisor: N machines × M counters through streaming detectors
//! on a thread-per-shard pool, fused per machine, emitting one
//! time-ordered alarm stream.
//!
//! # Architecture
//!
//! Machines are partitioned round-robin across shards; each shard is one
//! scoped thread owning its machines' simulations, [`SampleGate`]s and
//! [`StreamingDetector`]s, so the hot path needs no locks at all. Shards
//! talk to the supervisor over a single bounded [`std::sync::mpsc`]
//! channel carrying three message kinds with two delivery policies:
//!
//! | Message | Send | Policy when the queue is full |
//! |---|---|---|
//! | alarm/warning events | blocking `send` | **backpressure** — the shard stalls; alarms are never dropped |
//! | shard watermarks | blocking `send` | backpressure (ordering depends on them) |
//! | telemetry snapshots | `try_send` | **dropped** and counted (`telemetry_dropped`) — observability is lossy by design |
//!
//! # Ordered merge
//!
//! Every machine's sample clock is strictly increasing, so after a shard
//! finishes a round-robin sweep, no future event from it can carry a
//! timestamp at or below the minimum last-sample time of its live
//! machines. Shards publish that value as a *watermark*; the supervisor
//! buffers incoming events in a min-heap and releases them only once every
//! live shard's watermark has passed them. The released stream is
//! therefore globally ordered by `(time, machine, emission)` no matter how
//! threads interleave — and, because the simulations are deterministic,
//! two runs of the same fleet produce the identical event sequence.
//!
//! Per-machine fusion applies the existing [`FusionRule`] vote logic:
//! each counter's detector contributes one vote once its confirmed alarm
//! has latched, and the machine-level alarm fires when the rule says the
//! votes suffice.

use std::sync::mpsc;

use aging_core::detector::Alert;
use aging_core::fusion::FusionRule;
use aging_memsim::{Counter, Machine, Sample, Scenario};
use aging_rejuv::{
    AvailabilitySummary, RejuvConfig, RejuvController, RejuvPolicy, RestartDecision, RestartReason,
    RestartRequest,
};
use aging_store::{Store, StoreConfig};
use aging_timeseries::persist;
use aging_timeseries::{Error, Result};

use crate::detector::{
    level_code, level_from_code, trigger_code, trigger_from_code, AlertDetail, StreamingDetector,
};
use crate::gate::GateConfig;
use crate::merge::{MergeKey, WatermarkMerger};
use crate::pipeline::{MachinePipeline, PipelineEvent};
use crate::source::SamplePerturber;
use crate::telemetry::{LatencyHistogram, StageCounters, StatusSnapshot};

pub use crate::pipeline::{AlarmKind, CounterDetector};
pub use aging_core::detector::AlertLevel;

/// Builds one [`SamplePerturber`] per `(machine index, counter)` stream.
///
/// Installed via [`FleetConfig::perturb`]; the supervisor calls the
/// factory once per counter stream at boot, on the supervisor thread, and
/// moves each perturber onto its shard. Factories must be deterministic
/// in `(machine_index, counter)` so two runs of the same fleet stay
/// bit-identical regardless of shard count.
pub type PerturberFactory =
    std::sync::Arc<dyn Fn(usize, Counter) -> Box<dyn SamplePerturber> + Send + Sync>;

/// Fleet supervisor configuration.
#[derive(Clone)]
pub struct FleetConfig {
    /// Detectors instantiated per machine (one per monitored counter).
    pub detectors: Vec<CounterDetector>,
    /// How per-counter alarm votes combine into a machine-level alarm.
    pub fusion: FusionRule,
    /// Defect gate applied to every (machine, counter) stream.
    pub gate: GateConfig,
    /// Simulated-time horizon per machine, seconds.
    pub horizon_secs: f64,
    /// Shard (worker thread) count; `0` picks
    /// `min(machines, aging_par::Pool::global().threads())` — i.e. it
    /// honours the `AGING_THREADS` override.
    pub shards: usize,
    /// Bound of the shard→supervisor channel. Full queue stalls shards
    /// (alarms are lossless) and sheds telemetry (lossy).
    pub queue_capacity: usize,
    /// Emit a telemetry snapshot each time a shard's stream clock crosses
    /// a multiple of this many seconds.
    pub status_every_secs: f64,
    /// Optional fault-injection hook: perturbs each raw sample between
    /// the machine monitor and the defect gate. `None` feeds machines
    /// straight through. Event timestamps always keep the true machine
    /// time, so injected clock defects cannot corrupt watermark ordering.
    pub perturb: Option<PerturberFactory>,
    /// Crash-safe alarm history persistence. When set, every event is
    /// journaled to this store as the ordered merge releases it, and a
    /// completed run commits the full history as a snapshot (truncating
    /// the journal). After a crash mid-run,
    /// [`FleetSupervisor::recover_events`] returns the journaled prefix
    /// for post-mortem; a deterministic re-run onto a *fresh* directory
    /// reproduces the full history. Runs append to whatever the
    /// directory already holds, so point each run at its own directory.
    /// `None` (the default) keeps the run entirely in memory.
    pub store: Option<StoreConfig>,
    /// Closed-loop rejuvenation. When set, the supervisor arbitrates
    /// restart requests against this policy on the ordered alarm stream:
    /// alarm-triggered or periodic restarts are granted/denied by a
    /// [`RejuvController`] (per-machine cooldown, fleet-wide concurrency
    /// budget), crashes become forced repair reboots instead of ending
    /// the machine's feed, and every granted restart is emitted (and
    /// journaled) as an [`AlarmKind::Restart`] event in stream order.
    /// `None` (the default) keeps the classic open-loop behaviour where
    /// a crash terminates the machine.
    pub rejuv: Option<RejuvConfig>,
}

impl std::fmt::Debug for FleetConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetConfig")
            .field("detectors", &self.detectors)
            .field("fusion", &self.fusion)
            .field("gate", &self.gate)
            .field("horizon_secs", &self.horizon_secs)
            .field("shards", &self.shards)
            .field("queue_capacity", &self.queue_capacity)
            .field("status_every_secs", &self.status_every_secs)
            .field(
                "perturb",
                &self.perturb.as_ref().map(|_| "PerturberFactory"),
            )
            .field("store", &self.store)
            .field("rejuv", &self.rejuv)
            .finish()
    }
}

impl FleetConfig {
    /// A config with library defaults: majority fusion, default gate,
    /// 256-slot queue, 10-minute status cadence.
    pub fn new(detectors: Vec<CounterDetector>, horizon_secs: f64) -> Self {
        FleetConfig {
            detectors,
            fusion: FusionRule::Majority,
            gate: GateConfig::default(),
            horizon_secs,
            shards: 0,
            queue_capacity: 256,
            status_every_secs: 600.0,
            perturb: None,
            store: None,
            rejuv: None,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on an empty detector list,
    /// non-positive horizon/status period or a zero queue capacity, and
    /// propagates [`GateConfig::validate`].
    pub fn validate(&self) -> Result<()> {
        if self.detectors.is_empty() {
            return Err(Error::invalid("detectors", "need at least one counter"));
        }
        if !(self.horizon_secs > 0.0) {
            return Err(Error::invalid("horizon_secs", "must be positive"));
        }
        if self.queue_capacity == 0 {
            return Err(Error::invalid("queue_capacity", "must be at least 1"));
        }
        if !(self.status_every_secs > 0.0) {
            return Err(Error::invalid("status_every_secs", "must be positive"));
        }
        if let Some(store) = &self.store {
            store
                .validate()
                .map_err(|e| Error::invalid("store", e.to_string()))?;
        }
        if let Some(rejuv) = &self.rejuv {
            rejuv.validate()?;
        }
        self.gate.validate()
    }
}

/// One event in the supervisor's ordered output stream.
#[derive(Debug, Clone, PartialEq)]
pub struct AlarmEvent {
    /// Index of the machine in the `scenarios` slice passed to `run`.
    pub machine_index: usize,
    /// Machine display name (`m<index>:<scenario>`).
    pub machine: String,
    /// Stream time of the sample that produced the event, seconds.
    pub time_secs: f64,
    /// Severity.
    pub level: AlertLevel,
    /// What fired.
    pub kind: AlarmKind,
}

// ---------------------------------------------------------------------------
// Alarm history codec (store payloads)
// ---------------------------------------------------------------------------

/// Version byte leading the persisted alarm-history snapshot blob.
const FLEET_SNAPSHOT_VERSION: u8 = 1;
const EVENT_DETECTOR: u8 = 0;
const EVENT_MACHINE_ALARM: u8 = 1;
const EVENT_RESTART: u8 = 2;
const DETAIL_HOLDER: u8 = 0;
const DETAIL_TREND: u8 = 1;
const DETAIL_SPECTRUM: u8 = 2;

fn counter_byte(counter: Counter) -> u8 {
    Counter::ALL
        .iter()
        .position(|&c| c == counter)
        .expect("Counter::ALL is exhaustive") as u8
}

fn counter_from_byte(code: u8) -> Result<Counter> {
    Counter::ALL
        .get(usize::from(code))
        .copied()
        .ok_or_else(|| Error::invalid("store", format!("bad counter code {code}")))
}

/// Interns a persisted detector-family name back to its `&'static str`.
fn detector_name(name: &str) -> Result<&'static str> {
    // Must cover every DetectorSpec::name.
    for known in ["holder-dimension", "mann-kendall-sen", "spectrum-width"] {
        if name == known {
            return Ok(known);
        }
    }
    Err(Error::invalid(
        "store",
        format!("unknown detector name {name:?}"),
    ))
}

fn encode_alarm_event(event: &AlarmEvent, out: &mut Vec<u8>) {
    persist::put_u64(out, event.machine_index as u64);
    persist::put_str(out, &event.machine);
    persist::put_f64(out, event.time_secs);
    persist::put_u8(out, level_code(event.level));
    match &event.kind {
        AlarmKind::Detector {
            counter,
            detector,
            detail,
        } => {
            persist::put_u8(out, EVENT_DETECTOR);
            persist::put_u8(out, counter_byte(*counter));
            persist::put_str(out, detector);
            match detail {
                AlertDetail::Holder(alert) => {
                    persist::put_u8(out, DETAIL_HOLDER);
                    persist::put_usize(out, alert.sample_index);
                    persist::put_u8(out, level_code(alert.level));
                    persist::put_u8(out, trigger_code(alert.trigger));
                    persist::put_f64(out, alert.dimension);
                    persist::put_f64(out, alert.mean_holder);
                    persist::put_f64(out, alert.dimension_baseline);
                    persist::put_f64(out, alert.holder_baseline);
                }
                AlertDetail::Trend { eta_secs } => {
                    persist::put_u8(out, DETAIL_TREND);
                    persist::put_opt_f64(out, *eta_secs);
                }
                AlertDetail::Spectrum {
                    delta_alpha,
                    baseline_width,
                } => {
                    persist::put_u8(out, DETAIL_SPECTRUM);
                    persist::put_f64(out, *delta_alpha);
                    persist::put_f64(out, *baseline_width);
                }
            }
        }
        AlarmKind::MachineAlarm { votes, members } => {
            persist::put_u8(out, EVENT_MACHINE_ALARM);
            persist::put_usize(out, *votes);
            persist::put_usize(out, *members);
        }
        AlarmKind::Restart {
            reason,
            downtime_secs,
        } => {
            persist::put_u8(out, EVENT_RESTART);
            persist::put_u8(out, reason.code());
            persist::put_f64(out, *downtime_secs);
        }
    }
}

fn decode_alarm_event(r: &mut persist::Reader<'_>) -> Result<AlarmEvent> {
    let machine_index = r.u64()? as usize;
    let machine = r.str_()?;
    let time_secs = r.f64()?;
    let level = level_from_code(r.u8()?)?;
    let kind = match r.u8()? {
        EVENT_DETECTOR => {
            let counter = counter_from_byte(r.u8()?)?;
            let detector = detector_name(&r.str_()?)?;
            let detail = match r.u8()? {
                DETAIL_HOLDER => AlertDetail::Holder(Alert {
                    sample_index: r.usize_()?,
                    level: level_from_code(r.u8()?)?,
                    trigger: trigger_from_code(r.u8()?)?,
                    dimension: r.f64()?,
                    mean_holder: r.f64()?,
                    dimension_baseline: r.f64()?,
                    holder_baseline: r.f64()?,
                }),
                DETAIL_TREND => AlertDetail::Trend {
                    eta_secs: r.opt_f64()?,
                },
                DETAIL_SPECTRUM => AlertDetail::Spectrum {
                    delta_alpha: r.f64()?,
                    baseline_width: r.f64()?,
                },
                t => return Err(Error::invalid("store", format!("bad detail tag {t}"))),
            };
            AlarmKind::Detector {
                counter,
                detector,
                detail,
            }
        }
        EVENT_MACHINE_ALARM => AlarmKind::MachineAlarm {
            votes: r.usize_()?,
            members: r.usize_()?,
        },
        EVENT_RESTART => AlarmKind::Restart {
            reason: RestartReason::from_code(r.u8()?)?,
            downtime_secs: r.f64()?,
        },
        t => return Err(Error::invalid("store", format!("bad event kind tag {t}"))),
    };
    Ok(AlarmEvent {
        machine_index,
        machine,
        time_secs,
        level,
        kind,
    })
}

/// Terminal state of one machine after a fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineOutcome {
    /// Index of the machine in the `scenarios` slice.
    pub machine_index: usize,
    /// Machine display name.
    pub machine: String,
    /// First crash time, seconds — `None` if the machine never crashed.
    /// In a closed-loop ([`FleetConfig::rejuv`]) run the crash is
    /// repaired and the feed continues, so this records the first
    /// incident rather than a terminal state.
    pub crash_time_secs: Option<f64>,
    /// Monitor samples the machine produced.
    pub samples: u64,
    /// Planned (alarm- or period-driven) restarts applied to the machine.
    pub restarts: u64,
    /// Crashes the machine suffered (each forced a repair reboot in a
    /// closed-loop run; at most one terminal crash otherwise).
    pub crashes: u64,
    /// Seconds the machine spent down: planned restart transients, crash
    /// repairs, and — for an open-loop terminal crash — the dead tail to
    /// the horizon.
    pub downtime_secs: f64,
}

/// Everything a fleet run produced.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// All events, globally ordered by `(time, machine, emission)`.
    pub events: Vec<AlarmEvent>,
    /// Per-machine terminal states, by machine index.
    pub outcomes: Vec<MachineOutcome>,
    /// Final aggregated telemetry.
    pub status: StatusSnapshot,
    /// Every restart decision the [`RejuvController`] made, in
    /// arbitration order — empty when [`FleetConfig::rejuv`] is `None`.
    /// Deterministic for a given fleet, bit for bit, across shard
    /// counts; the golden-fixture and parity suites pin exactly this.
    pub decisions: Vec<RestartDecision>,
}

impl FleetReport {
    /// Seconds between a machine's fused alarm and its crash — the
    /// prediction lead time. `None` if it never alarmed or never crashed.
    pub fn lead_time_secs(&self, machine_index: usize) -> Option<f64> {
        let crash = self
            .outcomes
            .iter()
            .find(|o| o.machine_index == machine_index)?
            .crash_time_secs?;
        let alarm = self
            .events
            .iter()
            .find(|e| {
                e.machine_index == machine_index && matches!(e.kind, AlarmKind::MachineAlarm { .. })
            })?
            .time_secs;
        Some(crash - alarm)
    }

    /// Iterates the machine-level fused alarms in stream order.
    pub fn machine_alarms(&self) -> impl Iterator<Item = &AlarmEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, AlarmKind::MachineAlarm { .. }))
    }

    /// Iterates the granted restart events in stream order.
    pub fn restart_events(&self) -> impl Iterator<Item = &AlarmEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, AlarmKind::Restart { .. }))
    }

    /// Availability accounting over `horizon_secs`: per-machine uptime
    /// net of planned-restart transients, crash repairs, and terminal
    /// dead time (see [`MachineOutcome::downtime_secs`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive or
    /// non-finite horizon, or when the run had no machines.
    pub fn availability(&self, horizon_secs: f64) -> Result<AvailabilitySummary> {
        let machines: Vec<(u64, u64, f64)> = self
            .outcomes
            .iter()
            .map(|o| (o.restarts, o.crashes, o.downtime_secs))
            .collect();
        AvailabilitySummary::from_machines(horizon_secs, &machines)
    }
}

// ---------------------------------------------------------------------------
// Shard internals
// ---------------------------------------------------------------------------

/// Per-shard cumulative telemetry, merged by the supervisor.
#[derive(Debug, Clone, Copy, Default)]
struct ShardTelemetry {
    stream_time_secs: f64,
    live: usize,
    finished: usize,
    counters: StageCounters,
    latency: LatencyHistogram,
    telemetry_dropped: u64,
    detector_errors: u64,
}

enum ShardMsg {
    Event {
        seq: u64,
        event: AlarmEvent,
    },
    Watermark {
        shard: usize,
        time_secs: f64,
    },
    Telemetry {
        shard: usize,
        telemetry: Box<ShardTelemetry>,
    },
    Done {
        shard: usize,
        telemetry: Box<ShardTelemetry>,
        outcomes: Vec<MachineOutcome>,
    },
    /// A machine asks to restart; the shard has *parked* it (stopped
    /// stepping it, pinning the shard watermark at the request time)
    /// until the supervisor sends a verdict back on the shard's decision
    /// channel. FIFO order guarantees the request reaches the supervisor
    /// before any watermark that could release events past it.
    Restart {
        shard: usize,
        request: RestartRequest,
    },
}

struct ShardMachine {
    index: usize,
    name: String,
    machine: Machine,
    consumed: usize,
    /// The gate → detector → fusion core, shared with `aging-serve`.
    pipeline: MachinePipeline,
    /// Fault injectors sitting between the monitor and the gate, one
    /// slot per counter stream (parallel to the pipeline's streams).
    perturbers: Vec<Option<Box<dyn SamplePerturber>>>,
    finished: bool,
    crash_time_secs: Option<f64>,
    samples: u64,
    last_time_secs: f64,
    /// Awaiting a restart verdict: skipped in sweeps, pins the watermark.
    parked: bool,
    /// Crash the shard has not yet converted into a repair request.
    pending_crash_secs: Option<f64>,
    /// Shard-local mirror of the controller's cooldown epoch, used to
    /// prefilter requests (both sides update it only on grants, at the
    /// same times, so they agree exactly).
    last_restart_secs: f64,
    /// Deterministic re-request backoff after a denial.
    retry_after_secs: f64,
    restarts: u64,
    crashes: u64,
}

impl ShardMachine {
    /// Steps the simulation until the monitor publishes the next sample;
    /// `None` ends the feed (crash or horizon), recording the cause.
    fn next_sample(&mut self, horizon_secs: f64) -> Option<Sample> {
        while self.machine.log().len() == self.consumed {
            if self.machine.now().as_secs() >= horizon_secs {
                return None;
            }
            if let Some(crash) = self.machine.step() {
                let t = crash.time.as_secs();
                self.pending_crash_secs = Some(t);
                if self.crash_time_secs.is_none() {
                    self.crash_time_secs = Some(t);
                }
                return None;
            }
        }
        self.consumed += 1;
        self.machine.last_sample()
    }
}

/// Applies one restart verdict on the shard side: a granted restart
/// takes the machine down (counter reset + refill transient), re-arms
/// its pipeline so a later aging episode can alarm again, and advances
/// the shard-local cooldown epoch; a denial just unparks with a backoff
/// so the machine re-asks later instead of every tick.
fn apply_restart_decision(machines: &mut [ShardMachine], decision: RestartDecision) {
    let Some(m) = machines
        .iter_mut()
        .find(|m| m.index == decision.machine_index)
    else {
        return;
    };
    m.parked = false;
    if decision.granted {
        m.machine.begin_restart(decision.downtime_secs);
        m.pipeline.rearm();
        m.last_restart_secs = decision.time_secs;
        match decision.reason {
            RestartReason::CrashReboot => m.crashes += 1,
            RestartReason::Alarm | RestartReason::Periodic => m.restarts += 1,
        }
    } else {
        m.retry_after_secs = decision.time_secs + decision.downtime_secs.max(60.0);
    }
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

/// Runs fleets of simulated machines through streaming detectors.
#[derive(Debug, Clone)]
pub struct FleetSupervisor {
    config: FleetConfig,
}

impl FleetSupervisor {
    /// Creates a supervisor.
    ///
    /// # Errors
    ///
    /// Propagates [`FleetConfig::validate`] and instantiates every
    /// detector spec once to surface bad tunings before any thread spawns.
    pub fn new(config: FleetConfig) -> Result<Self> {
        config.validate()?;
        for d in &config.detectors {
            StreamingDetector::new(&d.spec)?;
        }
        Ok(FleetSupervisor { config })
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Monitors the fleet to its horizon, collecting all events.
    ///
    /// # Errors
    ///
    /// Propagates machine-boot failures.
    pub fn run(&self, scenarios: &[Scenario]) -> Result<FleetReport> {
        self.run_with(scenarios, |_| {}, |_| {})
    }

    /// Monitors the fleet, invoking `on_alarm` for each event as the
    /// ordered merge releases it and `on_status` for each telemetry
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Propagates machine-boot failures (before any thread starts).
    pub fn run_with(
        &self,
        scenarios: &[Scenario],
        mut on_alarm: impl FnMut(&AlarmEvent),
        mut on_status: impl FnMut(&StatusSnapshot),
    ) -> Result<FleetReport> {
        let cfg = &self.config;

        // Open the event store (if any) before any thread spawns, so a
        // bad directory fails the run up front.
        let mut store = match &cfg.store {
            Some(store_cfg) => Some(
                Store::open(store_cfg.clone())
                    .map_err(|e| Error::Io(format!("event store open: {e}")))?
                    .0,
            ),
            None => None,
        };
        let mut journal_err: Option<String> = None;

        // Boot everything up front so errors surface before threads spawn.
        let mut machines = Vec::with_capacity(scenarios.len());
        for (index, scenario) in scenarios.iter().enumerate() {
            let perturbers = cfg
                .detectors
                .iter()
                .map(|d| cfg.perturb.as_ref().map(|f| f(index, d.counter)))
                .collect();
            machines.push(ShardMachine {
                index,
                name: format!("m{index:03}:{}", scenario.name),
                machine: Machine::boot(scenario)?,
                consumed: 0,
                pipeline: MachinePipeline::new(&cfg.detectors, cfg.fusion, cfg.gate)?,
                perturbers,
                finished: false,
                crash_time_secs: None,
                samples: 0,
                last_time_secs: f64::NEG_INFINITY,
                parked: false,
                pending_crash_secs: None,
                last_restart_secs: 0.0,
                retry_after_secs: 0.0,
                restarts: 0,
                crashes: 0,
            });
        }

        // The restart arbiter (if closed-loop rejuvenation is on) lives
        // on the supervisor side of the channel; shards get one verdict
        // channel each. Built before partitioning so a bad rejuv config
        // fails the run before any thread spawns.
        let controller = match &cfg.rejuv {
            Some(rejuv) => Some(RejuvController::new(*rejuv, scenarios.len().max(1))?),
            None => None,
        };
        let machine_names: Vec<String> = machines.iter().map(|m| m.name.clone()).collect();

        let shard_count = if cfg.shards == 0 {
            aging_par::Pool::global()
                .threads()
                .min(machines.len())
                .max(1)
        } else {
            cfg.shards.min(machines.len()).max(1)
        };

        // Round-robin partition.
        let mut shards: Vec<Vec<ShardMachine>> = (0..shard_count).map(|_| Vec::new()).collect();
        for (i, m) in machines.into_iter().enumerate() {
            shards[i % shard_count].push(m);
        }

        let (tx, rx) = mpsc::sync_channel::<ShardMsg>(cfg.queue_capacity);
        let mut decision_txs = Vec::with_capacity(shard_count);
        let mut decision_rxs = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let (dtx, drx) = mpsc::channel::<RestartDecision>();
            decision_txs.push(dtx);
            decision_rxs.push(drx);
        }
        let arbiter = controller.map(|controller| RestartArbiter {
            controller,
            decision_txs,
            machine_names,
            pending: Vec::new(),
        });
        // Journal each event as the ordered merge releases it, *before*
        // the caller's hook sees it — what the hook observed is durable.
        let mut alarm_hook = |event: &AlarmEvent| {
            if journal_err.is_none() {
                if let Some(store) = store.as_mut() {
                    let mut payload = Vec::with_capacity(64);
                    encode_alarm_event(event, &mut payload);
                    if let Err(e) = store.append(&payload) {
                        journal_err = Some(e.to_string());
                    }
                }
            }
            on_alarm(event);
        };
        let mut report = std::thread::scope(|scope| {
            for ((shard_id, shard_machines), drx) in
                shards.into_iter().enumerate().zip(decision_rxs)
            {
                let tx = tx.clone();
                let cfg = &self.config;
                let drx = cfg.rejuv.is_some().then_some(drx);
                scope.spawn(move || shard_loop(shard_id, shard_machines, cfg, &tx, drx));
            }
            drop(tx); // the merge loop ends when every shard hangs up
            merge_loop(shard_count, rx, arbiter, &mut alarm_hook, &mut on_status)
        });
        report.outcomes.sort_by_key(|o| o.machine_index);
        if let Some(e) = journal_err {
            return Err(Error::Io(format!("event journal append failed: {e}")));
        }
        // A completed run compacts its history into one snapshot and
        // truncates the journal.
        if let Some(store) = store.as_mut() {
            let mut blob = Vec::with_capacity(16 + report.events.len() * 64);
            persist::put_u8(&mut blob, FLEET_SNAPSHOT_VERSION);
            persist::put_u64(&mut blob, report.events.len() as u64);
            for event in &report.events {
                encode_alarm_event(event, &mut blob);
            }
            store
                .commit_snapshot(&blob)
                .map_err(|e| Error::Io(format!("event snapshot commit failed: {e}")))?;
        }
        Ok(report)
    }

    /// Reads back the alarm history a store-backed run left on disk: the
    /// last completed run's snapshot plus the journaled prefix of any
    /// interrupted run after it. A torn final journal entry (the crash
    /// landed mid-append) is discarded by the store layer; everything
    /// before it is returned in release order.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the store cannot be opened,
    /// [`Error::InvalidParameter`] when a surviving payload does not
    /// decode (foreign or corrupted store directory).
    pub fn recover_events(store_cfg: &StoreConfig) -> Result<Vec<AlarmEvent>> {
        let (_store, recovery) = Store::open(store_cfg.clone())
            .map_err(|e| Error::Io(format!("event store open: {e}")))?;
        let mut events = Vec::new();
        if let Some(blob) = &recovery.snapshot {
            let mut r = persist::Reader::new(blob);
            let version = r.u8()?;
            if version != FLEET_SNAPSHOT_VERSION {
                return Err(Error::invalid(
                    "store",
                    format!("unsupported fleet snapshot version {version}"),
                ));
            }
            let count = r.u64()?;
            for _ in 0..count {
                events.push(decode_alarm_event(&mut r)?);
            }
            r.finish()?;
        }
        for entry in &recovery.entries {
            let mut r = persist::Reader::new(&entry.payload);
            events.push(decode_alarm_event(&mut r)?);
            r.finish()?;
        }
        Ok(events)
    }
}

/// One shard's whole life: sweep its machines round-robin, gate and
/// detect every counter sample, vote, and publish events + watermarks.
fn shard_loop(
    shard_id: usize,
    mut machines: Vec<ShardMachine>,
    cfg: &FleetConfig,
    tx: &mpsc::SyncSender<ShardMsg>,
    decisions: Option<mpsc::Receiver<RestartDecision>>,
) {
    let mut telemetry_dropped = 0u64;
    let mut seq = 0u64;
    let mut next_status = cfg.status_every_secs;
    // Scratch buffers reused across samples so the hot path stays
    // allocation-free: one the perturber (if any) expands each raw sample
    // into, one the pipeline appends its events to.
    let mut scratch: Vec<crate::source::StreamSample> = Vec::new();
    let mut pipeline_events: Vec<PipelineEvent> = Vec::new();

    loop {
        // Apply restart verdicts before sweeping. When every live
        // machine is parked the shard has nothing to step, so it blocks
        // on the verdict channel instead of spinning; progress is
        // guaranteed because the globally earliest pending request is
        // always decidable (every shard's watermark reaches it).
        if let Some(rx) = &decisions {
            loop {
                match rx.try_recv() {
                    Ok(d) => apply_restart_decision(&mut machines, d),
                    Err(mpsc::TryRecvError::Empty) => {
                        let live = machines.iter().filter(|m| !m.finished);
                        let mut any = false;
                        let all_parked = live.inspect(|_| any = true).all(|m| m.parked);
                        if any && all_parked {
                            match rx.recv() {
                                Ok(d) => apply_restart_decision(&mut machines, d),
                                Err(_) => return, // supervisor gone
                            }
                        } else {
                            break;
                        }
                    }
                    Err(mpsc::TryRecvError::Disconnected) => {
                        if machines.iter().any(|m| !m.finished && m.parked) {
                            return; // verdicts can never arrive now
                        }
                        break;
                    }
                }
            }
        }

        let mut events = Vec::new();
        for m in machines.iter_mut().filter(|m| !m.finished && !m.parked) {
            let Some(sample) = m.next_sample(cfg.horizon_secs) else {
                if cfg.rejuv.is_some() {
                    if let Some(crash_t) = m.pending_crash_secs.take() {
                        // Closed loop: the crash becomes a forced repair
                        // request instead of ending the feed. The machine
                        // emitted nothing between its last sample and the
                        // crash, so lifting its clock to the crash time
                        // keeps the watermark truthful (and lets the
                        // frontier reach the request).
                        m.last_time_secs = crash_t;
                        m.parked = true;
                        let request = RestartRequest {
                            machine_index: m.index,
                            time_secs: crash_t,
                            reason: RestartReason::CrashReboot,
                        };
                        if tx
                            .send(ShardMsg::Restart {
                                shard: shard_id,
                                request,
                            })
                            .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                }
                m.finished = true;
                continue;
            };
            m.samples += 1;
            let time_secs = sample.time.as_secs();
            m.last_time_secs = time_secs;
            pipeline_events.clear();
            for (stream, d) in cfg.detectors.iter().enumerate() {
                if m.pipeline.stream_disabled(stream) {
                    continue;
                }
                let raw = crate::source::StreamSample {
                    time_secs,
                    value: sample.value(d.counter),
                };
                // The perturber may corrupt, duplicate or swallow the raw
                // sample; the event timestamp stays the true machine time
                // either way, so watermark ordering is untouched.
                scratch.clear();
                match m.perturbers[stream].as_mut() {
                    Some(p) => p.perturb(raw, &mut scratch),
                    None => scratch.push(raw),
                }
                for perturbed in scratch.drain(..) {
                    m.pipeline
                        .push_record(stream, perturbed, time_secs, &mut pipeline_events);
                }
            }
            m.pipeline.end_tick(time_secs, &mut pipeline_events);
            for pe in pipeline_events.drain(..) {
                events.push(AlarmEvent {
                    machine_index: m.index,
                    machine: m.name.clone(),
                    time_secs: pe.time_secs,
                    level: pe.level,
                    kind: pe.kind,
                });
            }

            // Planned restart requests: the shard prefilters on its local
            // cooldown mirror (so it only asks when the controller could
            // plausibly grant) and parks the machine until the verdict.
            if let Some(rejuv) = &cfg.rejuv {
                let reason = match rejuv.policy {
                    RejuvPolicy::None => None,
                    RejuvPolicy::Periodic { period_secs } => (time_secs - m.last_restart_secs
                        >= period_secs)
                        .then_some(RestartReason::Periodic),
                    RejuvPolicy::AlarmTriggered => (m.pipeline.is_fused()
                        && time_secs - m.last_restart_secs >= rejuv.cooldown_secs)
                        .then_some(RestartReason::Alarm),
                };
                if let Some(reason) = reason {
                    if time_secs >= m.retry_after_secs {
                        m.parked = true;
                        let request = RestartRequest {
                            machine_index: m.index,
                            time_secs,
                            reason,
                        };
                        if tx
                            .send(ShardMsg::Restart {
                                shard: shard_id,
                                request,
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                }
            }
        }

        // Lossless path: block when the queue is full (backpressure).
        for event in events {
            seq += 1;
            if tx.send(ShardMsg::Event { seq, event }).is_err() {
                return; // supervisor gone
            }
        }

        let live = machines.iter().filter(|m| !m.finished).count();
        let watermark = machines
            .iter()
            .filter(|m| !m.finished)
            .map(|m| m.last_time_secs)
            .fold(f64::INFINITY, f64::min);

        let telemetry = |wm: f64, dropped: u64| {
            let mut counters = StageCounters::default();
            let mut latency = LatencyHistogram::default();
            let mut detector_errors = 0u64;
            for m in &machines {
                counters.merge(&m.pipeline.counters());
                latency.merge(m.pipeline.latency());
                detector_errors += m.pipeline.detector_errors();
            }
            Box::new(ShardTelemetry {
                stream_time_secs: if wm.is_finite() { wm } else { 0.0 },
                live,
                finished: machines.len() - live,
                counters,
                latency,
                telemetry_dropped: dropped,
                detector_errors,
            })
        };

        if live == 0 {
            let outcomes = machines
                .iter()
                .map(|m| {
                    // An open-loop terminal crash leaves the machine dead
                    // from the crash to the horizon; closed-loop repairs
                    // already accrued their downtime on the machine.
                    let mut downtime_secs = m.machine.downtime_secs();
                    if m.machine.is_crashed() {
                        if let Some(t) = m.crash_time_secs {
                            downtime_secs += (cfg.horizon_secs - t).max(0.0);
                        }
                    }
                    MachineOutcome {
                        machine_index: m.index,
                        machine: m.name.clone(),
                        crash_time_secs: m.crash_time_secs,
                        samples: m.samples,
                        restarts: m.restarts,
                        crashes: m.crashes + u64::from(m.machine.is_crashed()),
                        downtime_secs,
                    }
                })
                .collect();
            let last_time = machines
                .iter()
                .map(|m| m.last_time_secs)
                .fold(0.0, f64::max);
            let _ = tx.send(ShardMsg::Done {
                shard: shard_id,
                telemetry: telemetry(last_time, telemetry_dropped),
                outcomes,
            });
            return;
        }

        if tx
            .send(ShardMsg::Watermark {
                shard: shard_id,
                time_secs: watermark,
            })
            .is_err()
        {
            return;
        }

        // Lossy path: shed telemetry rather than stall detection.
        if watermark >= next_status {
            while watermark >= next_status {
                next_status += cfg.status_every_secs;
            }
            if let Err(mpsc::TrySendError::Full(_)) = tx.try_send(ShardMsg::Telemetry {
                shard: shard_id,
                telemetry: telemetry(watermark, telemetry_dropped),
            }) {
                telemetry_dropped += 1;
            }
        }
    }
}

/// Supervisor-side state of the closed rejuvenation loop: the arbiter
/// itself plus the per-shard verdict channels and the display names the
/// synthesized restart events carry.
struct RestartArbiter {
    controller: RejuvController,
    decision_txs: Vec<mpsc::Sender<RestartDecision>>,
    machine_names: Vec<String>,
    /// Pending requests, kept sorted by `(time, machine)` — the order
    /// decisions must be made in for determinism across shard counts.
    pending: Vec<(usize, RestartRequest)>,
}

impl RestartArbiter {
    /// Buffers one request in `(time, machine)` order.
    fn enqueue(&mut self, shard: usize, request: RestartRequest) {
        let pos = self.pending.partition_point(|(_, r)| {
            (r.time_secs, r.machine_index) <= (request.time_secs, request.machine_index)
        });
        self.pending.insert(pos, (shard, request));
    }
}

/// Decides every pending request the frontier has reached (all of them
/// when `force` is set, for the final error-path flush), releasing the
/// merged history up to each arbitration point first so the journaled
/// stream stays globally time-ordered around the restart events.
///
/// Two invariants make the decision order deterministic: a shard sends a
/// request *before* the watermark that could lift the frontier to it
/// (FIFO), and a parked machine pins its shard's watermark at the
/// request time — so the frontier can never pass a request that is not
/// yet pending, and requests are always decided in `(time, machine)`
/// order no matter how shards interleave.
#[allow(clippy::too_many_arguments)]
fn arbitrate(
    arb: &mut RestartArbiter,
    merger: &mut WatermarkMerger<AlarmEvent>,
    force: bool,
    released: &mut Vec<AlarmEvent>,
    warnings: &mut u64,
    alarms: &mut u64,
    on_alarm: &mut dyn FnMut(&AlarmEvent),
) {
    while let Some(&(shard, request)) = arb.pending.first() {
        if !force && !(request.time_secs <= merger.frontier()) {
            break;
        }
        while let Some(event) = merger.pop_ready_until(request.time_secs) {
            match event.level {
                AlertLevel::Warning => *warnings += 1,
                AlertLevel::Alarm => *alarms += 1,
            }
            on_alarm(&event);
            released.push(event);
        }
        let decision = arb.controller.decide(&request);
        if decision.granted {
            let event = AlarmEvent {
                machine_index: request.machine_index,
                machine: arb
                    .machine_names
                    .get(request.machine_index)
                    .cloned()
                    .unwrap_or_default(),
                time_secs: request.time_secs,
                // A planned restart is an operator action (Warning); a
                // crash repair is the incident itself (Alarm).
                level: if request.reason == RestartReason::CrashReboot {
                    AlertLevel::Alarm
                } else {
                    AlertLevel::Warning
                },
                kind: AlarmKind::Restart {
                    reason: request.reason,
                    downtime_secs: decision.downtime_secs,
                },
            };
            match event.level {
                AlertLevel::Warning => *warnings += 1,
                AlertLevel::Alarm => *alarms += 1,
            }
            on_alarm(&event);
            released.push(event);
        }
        let _ = arb.decision_txs[shard].send(decision);
        arb.pending.remove(0);
    }
}

/// The supervisor side: merge shard streams into one ordered event
/// sequence using the shard watermarks (via the shared
/// [`WatermarkMerger`]), arbitrate restart requests on it, and aggregate
/// telemetry.
fn merge_loop(
    shard_count: usize,
    rx: mpsc::Receiver<ShardMsg>,
    mut arbiter: Option<RestartArbiter>,
    on_alarm: &mut impl FnMut(&AlarmEvent),
    on_status: &mut impl FnMut(&StatusSnapshot),
) -> FleetReport {
    let mut latest_tel: Vec<Option<Box<ShardTelemetry>>> = (0..shard_count).map(|_| None).collect();
    let mut merger: WatermarkMerger<AlarmEvent> = WatermarkMerger::new(shard_count);
    let mut released = Vec::new();
    let mut outcomes = Vec::new();
    let mut warnings = 0u64;
    let mut alarms = 0u64;
    let mut sequence = 0u64;

    // `drain` pops past the frontier — only for the final flush once
    // every shard has hung up.
    let release = |merger: &mut WatermarkMerger<AlarmEvent>,
                   drain: bool,
                   released: &mut Vec<AlarmEvent>,
                   warnings: &mut u64,
                   alarms: &mut u64,
                   on_alarm: &mut dyn FnMut(&AlarmEvent)| {
        while let Some(event) = if drain {
            merger.pop_any()
        } else {
            merger.pop_ready()
        } {
            match event.level {
                AlertLevel::Warning => *warnings += 1,
                AlertLevel::Alarm => *alarms += 1,
            }
            on_alarm(&event);
            released.push(event);
        }
    };

    let build_snapshot = |sequence: u64,
                          latest_tel: &[Option<Box<ShardTelemetry>>],
                          heap_len: usize,
                          warnings: u64,
                          alarms: u64,
                          restarts_granted: u64,
                          restarts_denied: u64| {
        let mut ingestion = StageCounters::default();
        let mut latency = LatencyHistogram::default();
        let mut live = 0;
        let mut finished = 0;
        let mut dropped = 0;
        let mut errors = 0;
        let mut t = 0.0f64;
        for tel in latest_tel.iter().flatten() {
            ingestion.merge(&tel.counters);
            latency.merge(&tel.latency);
            live += tel.live;
            finished += tel.finished;
            dropped += tel.telemetry_dropped;
            errors += tel.detector_errors;
            t = t.max(tel.stream_time_secs);
        }
        StatusSnapshot {
            sequence,
            stream_time_secs: t,
            machines_live: live,
            machines_finished: finished,
            ingestion,
            detector_latency: latency,
            warnings_emitted: warnings,
            alarms_emitted: alarms,
            alarm_queue_depth: heap_len,
            telemetry_dropped: dropped,
            detector_errors: errors,
            restarts_granted,
            restarts_denied,
        }
    };

    // Restart tallies for telemetry; `(granted, denied)`.
    let restart_tallies = |arbiter: &Option<RestartArbiter>| {
        arbiter.as_ref().map_or((0, 0), |a| {
            (
                a.controller.granted(),
                a.controller.denied_cooldown() + a.controller.denied_budget(),
            )
        })
    };

    for msg in rx {
        match msg {
            ShardMsg::Event { seq, event } => merger.push(
                MergeKey {
                    time_secs: event.time_secs,
                    lane: event.machine_index as u64,
                    seq,
                },
                event,
            ),
            ShardMsg::Watermark { shard, time_secs } => {
                merger.advance(shard, time_secs);
                if let Some(arb) = arbiter.as_mut() {
                    arbitrate(
                        arb,
                        &mut merger,
                        false,
                        &mut released,
                        &mut warnings,
                        &mut alarms,
                        on_alarm,
                    );
                }
                release(
                    &mut merger,
                    false,
                    &mut released,
                    &mut warnings,
                    &mut alarms,
                    on_alarm,
                );
            }
            ShardMsg::Restart { shard, request } => {
                if let Some(arb) = arbiter.as_mut() {
                    arb.enqueue(shard, request);
                    arbitrate(
                        arb,
                        &mut merger,
                        false,
                        &mut released,
                        &mut warnings,
                        &mut alarms,
                        on_alarm,
                    );
                }
            }
            ShardMsg::Telemetry { shard, telemetry } => {
                latest_tel[shard] = Some(telemetry);
                sequence += 1;
                let (granted, denied) = restart_tallies(&arbiter);
                let snap = build_snapshot(
                    sequence,
                    &latest_tel,
                    merger.len(),
                    warnings,
                    alarms,
                    granted,
                    denied,
                );
                on_status(&snap);
            }
            ShardMsg::Done {
                shard,
                telemetry,
                outcomes: shard_outcomes,
            } => {
                merger.finish(shard);
                latest_tel[shard] = Some(telemetry);
                outcomes.extend(shard_outcomes);
                if let Some(arb) = arbiter.as_mut() {
                    arbitrate(
                        arb,
                        &mut merger,
                        false,
                        &mut released,
                        &mut warnings,
                        &mut alarms,
                        on_alarm,
                    );
                }
                release(
                    &mut merger,
                    false,
                    &mut released,
                    &mut warnings,
                    &mut alarms,
                    on_alarm,
                );
            }
        }
    }

    // Every shard has hung up: decide any still-pending requests (their
    // shards died mid-park — error paths only), then flush the heap.
    if let Some(arb) = arbiter.as_mut() {
        arbitrate(
            arb,
            &mut merger,
            true,
            &mut released,
            &mut warnings,
            &mut alarms,
            on_alarm,
        );
    }
    release(
        &mut merger,
        true,
        &mut released,
        &mut warnings,
        &mut alarms,
        on_alarm,
    );
    sequence += 1;
    let (granted, denied) = restart_tallies(&arbiter);
    let status = build_snapshot(
        sequence,
        &latest_tel,
        merger.len(),
        warnings,
        alarms,
        granted,
        denied,
    );
    on_status(&status);
    FleetReport {
        events: released,
        outcomes,
        decisions: arbiter.map_or_else(Vec::new, |a| a.controller.decisions().to_vec()),
        status,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorSpec;
    use aging_core::baseline::TrendPredictorConfig;

    /// A cheap trend detector suited to the 5-second tiny-machine feed.
    fn trend_spec() -> DetectorSpec {
        DetectorSpec::Trend(TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(5.0)
        })
    }

    fn fleet_config(horizon_secs: f64) -> FleetConfig {
        let mut cfg = FleetConfig::new(
            vec![CounterDetector {
                counter: Counter::AvailableBytes,
                spec: trend_spec(),
            }],
            horizon_secs,
        );
        cfg.gate.nominal_period_secs = 5.0;
        cfg.status_every_secs = 300.0;
        cfg.shards = 3;
        cfg
    }

    #[test]
    fn config_guards() {
        assert!(FleetConfig::new(Vec::new(), 100.0).validate().is_err());
        let mut c = fleet_config(0.0);
        assert!(c.validate().is_err());
        c.horizon_secs = 100.0;
        c.queue_capacity = 0;
        assert!(c.validate().is_err());
        c.queue_capacity = 16;
        c.status_every_secs = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn aging_fleet_alarms_before_crashes() {
        // Aggressive leaks: every machine crashes inside the horizon.
        let scenarios: Vec<Scenario> = (0..6)
            .map(|i| Scenario::tiny_aging(100 + i, 192.0))
            .collect();
        let sup = FleetSupervisor::new(fleet_config(8.0 * 3600.0)).unwrap();
        let mut seen = 0usize;
        let mut statuses = 0usize;
        let report = sup
            .run_with(&scenarios, |_| seen += 1, |_| statuses += 1)
            .unwrap();

        assert_eq!(report.events.len(), seen);
        assert!(statuses >= 1, "final snapshot always emitted");
        assert_eq!(report.outcomes.len(), scenarios.len());

        // Globally ordered event stream.
        assert!(report
            .events
            .windows(2)
            .all(|w| w[0].time_secs <= w[1].time_secs));

        // Every machine crashed, alarmed first, with positive lead time.
        for (i, outcome) in report.outcomes.iter().enumerate() {
            assert_eq!(outcome.machine_index, i);
            let crash = outcome.crash_time_secs.expect("leak must crash");
            let lead = report.lead_time_secs(i).expect("alarm before crash");
            assert!(lead > 0.0, "machine {i}: lead {lead} (crash at {crash})");
        }
        assert_eq!(report.machine_alarms().count(), scenarios.len());

        // Telemetry adds up.
        let s = &report.status;
        assert_eq!(s.machines_live, 0);
        assert_eq!(s.machines_finished, scenarios.len());
        assert!(s.ingestion.accepted > 0);
        assert_eq!(s.ingestion.ingested, s.ingestion.accepted);
        assert_eq!(
            s.alarms_emitted as usize,
            report.machine_alarms().count() * 2
        );
        assert_eq!(s.detector_errors, 0);
        assert!(s.detector_latency.total >= s.ingestion.accepted - 1);
    }

    #[test]
    fn healthy_fleet_stays_quiet() {
        let scenarios: Vec<Scenario> = (0..4).map(|i| Scenario::tiny_aging(7 + i, 0.0)).collect();
        let sup = FleetSupervisor::new(fleet_config(2.0 * 3600.0)).unwrap();
        let report = sup.run(&scenarios).unwrap();
        assert_eq!(report.machine_alarms().count(), 0);
        for o in &report.outcomes {
            assert_eq!(o.crash_time_secs, None, "{} crashed", o.machine);
            assert!(o.samples > 0);
        }
        assert_eq!(report.status.alarms_emitted, 0);
    }

    /// A store directory wiped on create and drop.
    struct TempDir(std::path::PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("aging-fleetstore-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn store_backed_run_round_trips_its_event_history() {
        let scenarios: Vec<Scenario> = (0..3)
            .map(|i| Scenario::tiny_aging(400 + i, 192.0))
            .collect();
        let dir = TempDir::new("roundtrip");
        let store_cfg = aging_store::StoreConfig::new(&dir.0);
        let mut cfg = fleet_config(8.0 * 3600.0);
        cfg.store = Some(store_cfg.clone());
        let report = FleetSupervisor::new(cfg).unwrap().run(&scenarios).unwrap();
        assert!(!report.events.is_empty(), "leaky fleet must alarm");

        // The completed run compacted everything into the snapshot.
        let recovered = FleetSupervisor::recover_events(&store_cfg).unwrap();
        assert_eq!(recovered, report.events);

        // A crash mid-(second-)run leaves journal entries after the
        // snapshot; recovery returns snapshot + suffix in order.
        let (mut store, _) = aging_store::Store::open(store_cfg.clone()).unwrap();
        let extra = report.events.last().unwrap().clone();
        let mut payload = Vec::new();
        encode_alarm_event(&extra, &mut payload);
        store.append(&payload).unwrap();
        drop(store);
        let recovered = FleetSupervisor::recover_events(&store_cfg).unwrap();
        assert_eq!(recovered.len(), report.events.len() + 1);
        assert_eq!(recovered.last().unwrap(), &extra);

        // Holder-detail events survive the codec too (not just trend).
        let holder_event = AlarmEvent {
            machine_index: 9,
            machine: "m009:probe".to_string(),
            time_secs: 123.5,
            level: AlertLevel::Alarm,
            kind: AlarmKind::Detector {
                counter: Counter::AvailableBytes,
                detector: "holder-dimension",
                detail: AlertDetail::Holder(Alert {
                    sample_index: 41,
                    level: AlertLevel::Alarm,
                    trigger: aging_core::detector::Trigger::Both,
                    dimension: 1.25,
                    mean_holder: 0.5,
                    dimension_baseline: 1.0,
                    holder_baseline: 0.75,
                }),
            },
        };
        let mut payload = Vec::new();
        encode_alarm_event(&holder_event, &mut payload);
        let mut r = persist::Reader::new(&payload);
        let decoded = decode_alarm_event(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, holder_event);
    }

    #[test]
    fn event_stream_is_deterministic_across_runs() {
        let scenarios: Vec<Scenario> = (0..5)
            .map(|i| Scenario::tiny_aging(200 + i, 192.0))
            .collect();
        let run = |shards: usize| {
            let mut cfg = fleet_config(8.0 * 3600.0);
            cfg.shards = shards;
            FleetSupervisor::new(cfg).unwrap().run(&scenarios).unwrap()
        };
        let a = run(2);
        let b = run(5);
        assert_eq!(a.events, b.events, "order must not depend on sharding");
        assert_eq!(a.outcomes, b.outcomes);
    }

    /// A deterministic test perturber: every 17th sample becomes NaN,
    /// every 23rd is followed by a stale duplicate.
    struct NastyFeed {
        n: u64,
        last: Option<crate::source::StreamSample>,
    }

    impl SamplePerturber for NastyFeed {
        fn perturb(
            &mut self,
            raw: crate::source::StreamSample,
            out: &mut Vec<crate::source::StreamSample>,
        ) {
            self.n += 1;
            if self.n.is_multiple_of(17) {
                out.push(crate::source::StreamSample {
                    value: f64::NAN,
                    ..raw
                });
                // The real reading still arrives afterwards.
            }
            out.push(raw);
            if self.n.is_multiple_of(23) {
                // Retransmission of the previous sample (out of order).
                if let Some(stale) = self.last {
                    out.push(stale);
                }
            }
            self.last = Some(raw);
        }
    }

    #[test]
    fn perturbed_fleet_reconciles_and_stays_deterministic() {
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| Scenario::tiny_aging(300 + i, 192.0))
            .collect();
        let run = |shards: usize| {
            let mut cfg = fleet_config(8.0 * 3600.0);
            cfg.shards = shards;
            cfg.perturb = Some(std::sync::Arc::new(|_, _| {
                Box::new(NastyFeed { n: 0, last: None })
            }));
            FleetSupervisor::new(cfg).unwrap().run(&scenarios).unwrap()
        };
        let a = run(2);
        // Defects were injected and accounted for, exactly.
        let s = &a.status.ingestion;
        assert!(s.dropped_non_finite > 0, "NaNs injected");
        assert!(s.dropped_out_of_order > 0, "stale duplicates injected");
        assert_eq!(s.ingested, s.accepted + s.dropped());
        // Gate repair preserves detection: every leaking machine still
        // alarms ahead of its crash.
        for (i, o) in a.outcomes.iter().enumerate() {
            assert!(o.crash_time_secs.is_some());
            assert!(a.lead_time_secs(i).is_some(), "machine {i} never alarmed");
        }
        // Ordering and cross-shard determinism hold under perturbation.
        assert!(a
            .events
            .windows(2)
            .all(|w| w[0].time_secs <= w[1].time_secs));
        let b = run(4);
        assert_eq!(a.events, b.events);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.status.ingestion, b.status.ingestion);
    }

    fn rejuv_config(policy: RejuvPolicy) -> RejuvConfig {
        RejuvConfig {
            policy,
            cooldown_secs: 900.0,
            restart_downtime_secs: 30.0,
            crash_repair_secs: 900.0,
            max_concurrent_restarts: 2,
        }
    }

    #[test]
    fn alarm_triggered_loop_restarts_and_accounts_downtime() {
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| Scenario::tiny_aging(500 + i, 192.0))
            .collect();
        let horizon = 8.0 * 3600.0;
        let mut cfg = fleet_config(horizon);
        cfg.rejuv = Some(rejuv_config(RejuvPolicy::AlarmTriggered));
        let report = FleetSupervisor::new(cfg).unwrap().run(&scenarios).unwrap();

        // The loop closed: restarts were granted and landed inside the
        // globally ordered event stream.
        let restarts: Vec<&AlarmEvent> = report.restart_events().collect();
        assert!(
            !restarts.is_empty(),
            "aggressive leak must trigger restarts"
        );
        assert!(report
            .events
            .windows(2)
            .all(|w| w[0].time_secs <= w[1].time_secs));

        // One restart event per granted decision, and telemetry agrees.
        let granted = report.decisions.iter().filter(|d| d.granted).count();
        assert_eq!(granted, restarts.len());
        assert_eq!(report.status.restarts_granted as usize, granted);
        assert_eq!(
            report.status.restarts_denied as usize,
            report.decisions.iter().filter(|d| !d.granted).count()
        );

        // Outcome counters reconcile with the decision log.
        let planned = report
            .decisions
            .iter()
            .filter(|d| d.granted && d.reason != RestartReason::CrashReboot)
            .count();
        let reboots = granted - planned;
        let outcome_restarts: u64 = report.outcomes.iter().map(|o| o.restarts).sum();
        let outcome_crashes: u64 = report.outcomes.iter().map(|o| o.crashes).sum();
        assert_eq!(outcome_restarts as usize, planned);
        assert_eq!(outcome_crashes as usize, reboots);

        // Cooldown holds per machine across granted planned restarts.
        for i in 0..scenarios.len() {
            let mut last: Option<f64> = None;
            for d in report
                .decisions
                .iter()
                .filter(|d| d.machine_index == i && d.granted)
            {
                if let Some(prev) = last {
                    assert!(
                        d.reason == RestartReason::CrashReboot || d.time_secs - prev >= 900.0,
                        "machine {i}: planned restart at {} within cooldown of {prev}",
                        d.time_secs
                    );
                }
                last = Some(d.time_secs);
            }
        }

        // Downtime is accounted and availability lands in (0, 1].
        let avail = report.availability(horizon).unwrap();
        assert_eq!(avail.machines, scenarios.len());
        assert_eq!(avail.restarts, outcome_restarts);
        assert!(avail.downtime_secs > 0.0, "restarts cost downtime");
        assert!(avail.mean_availability > 0.5 && avail.mean_availability <= 1.0);
    }

    #[test]
    fn restart_decisions_are_identical_across_shard_counts() {
        let scenarios: Vec<Scenario> = (0..5)
            .map(|i| Scenario::tiny_aging(600 + i, 192.0))
            .collect();
        let run = |shards: usize| {
            let mut cfg = fleet_config(8.0 * 3600.0);
            cfg.shards = shards;
            cfg.rejuv = Some(rejuv_config(RejuvPolicy::AlarmTriggered));
            FleetSupervisor::new(cfg).unwrap().run(&scenarios).unwrap()
        };
        let a = run(1);
        let b = run(3);
        let c = run(5);
        assert!(!a.decisions.is_empty());
        assert_eq!(a.decisions, b.decisions, "1 vs 3 shards");
        assert_eq!(a.decisions, c.decisions, "1 vs 5 shards");
        assert_eq!(a.events, b.events);
        assert_eq!(a.events, c.events);
        assert_eq!(a.outcomes, b.outcomes);
    }

    #[test]
    fn periodic_policy_restarts_on_schedule_without_alarms() {
        // Healthy fleet: no alarms, so every restart is the cron-style
        // schedule acting alone.
        let scenarios: Vec<Scenario> = (0..3).map(|i| Scenario::tiny_aging(9 + i, 0.0)).collect();
        let horizon = 2.0 * 3600.0;
        let mut cfg = fleet_config(horizon);
        cfg.rejuv = Some(rejuv_config(RejuvPolicy::Periodic {
            period_secs: 3600.0,
        }));
        let report = FleetSupervisor::new(cfg).unwrap().run(&scenarios).unwrap();
        for o in &report.outcomes {
            assert_eq!(o.crash_time_secs, None, "{} crashed", o.machine);
            assert!(
                o.restarts >= 1,
                "{}: periodic policy never restarted it",
                o.machine
            );
            assert!(o.downtime_secs > 0.0);
        }
        for d in &report.decisions {
            assert_eq!(d.reason, RestartReason::Periodic);
        }
        assert_eq!(report.machine_alarms().count(), 0);
    }

    #[test]
    fn none_policy_on_a_healthy_fleet_matches_the_open_loop() {
        let scenarios: Vec<Scenario> = (0..3).map(|i| Scenario::tiny_aging(21 + i, 0.0)).collect();
        let run = |rejuv: Option<RejuvConfig>| {
            let mut cfg = fleet_config(2.0 * 3600.0);
            cfg.rejuv = rejuv;
            FleetSupervisor::new(cfg).unwrap().run(&scenarios).unwrap()
        };
        let open = run(None);
        let noop = run(Some(rejuv_config(RejuvPolicy::None)));
        // No crash, no alarm, no restart: the closed loop in `none` mode
        // is byte-for-byte the open loop.
        assert_eq!(open.events, noop.events);
        assert!(noop.decisions.is_empty());
        for (a, b) in open.outcomes.iter().zip(&noop.outcomes) {
            assert_eq!(a.restarts, b.restarts);
            assert_eq!(a.samples, b.samples);
            assert_eq!(b.downtime_secs, 0.0);
        }
    }

    #[test]
    fn store_backed_closed_loop_round_trips_restart_events() {
        let scenarios: Vec<Scenario> = (0..3)
            .map(|i| Scenario::tiny_aging(700 + i, 192.0))
            .collect();
        let dir = TempDir::new("rejuv-roundtrip");
        let store_cfg = aging_store::StoreConfig::new(&dir.0);
        let mut cfg = fleet_config(8.0 * 3600.0);
        cfg.store = Some(store_cfg.clone());
        cfg.rejuv = Some(rejuv_config(RejuvPolicy::AlarmTriggered));
        let report = FleetSupervisor::new(cfg).unwrap().run(&scenarios).unwrap();
        assert!(
            report.restart_events().count() > 0,
            "restart actions must be journaled"
        );
        // acked ⇒ durable holds for restart actions too: recovery
        // replays the identical history, restart events included.
        let recovered = FleetSupervisor::recover_events(&store_cfg).unwrap();
        assert_eq!(recovered, report.events);
    }
}
