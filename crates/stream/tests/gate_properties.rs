//! Property tests for the [`SampleGate`] invariants the chaos harness
//! leans on: whatever defect mix arrives,
//!
//! 1. counters reconcile **exactly** —
//!    `ingested == accepted + dropped_non_finite + dropped_out_of_order`;
//! 2. accepted timestamps are strictly increasing;
//! 3. every accepted sample whose distance to the previous accepted one
//!    exceeds `max_gap_factor × nominal_period_secs` triggers exactly one
//!    detector reset ([`GateAction::AcceptAfterGap`]) — no more, no fewer;
//! 4. with quarantine armed, exactly the drop runs reaching
//!    `quarantine_after` force a reset on recovery.

use aging_stream::{GateAction, GateConfig, SampleGate, StreamSample};
use proptest::prelude::*;

const NOMINAL: f64 = 30.0;

/// One generated feed event, decoded from parallel `(kind, step, value)`
/// vectors (the vendored proptest has no tuple strategies).
#[derive(Debug, Clone, Copy)]
enum Defect {
    /// Clock advances normally, finite value.
    Clean,
    /// Clock advances normally, NaN value.
    NanValue,
    /// Stale timestamp at (or before) an already-seen time.
    Stale,
    /// Clock jumps far beyond the gap threshold.
    LongGap,
    /// Non-finite timestamp.
    NanClock,
}

fn decode(kind: usize) -> Defect {
    match kind {
        0..=2 => Defect::Clean, // keep the stream mostly healthy
        3 => Defect::NanValue,
        4 => Defect::Stale,
        5 => Defect::LongGap,
        _ => Defect::NanClock,
    }
}

/// Builds the raw sample stream from the generated vectors.
fn build_stream(kinds: &[usize], steps: &[f64], values: &[f64]) -> Vec<StreamSample> {
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(kinds.len());
    for ((&kind, &step), &value) in kinds.iter().zip(steps).zip(values) {
        // Normal advances stay below the gap threshold (factor 4).
        let (time_secs, value) = match decode(kind) {
            Defect::Clean => {
                t += step * NOMINAL;
                (t, value)
            }
            Defect::NanValue => {
                t += step * NOMINAL;
                (t, f64::NAN)
            }
            Defect::Stale => (t - 0.5 * step * NOMINAL, value),
            Defect::LongGap => {
                t += (4.0 + step) * NOMINAL;
                (t, value)
            }
            Defect::NanClock => (f64::NAN, value),
        };
        out.push(StreamSample { time_secs, value });
    }
    out
}

proptest! {
    /// Invariants 1–3, against an independently-tracked oracle.
    #[test]
    fn gate_counters_reconcile_and_accepts_are_ordered(
        kinds in prop::collection::vec(0usize..7, 20..=300),
        steps in prop::collection::vec(0.05f64..3.0, 300..=300),
        values in prop::collection::vec(-1e9f64..1e9, 300..=300),
    ) {
        let config = GateConfig {
            nominal_period_secs: NOMINAL,
            max_gap_factor: 4.0,
            quarantine_after: 0,
        };
        let mut gate = SampleGate::new(config).unwrap();
        let mut accepted_times: Vec<f64> = Vec::new();
        let (mut exp_nonfinite, mut exp_ooo, mut exp_gaps) = (0u64, 0u64, 0u64);

        for raw in build_stream(&kinds, &steps, &values) {
            // The oracle classifies independently of the gate's counters.
            let last = accepted_times.last().copied();
            let action = gate.push(raw);
            if !raw.value.is_finite() || !raw.time_secs.is_finite() {
                exp_nonfinite += 1;
                prop_assert!(matches!(action, GateAction::DropNonFinite));
            } else if last.is_some_and(|l| raw.time_secs <= l) {
                exp_ooo += 1;
                prop_assert!(matches!(action, GateAction::DropOutOfOrder));
            } else {
                let long_gap =
                    last.is_some_and(|l| raw.time_secs - l > 4.0 * NOMINAL);
                if long_gap {
                    exp_gaps += 1;
                    // Invariant 3: a long gap resets, exactly once, on
                    // exactly this sample.
                    prop_assert!(matches!(action, GateAction::AcceptAfterGap(_)));
                } else {
                    prop_assert!(matches!(action, GateAction::Accept(_)));
                }
                accepted_times.push(raw.time_secs);
            }
        }

        // Invariant 2: strictly increasing accepted clock.
        prop_assert!(accepted_times.windows(2).all(|w| w[1] > w[0]));

        // Invariant 1: exact reconciliation, field by field.
        let c = *gate.counters();
        prop_assert_eq!(c.ingested, kinds.len() as u64);
        prop_assert_eq!(c.accepted, accepted_times.len() as u64);
        prop_assert_eq!(c.dropped_non_finite, exp_nonfinite);
        prop_assert_eq!(c.dropped_out_of_order, exp_ooo);
        prop_assert_eq!(c.gaps_detected, exp_gaps);
        prop_assert_eq!(
            c.ingested,
            c.accepted + c.dropped_non_finite + c.dropped_out_of_order
        );
        prop_assert_eq!(c.quarantines, 0);
    }

    /// Invariant 4: exactly the drop runs reaching `quarantine_after`
    /// quarantine the stream, and recovery is a reset-accept.
    #[test]
    fn quarantine_fires_per_qualifying_drop_run(
        quarantine_after in 1u64..=4,
        runs in prop::collection::vec(0usize..7, 1..=60),
    ) {
        let config = GateConfig {
            nominal_period_secs: NOMINAL,
            // Gaps disabled: drop runs advance the clock, and this
            // property must see quarantine resets, not gap resets.
            max_gap_factor: 1e12,
            quarantine_after,
        };
        let mut gate = SampleGate::new(config).unwrap();
        let mut t = 0.0f64;
        let mut expected_quarantines = 0u64;
        for &run in &runs {
            for _ in 0..run {
                t += NOMINAL;
                let action = gate.push(StreamSample { time_secs: t, value: f64::NAN });
                prop_assert!(matches!(action, GateAction::DropNonFinite));
            }
            t += NOMINAL;
            let action = gate.push(StreamSample { time_secs: t, value: 1.0 });
            if run as u64 >= quarantine_after {
                expected_quarantines += 1;
                prop_assert!(
                    matches!(action, GateAction::AcceptAfterGap(_)),
                    "run of {} drops with quarantine_after {} must reset",
                    run,
                    quarantine_after
                );
            } else {
                prop_assert!(matches!(action, GateAction::Accept(_)));
            }
        }
        prop_assert_eq!(gate.counters().quarantines, expected_quarantines);
        prop_assert_eq!(
            gate.counters().ingested,
            gate.counters().accepted + gate.counters().dropped_non_finite
        );
    }
}
