//! Parallel/sequential parity: every `*_in` entry point must produce
//! bit-identical results for any pool size. These properties back the
//! determinism contract documented in `aging-par` (see DESIGN.md) — the
//! chunked scheduler merges results in input order and never reorders a
//! floating-point reduction, so equality here is exact (`to_bits`), not
//! approximate.

use aging_fractal::generate;
use aging_fractal::holder::{
    holder_trace_in, HolderEstimator, IncrementConfig, LeaderConfig, OscillationConfig,
};
use aging_fractal::spectrum::{mfdfa, MfdfaConfig};
use aging_fractal::surrogate::surrogate_test_in;
use aging_fractal::wtmm::{wtmm_in, WtmmConfig};
use aging_par::Pool;
use aging_wavelet::cwt::{cwt_in, CwtWavelet};
use proptest::prelude::*;

/// Pool sizes exercised against the sequential reference: single worker,
/// the common small case, and a count that never divides chunk counts
/// evenly.
const POOL_SIZES: [usize; 3] = [1, 2, 7];

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at {i}: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn holder_trace_parity_increment(seed in 0u64..500, hurst in 0.2f64..0.85) {
        let x = generate::fbm(700, hurst, seed).unwrap();
        let est = HolderEstimator::LocalIncrement(IncrementConfig::default());
        let reference = holder_trace_in(&x, &est, &Pool::sequential()).unwrap();
        for threads in POOL_SIZES {
            let par = holder_trace_in(&x, &est, &Pool::new(threads)).unwrap();
            assert_bits_eq(&reference, &par, &format!("increment trace, {threads} threads"));
        }
    }

    #[test]
    fn holder_trace_parity_oscillation(seed in 0u64..500, hurst in 0.2f64..0.85) {
        let x = generate::fbm(600, hurst, seed).unwrap();
        let est = HolderEstimator::Oscillation(OscillationConfig::default());
        let reference = holder_trace_in(&x, &est, &Pool::sequential()).unwrap();
        for threads in POOL_SIZES {
            let par = holder_trace_in(&x, &est, &Pool::new(threads)).unwrap();
            assert_bits_eq(&reference, &par, &format!("oscillation trace, {threads} threads"));
        }
    }

    #[test]
    fn holder_trace_parity_leaders(seed in 0u64..500, hurst in 0.2f64..0.85) {
        let x = generate::fbm(512, hurst, seed).unwrap();
        let est = HolderEstimator::WaveletLeader(LeaderConfig::default());
        let reference = holder_trace_in(&x, &est, &Pool::sequential()).unwrap();
        for threads in POOL_SIZES {
            let par = holder_trace_in(&x, &est, &Pool::new(threads)).unwrap();
            assert_bits_eq(&reference, &par, &format!("leader trace, {threads} threads"));
        }
    }

    #[test]
    fn cwt_parity(seed in 0u64..500, hurst in 0.2f64..0.85) {
        let x = generate::fbm(512, hurst, seed).unwrap();
        let scales = [2.0, 4.0, 8.0, 16.0, 32.0];
        let reference = cwt_in(&x, CwtWavelet::MexicanHat, &scales, &Pool::sequential()).unwrap();
        for threads in POOL_SIZES {
            let par = cwt_in(&x, CwtWavelet::MexicanHat, &scales, &Pool::new(threads)).unwrap();
            prop_assert_eq!(par.scales(), reference.scales());
            for (si, (a, b)) in reference.rows().iter().zip(par.rows()).enumerate() {
                assert_bits_eq(a, b, &format!("cwt row {si}, {threads} threads"));
            }
        }
    }

    #[test]
    fn wtmm_parity(seed in 0u64..500, hurst in 0.3f64..0.8) {
        let x = generate::fbm(1024, hurst, seed).unwrap();
        let config = WtmmConfig::default();
        let reference = wtmm_in(&x, &config, &Pool::sequential()).unwrap();
        for threads in POOL_SIZES {
            let par = wtmm_in(&x, &config, &Pool::new(threads)).unwrap();
            prop_assert_eq!(&par.maxima_counts, &reference.maxima_counts);
            assert_bits_eq(
                &reference.tau.exponents,
                &par.tau.exponents,
                &format!("wtmm tau, {threads} threads"),
            );
        }
    }

    #[test]
    fn surrogate_test_parity(seed in 0u64..500) {
        let x = generate::fgn(256, 0.6, seed).unwrap();
        let stat = |d: &[f64]| aging_timeseries::stats::variance(d);
        let reference = surrogate_test_in(&x, 8, seed, stat, &Pool::sequential()).unwrap();
        for threads in POOL_SIZES {
            let par = surrogate_test_in(&x, 8, seed, stat, &Pool::new(threads)).unwrap();
            prop_assert_eq!(par.observed.to_bits(), reference.observed.to_bits());
            prop_assert_eq!(par.p_value.to_bits(), reference.p_value.to_bits());
            assert_bits_eq(
                &reference.surrogate_values,
                &par.surrogate_values,
                &format!("surrogate values, {threads} threads"),
            );
        }
    }
}

/// One non-property smoke check with a real multifractality statistic, so
/// parity is also exercised through a nested analysis pipeline.
#[test]
fn surrogate_parity_with_mfdfa_width() {
    let cascade = generate::binomial_cascade(10, 0.3, true, 5).unwrap();
    let width = |d: &[f64]| mfdfa(d, &MfdfaConfig::default()).map(|r| r.width());
    let reference = surrogate_test_in(&cascade, 6, 42, width, &Pool::sequential()).unwrap();
    for threads in POOL_SIZES {
        let par = surrogate_test_in(&cascade, 6, 42, width, &Pool::new(threads)).unwrap();
        assert_bits_eq(
            &reference.surrogate_values,
            &par.surrogate_values,
            &format!("mfdfa width surrogates, {threads} threads"),
        );
        assert_eq!(par.p_value.to_bits(), reference.p_value.to_bits());
    }
}
