//! The E15 hard gate, test-sized: a store-backed server killed at
//! randomized points mid-ingestion and recovered from its snapshot +
//! journal must produce an alarm history **byte-identical** (under the
//! canonical event codec) to an uninterrupted offline
//! [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor) run of
//! the same scenarios.
//!
//! The crash model is `Server::abort` — sessions stop without acking
//! buffered batches, finishing feeds, or draining — followed by a fresh
//! `Server::bind` on the same store directory. The driver plays the
//! at-least-once client: it retains every sent batch and, after a crash,
//! re-sends exactly the batches whose acks it never saw
//! ([`ServeClient::unacked_seqs`]); the per-machine sample gates dedup
//! whatever was in fact journaled before the kill.
//!
//! Kill points are drawn from a seed-keyed xorshift, so every run of
//! this file exercises the same schedule and a failure reproduces.
//!
//! ci.sh runs this file under `AGING_THREADS=1` and `=4`.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::path::PathBuf;

use aging_core::baseline::TrendPredictorConfig;
use aging_memsim::{Counter, Scenario};
use aging_serve::protocol::{counter_code, encode_events, Record, ServeEvent};
use aging_serve::{ServeClient, ServeConfig, Server};
use aging_store::StoreConfig;
use aging_stream::detector::DetectorSpec;
use aging_stream::source::{MachineSource, SampleSource};
use aging_stream::supervisor::{CounterDetector, FleetConfig, FleetSupervisor};
use aging_stream::GateConfig;

const BATCH_RECORDS: usize = 16;
const KILLS_PER_RUN: usize = 3;

fn fleet_config() -> FleetConfig {
    let detectors = vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(5.0)
        }),
    }];
    let mut cfg = FleetConfig::new(detectors, 8.0 * 3600.0);
    cfg.gate = GateConfig {
        nominal_period_secs: 5.0,
        ..GateConfig::default()
    };
    cfg
}

fn scenarios(seed: u64) -> Vec<Scenario> {
    let mut out: Vec<Scenario> = (0..2)
        .map(|i| Scenario::tiny_aging(seed + i, 192.0))
        .collect();
    out.push(Scenario::tiny_aging(seed + 2, 0.0)); // healthy control
    out
}

/// Offline events in the server's address space (machine id = scenario
/// index).
fn offline_events(cfg: &FleetConfig, fleet: &[Scenario]) -> Vec<ServeEvent> {
    let report = FleetSupervisor::new(cfg.clone())
        .expect("offline supervisor")
        .run(fleet)
        .expect("offline run");
    report
        .events
        .iter()
        .map(|e| ServeEvent {
            machine_id: e.machine_index as u64,
            time_secs: e.time_secs,
            level: e.level,
            kind: e.kind,
        })
        .collect()
}

/// The full record sequence, round-robin across machines by sample
/// index (preserving each machine's time order), chunked into batches.
fn build_batches(fleet: &[Scenario], horizon_secs: f64) -> Vec<Vec<Record>> {
    let code = counter_code(Counter::AvailableBytes);
    let traces: Vec<Vec<Record>> = fleet
        .iter()
        .enumerate()
        .map(|(m, scenario)| {
            let mut source = MachineSource::new(scenario, Counter::AvailableBytes, horizon_secs)
                .expect("source");
            let mut out = Vec::new();
            while let Some(s) = source.next_sample().expect("infallible source") {
                out.push(Record {
                    machine_id: m as u64,
                    counter: code,
                    time_secs: s.time_secs,
                    value: s.value,
                });
            }
            out
        })
        .collect();
    let longest = traces.iter().map(Vec::len).max().unwrap_or(0);
    let mut records = Vec::new();
    for i in 0..longest {
        for trace in &traces {
            if let Some(rec) = trace.get(i) {
                records.push(*rec);
            }
        }
    }
    records
        .chunks(BATCH_RECORDS)
        .map(<[Record]>::to_vec)
        .collect()
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// `count` distinct kill points (batch indices), seed-deterministic.
fn kill_points(seed: u64, batches: usize, count: usize) -> VecDeque<usize> {
    let mut state = seed | 1;
    let mut points = BTreeSet::new();
    while points.len() < count.min(batches.saturating_sub(1)) {
        points.insert(1 + (xorshift(&mut state) as usize) % (batches - 1));
    }
    points.into_iter().collect()
}

/// A store directory wiped on create and drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("aging-killrec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn store_config(dir: &TempDir) -> StoreConfig {
    StoreConfig {
        // Small cadence so every crash run crosses several snapshots and
        // recovery exercises the snapshot + journal-suffix path.
        snapshot_every_entries: 24,
        ..StoreConfig::new(&dir.0)
    }
}

fn bind_store_server(cfg: &FleetConfig, machines: u64, dir: &TempDir) -> Server {
    let mut serve_cfg = ServeConfig::from_fleet(cfg);
    serve_cfg.expected_machines = Some(machines);
    serve_cfg.store = Some(store_config(dir));
    Server::bind("127.0.0.1:0", serve_cfg).expect("bind store-backed server")
}

/// Feeds the fleet through a store-backed server, killing and recovering
/// it at each kill point, and returns the final drained history.
fn crash_run(cfg: &FleetConfig, fleet: &[Scenario], seed: u64, dir: &TempDir) -> Vec<ServeEvent> {
    let batches = build_batches(fleet, cfg.horizon_secs);
    let mut kills = kill_points(seed, batches.len(), KILLS_PER_RUN);
    let mut cursor = 0usize;
    let mut carry: Vec<Vec<Record>> = Vec::new();
    let mut restarts = 0u32;

    loop {
        let server = bind_store_server(cfg, fleet.len() as u64, dir);
        let mut client = ServeClient::connect(server.local_addr(), "killrec").expect("connect");
        let mut sent: HashMap<u64, Vec<Record>> = HashMap::new();

        // At-least-once redelivery: batches unacked at the last crash go
        // out first, in their original order. The gates dedup any that
        // were journaled before the kill.
        for batch in carry.drain(..) {
            let seq = client.send_batch(&batch).expect("resend batch");
            sent.insert(seq, batch);
        }

        let mut killed = false;
        while cursor < batches.len() {
            if kills.front() == Some(&cursor) {
                kills.pop_front();
                killed = true;
                break;
            }
            let batch = batches[cursor].clone();
            let seq = client.send_batch(&batch).expect("send batch");
            sent.insert(seq, batch);
            cursor += 1;
        }

        if killed {
            server.abort();
            restarts += 1;
            carry = client
                .unacked_seqs()
                .into_iter()
                .filter_map(|seq| sent.remove(&seq))
                .collect();
            continue;
        }

        for m in 0..fleet.len() {
            client.machine_done(m as u64).expect("machine done");
        }
        let _ = client.bye().expect("bye");
        let outcome = server.shutdown();
        assert_eq!(restarts as usize, KILLS_PER_RUN, "every kill point fired");
        assert_eq!(outcome.wire.session_panics, 0, "server must not panic");
        let persist = outcome.persist.expect("store-backed report has stats");
        assert!(
            persist.entries_journaled >= batches.len() as u64,
            "every batch must have hit the journal (saw {})",
            persist.entries_journaled
        );
        return outcome.events;
    }
}

#[test]
fn killed_and_recovered_server_matches_offline_supervisor() {
    for seed in [0x00c0_ffee_u64, 42, 7, 0xdead_beef] {
        let cfg = fleet_config();
        let fleet = scenarios(seed);
        let offline = offline_events(&cfg, &fleet);
        assert!(
            !offline.is_empty(),
            "seed {seed:#x}: expected alarms from leaky machines"
        );
        let dir = TempDir::new(&format!("diff-{seed:x}"));
        let online = crash_run(&cfg, &fleet, seed, &dir);
        assert_eq!(
            encode_events(&offline),
            encode_events(&online),
            "seed {seed:#x}: kill-and-recover alarm history diverged from the offline \
             supervisor (offline {} events, online {})",
            offline.len(),
            online.len()
        );
    }
}

/// Satellite: a client that never saw its ack re-sends an already
/// journaled batch after recovery. The duplicate must be deduped by the
/// gates — the recovered history stays byte-identical to the offline
/// run even though the wire saw the records twice.
#[test]
fn duplicate_redelivery_after_crash_is_deduped() {
    let seed = 0x0ddba11_u64;
    let cfg = fleet_config();
    let fleet = vec![Scenario::tiny_aging(seed, 192.0)];
    let offline = offline_events(&cfg, &fleet);
    assert!(
        !offline.is_empty(),
        "expected alarms from the leaky machine"
    );

    let batches = build_batches(&fleet, cfg.horizon_secs);
    let split = batches.len() / 2;
    let dir = TempDir::new("dup");

    // Incarnation 1: feed the first half and *flush*, so the final batch
    // is acked — by the acked⇒durable contract it is in the journal.
    let server = bind_store_server(&cfg, 1, &dir);
    let mut client = ServeClient::connect(server.local_addr(), "dup-a").expect("connect");
    for batch in &batches[..split] {
        client.send_batch(batch).expect("send batch");
    }
    client.flush().expect("flush");
    server.abort(); // crash after the ack was delivered

    // Incarnation 2: the client missed the ack bookkeeping and replays
    // the last acked batch before continuing.
    let server = bind_store_server(&cfg, 1, &dir);
    let mut client = ServeClient::connect(server.local_addr(), "dup-b").expect("connect");
    client
        .send_batch(&batches[split - 1])
        .expect("redeliver duplicate");
    for batch in &batches[split..] {
        client.send_batch(batch).expect("send batch");
    }
    client.machine_done(0).expect("machine done");
    let _ = client.bye().expect("bye");
    let outcome = server.shutdown();

    let total_records: usize = batches.iter().map(Vec::len).sum();
    assert!(
        outcome.wire.records as usize >= total_records + batches[split - 1].len(),
        "wire must have counted the duplicate delivery"
    );
    assert_eq!(
        encode_events(&offline),
        encode_events(&outcome.events),
        "duplicate redelivery leaked into the recovered alarm history"
    );
}
