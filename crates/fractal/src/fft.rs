//! A minimal radix-2 complex FFT.
//!
//! Used internally by the Davies–Harte fractional-Gaussian-noise generator
//! and by the periodogram Hurst estimator. Only power-of-two lengths are
//! supported — callers pad or truncate.

use aging_timeseries::{Error, Result};

/// A complex number as a plain value pair (real, imaginary).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Squared magnitude.
    pub fn norm_sqr(&self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(&self) -> Self {
        Complex::new(self.re, -self.im)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

/// In-place forward DFT (`X_k = Σ_t x_t e^{−2πi tk/n}`), radix-2
/// Cooley–Tukey.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when the length is not a power of
/// two (or is zero).
pub fn fft(data: &mut [Complex]) -> Result<()> {
    transform(data, false)
}

/// In-place inverse DFT including the `1/n` normalisation.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when the length is not a power of
/// two (or is zero).
pub fn ifft(data: &mut [Complex]) -> Result<()> {
    transform(data, true)?;
    let n = data.len() as f64;
    for v in data.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<()> {
    let n = data.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(Error::invalid(
            "data",
            format!("FFT length must be a power of two, got {n}"),
        ));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Periodogram of a real signal: `I(f_k) = |X_k|² / n` for
/// `k = 1 .. n/2 − 1` (DC and Nyquist excluded), where the input is
/// zero-padded to the next power of two. Returns `(frequency, power)`
/// pairs with frequency in cycles/sample.
///
/// # Errors
///
/// Returns [`Error::TooShort`] for fewer than 4 samples and
/// [`Error::NonFinite`] for NaN input.
pub fn periodogram(signal: &[f64]) -> Result<Vec<(f64, f64)>> {
    Error::require_len(signal, 4)?;
    Error::require_finite(signal)?;
    let n = signal.len().next_power_of_two();
    let mut buf: Vec<Complex> = signal
        .iter()
        .map(|&v| Complex::new(v, 0.0))
        .chain(std::iter::repeat(Complex::default()))
        .take(n)
        .collect();
    fft(&mut buf)?;
    let effective = signal.len() as f64;
    Ok((1..n / 2)
        .map(|k| {
            let f = k as f64 / n as f64;
            (f, buf[k].norm_sqr() / effective)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a.re - b.re).abs() < tol && (a.im - b.im).abs() < tol,
            "{a:?} vs {b:?}"
        );
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut d = vec![Complex::default(); 8];
        d[0] = Complex::new(1.0, 0.0);
        fft(&mut d).unwrap();
        for v in d {
            assert_close(v, Complex::new(1.0, 0.0), 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut d = vec![Complex::new(2.0, 0.0); 8];
        fft(&mut d).unwrap();
        assert_close(d[0], Complex::new(16.0, 0.0), 1e-12);
        for v in &d[1..] {
            assert!(v.norm_sqr() < 1e-20);
        }
    }

    #[test]
    fn fft_matches_dft_definition() {
        // Compare against the O(n²) DFT on a small random-ish vector.
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new(((i * 7 + 3) % 5) as f64, ((i * 3) % 4) as f64))
            .collect();
        let mut fast = x.clone();
        fft(&mut fast).unwrap();
        for k in 0..16 {
            let mut acc = Complex::default();
            for (t, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (t * k) as f64 / 16.0;
                acc = acc + v * Complex::new(ang.cos(), ang.sin());
            }
            assert_close(fast[k], acc, 1e-9);
        }
    }

    #[test]
    fn fft_ifft_round_trip() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut buf = x.clone();
        fft(&mut buf).unwrap();
        ifft(&mut buf).unwrap();
        for (a, b) in x.iter().zip(&buf) {
            assert_close(*a, *b, 1e-10);
        }
    }

    #[test]
    fn fft_parseval() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let mut buf = x;
        fft(&mut buf).unwrap();
        let freq_energy: f64 = buf.iter().map(|v| v.norm_sqr()).sum::<f64>() / 32.0;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    fn fft_rejects_non_power_of_two() {
        let mut d = vec![Complex::default(); 12];
        assert!(fft(&mut d).is_err());
        let mut e: Vec<Complex> = vec![];
        assert!(fft(&mut e).is_err());
    }

    #[test]
    fn periodogram_peaks_at_signal_frequency() {
        // Pure tone at 8 cycles / 128 samples = 1/16 cycles per sample.
        let n = 128;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * 8.0 * i as f64 / n as f64).sin())
            .collect();
        let p = periodogram(&signal).unwrap();
        let (best_f, _) = p
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((best_f - 8.0 / 128.0).abs() < 1e-9);
    }

    #[test]
    fn periodogram_guards() {
        assert!(periodogram(&[1.0, 2.0]).is_err());
        assert!(periodogram(&[1.0, f64::NAN, 2.0, 3.0]).is_err());
    }

    #[test]
    fn complex_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert_eq!(a.norm_sqr(), 5.0);
    }
}
