//! Differential wire-fault suite: a damaged client and a healthy client
//! share one server; every fault class must (a) never panic the server,
//! (b) quarantine exactly the damaged client, and (c) leave the healthy
//! client's feed fully acked.

use std::io::Write;
use std::net::{Shutdown, TcpStream};

use aging_chaos::wire::{WireChaos, WireFault, WirePlan, WriteOp};
use aging_memsim::Counter;
use aging_serve::protocol::{counter_code, encode_frame, Frame, Record, PROTOCOL_VERSION};
use aging_serve::{ServeClient, ServeConfig, Server};

/// Frames a typical feeder connection would send for machine 1.
fn damaged_client_frames() -> Vec<Vec<u8>> {
    let records = |base: usize| -> Vec<Record> {
        (0..8)
            .map(|i| Record {
                machine_id: 1,
                counter: counter_code(Counter::AvailableBytes),
                time_secs: ((base + i) as f64) * 5.0,
                value: 1_000_000.0 - (base + i) as f64,
            })
            .collect()
    };
    vec![
        encode_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
            name: "chaos".into(),
        }),
        encode_frame(&Frame::Batch {
            seq: 1,
            records: records(0),
        }),
        encode_frame(&Frame::Batch {
            seq: 2,
            records: records(8),
        }),
        encode_frame(&Frame::Bye),
    ]
}

/// Writes the frame sequence through the fault rewriter, tolerating
/// write errors (the server may already have cut the connection).
fn run_damaged_client(addr: std::net::SocketAddr, plan: &WirePlan) {
    let mut stream = TcpStream::connect(addr).expect("connect damaged client");
    stream.set_nodelay(true).expect("nodelay");
    let mut chaos = WireChaos::new(plan);
    let mut ops = Vec::new();
    for frame in damaged_client_frames() {
        chaos.apply(&frame, &mut ops);
    }
    for op in ops {
        match op {
            WriteOp::Data(bytes) => {
                if stream.write_all(&bytes).is_err() {
                    return; // server already quarantined us
                }
            }
            WriteOp::Disconnect => {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
    // Linger briefly so the server reads our tail before we vanish.
    std::thread::sleep(std::time::Duration::from_millis(50));
}

/// Drives a healthy windowed client for machine 0; every record must be
/// accepted regardless of what the damaged peer does.
fn run_healthy_client(addr: std::net::SocketAddr) {
    let mut client = ServeClient::connect(addr, "healthy").expect("healthy connect");
    let records: Vec<Record> = (0..60)
        .map(|i| Record {
            machine_id: 0,
            counter: counter_code(Counter::AvailableBytes),
            time_secs: i as f64 * 5.0,
            value: 2_000_000.0 - i as f64 * 10.0,
        })
        .collect();
    for chunk in records.chunks(10) {
        client.send_batch(chunk).expect("healthy batch");
    }
    client.machine_done(0).expect("healthy done");
    client.flush().expect("healthy flush");
    assert_eq!(
        client.records_accepted(),
        60,
        "healthy records must all land"
    );
    client.bye().expect("healthy bye");
}

struct Expect {
    quarantined: u64,
    corrupt_streams: u64,
}

fn run_case(name: &str, plan: WirePlan, expect: &Expect) {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig::new(aging_serve::test_detectors()),
    )
    .expect("bind");
    let addr = server.local_addr();
    std::thread::scope(|scope| {
        let damaged = scope.spawn(|| run_damaged_client(addr, &plan));
        let healthy = scope.spawn(|| run_healthy_client(addr));
        damaged.join().expect("damaged client thread");
        healthy.join().expect("healthy client thread");
    });
    // Let the server-side sessions observe EOFs before draining.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let report = server.shutdown();
    assert_eq!(
        report.wire.session_panics, 0,
        "{name}: server must never panic"
    );
    assert_eq!(
        report.wire.quarantined, expect.quarantined,
        "{name}: exactly the damaged client is quarantined (wire: {:?})",
        report.wire
    );
    assert_eq!(
        report.wire.corrupt_streams, expect.corrupt_streams,
        "{name}: corrupt-stream accounting (wire: {:?})",
        report.wire
    );
    // The healthy machine's pipeline saw its full feed either way.
    let healthy = report
        .machines
        .iter()
        .find(|m| m.machine_id == 0)
        .expect("healthy machine tracked");
    assert!(healthy.finished, "{name}: healthy feed ran to completion");
}

#[test]
fn clean_run_quarantines_nobody() {
    for seed in [11u64, 0x00c0_ffee] {
        run_case(
            "clean",
            WirePlan::new(seed),
            &Expect {
                quarantined: 0,
                corrupt_streams: 0,
            },
        );
    }
}

#[test]
fn split_writes_are_semantically_invisible() {
    for seed in [11u64, 0x00c0_ffee] {
        run_case(
            "split-writes",
            WirePlan::new(seed).with(WireFault::SplitWrites { chunk: 3 }),
            &Expect {
                quarantined: 0,
                corrupt_streams: 0,
            },
        );
    }
}

#[test]
fn truncated_frame_quarantines_only_the_damaged_client() {
    for seed in [11u64, 0x00c0_ffee] {
        run_case(
            "truncate",
            WirePlan::new(seed).with(WireFault::Truncate {
                frame: 2,
                keep_bytes: 10,
            }),
            &Expect {
                quarantined: 1,
                corrupt_streams: 1,
            },
        );
    }
}

#[test]
fn corrupted_bit_quarantines_only_the_damaged_client() {
    for seed in [11u64, 0x00c0_ffee, 7, 1234, 0xdead_beef] {
        run_case(
            "corrupt-bit",
            WirePlan::new(seed).with(WireFault::CorruptBit { frame: 1 }),
            &Expect {
                quarantined: 1,
                corrupt_streams: 1,
            },
        );
    }
}

#[test]
fn boundary_disconnect_is_a_clean_close() {
    for seed in [11u64, 0x00c0_ffee] {
        run_case(
            "disconnect-after",
            WirePlan::new(seed).with(WireFault::DisconnectAfter { frames: 2 }),
            &Expect {
                quarantined: 0,
                corrupt_streams: 0,
            },
        );
    }
}
