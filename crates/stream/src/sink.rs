//! The unified ingestion surface: one [`IngestSink`] trait over every
//! way samples enter the detection pipelines.
//!
//! Three very different components accept the same logical feed — a
//! stream of `(machine, counter, time, value)` samples, now also
//! batchable as columns (one machine/counter, parallel time/value
//! slices):
//!
//! * the `aging-serve` ingestion engine (samples arrive over TCP),
//! * a [`FleetSink`] — the offline supervisor's pipelines fed manually
//!   instead of from simulated machines it steps itself, and
//! * `aging-serve`'s `ServeClient` (samples *leave* through it, toward a
//!   remote engine).
//!
//! `IngestSink` abstracts over all three so loadgen-style feeders,
//! differential tests and replay tools can target any of them without
//! caring whether the samples cross a socket. The column method defaults
//! to a per-record loop, so implementing the record method alone is
//! always correct; implementations with a real columnar fast path (the
//! serve engine, the wire client) override it.

use std::collections::BTreeMap;

use aging_core::fusion::FusionRule;
use aging_memsim::Counter;
use aging_timeseries::{Error, Result};

use crate::gate::GateConfig;
use crate::pipeline::{CounterDetector, MachinePipeline, PipelineEvent};
use crate::supervisor::{AlarmEvent, FleetConfig};

/// A destination for `(machine, counter, time, value)` sample feeds.
///
/// The two methods describe the same logical stream at two granularities:
/// [`ingest_column`](IngestSink::ingest_column) must be equivalent to
/// calling [`ingest_record`](IngestSink::ingest_record) once per
/// `(times[k], values[k])` pair in order — implementations may restructure
/// the work (batch frames, slice kernels) but not the semantics.
pub trait IngestSink {
    /// The sink's failure type (I/O for wire sinks, validation for
    /// in-process ones).
    type Error;

    /// Feeds one sample of `counter` on machine `machine_id`.
    ///
    /// # Errors
    ///
    /// Implementation-defined; a failed record may leave earlier records
    /// applied.
    fn ingest_record(
        &mut self,
        machine_id: u64,
        counter: Counter,
        time_secs: f64,
        value: f64,
    ) -> std::result::Result<(), Self::Error>;

    /// Feeds one column: `counter` on `machine_id` with parallel
    /// `times`/`values`. Extra elements beyond the shorter slice are
    /// ignored. Defaults to the record loop.
    ///
    /// # Errors
    ///
    /// Same contract as [`IngestSink::ingest_record`]; a failure may
    /// leave a prefix of the column applied.
    fn ingest_column(
        &mut self,
        machine_id: u64,
        counter: Counter,
        times: &[f64],
        values: &[f64],
    ) -> std::result::Result<(), Self::Error> {
        for (&t, &v) in times.iter().zip(values.iter()) {
            self.ingest_record(machine_id, counter, t, v)?;
        }
        Ok(())
    }

    /// Declares machine `machine_id`'s feed complete: its final pending
    /// tick is closed (deferred fusion votes run) and no further samples
    /// are expected. Idempotent.
    ///
    /// # Errors
    ///
    /// Implementation-defined.
    fn machine_done(&mut self, machine_id: u64) -> std::result::Result<(), Self::Error>;
}

struct SinkMachine {
    name: String,
    pipeline: MachinePipeline,
    events: Vec<PipelineEvent>,
}

/// A manually-fed fleet: the same gate → detector → fusion pipelines the
/// [`crate::supervisor::FleetSupervisor`] runs, but with samples pushed
/// in by the caller ([`IngestSink`]) instead of pulled from simulated
/// machines. Pipelines are created lazily per machine id.
///
/// Feed every machine, call
/// [`machine_done`](IngestSink::machine_done) (or let
/// [`into_events`](FleetSink::into_events) finish the stragglers), and
/// the drained history is ordered by `(time, machine, emission)` — the
/// supervisor's release order, so a sink fed the supervisor's exact
/// per-machine sample sequences reproduces its event stream.
pub struct FleetSink {
    detectors: Vec<CounterDetector>,
    fusion: FusionRule,
    gate: GateConfig,
    machines: BTreeMap<u64, SinkMachine>,
}

impl std::fmt::Debug for FleetSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetSink")
            .field("detectors", &self.detectors)
            .field("fusion", &self.fusion)
            .field("machines", &self.machines.len())
            .finish()
    }
}

impl FleetSink {
    /// A sink running `config`'s detectors/fusion/gate per machine.
    /// Horizon, sharding and store settings of the config are ignored —
    /// the caller owns pacing and persistence.
    ///
    /// # Errors
    ///
    /// Propagates [`FleetConfig::validate`] failures.
    pub fn new(config: &FleetConfig) -> Result<Self> {
        config.validate()?;
        Ok(FleetSink {
            detectors: config.detectors.clone(),
            fusion: config.fusion,
            gate: config.gate,
            machines: BTreeMap::new(),
        })
    }

    /// Registers `machine_id` with a display name before its first
    /// sample (otherwise the name defaults to `m<id>:manual`). Re-naming
    /// an existing machine keeps its pipeline state.
    ///
    /// # Errors
    ///
    /// Propagates pipeline construction failures.
    pub fn register(&mut self, machine_id: u64, name: &str) -> Result<()> {
        match self.machines.get_mut(&machine_id) {
            Some(m) => m.name = name.to_string(),
            None => {
                let m = SinkMachine {
                    name: name.to_string(),
                    pipeline: MachinePipeline::new(&self.detectors, self.fusion, self.gate)?,
                    events: Vec::new(),
                };
                self.machines.insert(machine_id, m);
            }
        }
        Ok(())
    }

    fn machine(&mut self, machine_id: u64) -> Result<&mut SinkMachine> {
        if !self.machines.contains_key(&machine_id) {
            let name = format!("m{machine_id:03}:manual");
            self.register(machine_id, &name)?;
        }
        Ok(self.machines.get_mut(&machine_id).expect("just inserted"))
    }

    /// Number of machines seen so far.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Finishes every machine's feed and drains the full event history,
    /// ordered by `(time, machine, emission)` — the watermark-merge
    /// release order of the supervisor and the serve engine.
    pub fn into_events(mut self) -> Vec<AlarmEvent> {
        let ids: Vec<u64> = self.machines.keys().copied().collect();
        for id in ids {
            let _ = IngestSink::machine_done(&mut self, id);
        }
        let mut keyed: Vec<(f64, u64, u64, AlarmEvent)> = Vec::new();
        let mut seq = 0u64;
        for (id, m) in self.machines {
            for pe in m.events {
                seq += 1;
                keyed.push((
                    pe.time_secs,
                    id,
                    seq,
                    AlarmEvent {
                        machine_index: id as usize,
                        machine: m.name.clone(),
                        time_secs: pe.time_secs,
                        level: pe.level,
                        kind: pe.kind,
                    },
                ));
            }
        }
        keyed.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| a.1.cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
        });
        keyed.into_iter().map(|(_, _, _, e)| e).collect()
    }
}

impl IngestSink for FleetSink {
    type Error = Error;

    fn ingest_record(
        &mut self,
        machine_id: u64,
        counter: Counter,
        time_secs: f64,
        value: f64,
    ) -> Result<()> {
        let m = self.machine(machine_id)?;
        let sample = crate::source::StreamSample { time_secs, value };
        let events = &mut m.events;
        m.pipeline.ingest(counter, sample, events);
        Ok(())
    }

    fn ingest_column(
        &mut self,
        machine_id: u64,
        counter: Counter,
        times: &[f64],
        values: &[f64],
    ) -> Result<()> {
        let m = self.machine(machine_id)?;
        let events = &mut m.events;
        m.pipeline.ingest_column(counter, times, values, events);
        Ok(())
    }

    fn machine_done(&mut self, machine_id: u64) -> Result<()> {
        let m = self.machine(machine_id)?;
        let events = &mut m.events;
        m.pipeline.finish(events);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorSpec;
    use aging_core::baseline::TrendPredictorConfig;

    fn config() -> FleetConfig {
        let detectors = vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 64,
                refit_every: 4,
                alarm_horizon_secs: 1e6,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }];
        let mut cfg = FleetConfig::new(detectors, 3600.0);
        cfg.fusion = FusionRule::Any;
        cfg.gate = GateConfig {
            nominal_period_secs: 5.0,
            ..GateConfig::default()
        };
        cfg
    }

    #[test]
    fn record_and_column_feeds_agree() {
        let mut by_record = FleetSink::new(&config()).unwrap();
        let mut by_column = FleetSink::new(&config()).unwrap();
        for id in [3u64, 9] {
            let slope = if id == 3 { 400.0 } else { 0.0 };
            let times: Vec<f64> = (0..300).map(|i| f64::from(i) * 5.0).collect();
            let values: Vec<f64> = (0..300)
                .map(|i| 1e6 - slope * f64::from(i) + f64::from(i % 13) * 64.0)
                .collect();
            for (&t, &v) in times.iter().zip(values.iter()) {
                by_record
                    .ingest_record(id, Counter::AvailableBytes, t, v)
                    .unwrap();
            }
            by_column
                .ingest_column(id, Counter::AvailableBytes, &times, &values)
                .unwrap();
        }
        let a = by_record.into_events();
        let b = by_column.into_events();
        assert_eq!(a, b);
        assert!(
            a.iter().any(|e| e.machine_index == 3
                && matches!(e.kind, crate::pipeline::AlarmKind::MachineAlarm { .. })),
            "leaky machine must fuse: {a:?}"
        );
        assert!(
            !a.iter().any(|e| e.machine_index == 9),
            "healthy machine must stay quiet"
        );
    }

    /// A sink fed the supervisor's exact per-machine sample sequences
    /// must reproduce its event history — including ordering.
    #[test]
    fn sink_reproduces_supervisor_run() {
        use aging_memsim::{Machine, Scenario};
        let mut cfg = config();
        cfg.horizon_secs = 6.0 * 3600.0;
        let scenarios = vec![
            Scenario::tiny_aging(11, 256.0),
            Scenario::tiny_aging(12, 0.0),
        ];
        let report = crate::supervisor::FleetSupervisor::new(cfg.clone())
            .unwrap()
            .run(&scenarios)
            .unwrap();
        assert!(
            report.machine_alarms().count() > 0,
            "leaky machine must alarm"
        );

        let mut sink = FleetSink::new(&cfg).unwrap();
        for (i, scenario) in scenarios.iter().enumerate() {
            sink.register(i as u64, &format!("m{i:03}:{}", scenario.name))
                .unwrap();
            let mut machine = Machine::boot(scenario).unwrap();
            let mut consumed = 0usize;
            let mut times = Vec::new();
            let mut values = Vec::new();
            'feed: loop {
                while machine.log().len() == consumed {
                    if machine.now().as_secs() >= cfg.horizon_secs {
                        break 'feed;
                    }
                    if machine.step().is_some() {
                        break 'feed;
                    }
                }
                consumed += 1;
                let sample = machine.last_sample().expect("fresh sample");
                times.push(sample.time.as_secs());
                values.push(sample.value(Counter::AvailableBytes));
            }
            sink.ingest_column(i as u64, Counter::AvailableBytes, &times, &values)
                .unwrap();
        }
        assert_eq!(sink.into_events(), report.events);
    }

    #[test]
    fn default_column_impl_loops_records() {
        struct Counting(Vec<(u64, f64, f64)>);
        impl IngestSink for Counting {
            type Error = std::convert::Infallible;
            fn ingest_record(
                &mut self,
                machine_id: u64,
                _counter: Counter,
                time_secs: f64,
                value: f64,
            ) -> std::result::Result<(), Self::Error> {
                self.0.push((machine_id, time_secs, value));
                Ok(())
            }
            fn machine_done(&mut self, _machine_id: u64) -> std::result::Result<(), Self::Error> {
                Ok(())
            }
        }
        let mut sink = Counting(Vec::new());
        sink.ingest_column(7, Counter::AvailableBytes, &[1.0, 2.0], &[10.0, 20.0, 30.0])
            .unwrap();
        // Zip truncates to the shorter slice.
        assert_eq!(sink.0, vec![(7, 1.0, 10.0), (7, 2.0, 20.0)]);
    }
}
