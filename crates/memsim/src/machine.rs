//! The simulated machine: glue between workload, faults, memory subsystem
//! and monitor, plus fleet helpers.

use crate::config::MachineConfig;
use crate::faults::{FaultPlan, FaultState};
use crate::memory::{CrashCause, MemorySubsystem};
use crate::monitor::{CrashEvent, MonitorLog, Sample};
use crate::units::{Bytes, SimTime};
use crate::workload::{WorkloadConfig, WorkloadSampler};
use aging_timeseries::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A complete, reproducible experiment scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario label used in reports.
    pub name: String,
    /// Machine description.
    pub machine: MachineConfig,
    /// Workload description.
    pub workload: WorkloadConfig,
    /// Injected aging faults.
    pub faults: FaultPlan,
    /// RNG seed (scenarios are fully deterministic given the seed).
    pub seed: u64,
}

impl Scenario {
    /// The canonical aging web server on the NT4-class workstation.
    pub fn aging_web_server(seed: u64) -> Self {
        Scenario {
            name: format!("aging-web-server-{seed}"),
            machine: MachineConfig::workstation_nt4(),
            workload: WorkloadConfig::web_server(),
            faults: FaultPlan::aging(24.0),
            seed,
        }
    }

    /// A healthy (non-aging) control machine.
    pub fn healthy_web_server(seed: u64) -> Self {
        Scenario {
            name: format!("healthy-web-server-{seed}"),
            machine: MachineConfig::workstation_nt4(),
            workload: WorkloadConfig::web_server(),
            faults: FaultPlan::healthy(),
            seed,
        }
    }

    /// A fast-crashing scenario on the tiny test machine (for tests).
    pub fn tiny_aging(seed: u64, mib_per_hour: f64) -> Self {
        Scenario {
            name: format!("tiny-aging-{seed}"),
            machine: MachineConfig::tiny_test(),
            workload: WorkloadConfig::tiny_test(),
            faults: FaultPlan::aging(mib_per_hour),
            seed,
        }
    }

    /// GPU-serving-style aging on the tiny test machine: monotone
    /// KV-cache-style heap growth plus aggressive fragmentation under
    /// the bursty [`WorkloadConfig::gpu_inference`] load — the
    /// LLM-serving aging mode (cache growth + allocator fragmentation)
    /// PAPERS.md's GPU-serving study characterises.
    pub fn gpu_serving(seed: u64, mib_per_hour: f64) -> Self {
        Scenario {
            name: format!("gpu-serving-{seed}"),
            machine: MachineConfig::tiny_test(),
            workload: WorkloadConfig::gpu_inference(),
            faults: FaultPlan {
                leaks: vec![crate::faults::LeakSpec::linear_mib_per_hour(mib_per_hour)],
                fragmentation: Some(crate::faults::FragmentationSpec {
                    fraction_per_hour: 0.02,
                    max_fraction: 0.4,
                }),
                handle_leak: None,
                reclaim: None,
            },
            seed,
        }
    }

    /// Healthy control for [`Scenario::gpu_serving`]: identical bursty
    /// inference load, no injected aging.
    pub fn gpu_serving_healthy(seed: u64) -> Self {
        Scenario {
            name: format!("gpu-serving-healthy-{seed}"),
            machine: MachineConfig::tiny_test(),
            workload: WorkloadConfig::gpu_inference(),
            faults: FaultPlan::healthy(),
            seed,
        }
    }

    /// Mobile-style app churn on the tiny test machine: a load-coupled
    /// (bursty) leak whose accumulation is partially reclaimed every
    /// half hour — the platform killing background components — leaving
    /// a residue that still ratchets toward exhaustion, per the Android
    /// aging study in PAPERS.md. The sawtooth rides the
    /// [`WorkloadConfig::mobile_app_churn`] usage cycle.
    pub fn mobile_churn(seed: u64, mib_per_hour: f64) -> Self {
        Scenario {
            name: format!("mobile-churn-{seed}"),
            machine: MachineConfig::tiny_test(),
            workload: WorkloadConfig::mobile_app_churn(),
            faults: FaultPlan {
                leaks: vec![crate::faults::LeakSpec {
                    bytes_per_hour: mib_per_hour * 1024.0 * 1024.0,
                    mode: crate::faults::LeakMode::Bursty { p: 0.08 },
                    start_secs: 0.0,
                }],
                fragmentation: Some(crate::faults::FragmentationSpec {
                    fraction_per_hour: 0.004,
                    max_fraction: 0.25,
                }),
                handle_leak: None,
                reclaim: Some(crate::faults::ReclaimSpec {
                    period_secs: 1800.0,
                    reclaim_fraction: 0.2,
                }),
            },
            seed,
        }
    }

    /// Healthy control for [`Scenario::mobile_churn`]: identical churny
    /// load and reclaim cycling, but nothing leaks, so the reclaim has
    /// nothing to bite on.
    pub fn mobile_churn_healthy(seed: u64) -> Self {
        Scenario {
            name: format!("mobile-churn-healthy-{seed}"),
            machine: MachineConfig::tiny_test(),
            workload: WorkloadConfig::mobile_app_churn(),
            faults: FaultPlan {
                reclaim: Some(crate::faults::ReclaimSpec {
                    period_secs: 1800.0,
                    reclaim_fraction: 0.2,
                }),
                ..FaultPlan::healthy()
            },
            seed,
        }
    }
}

/// Result of simulating one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Scenario label.
    pub scenario_name: String,
    /// The monitor log (counter series + crash events).
    pub log: MonitorLog,
    /// Total simulated (up) time in seconds.
    pub simulated_secs: f64,
    /// Number of rejuvenations performed (by external policy drivers).
    pub rejuvenations: usize,
}

impl SimReport {
    /// The first crash, if any.
    pub fn first_crash(&self) -> Option<CrashEvent> {
        self.log.crashes().first().copied()
    }
}

/// A running simulated machine.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    scenario_name: String,
    sampler: WorkloadSampler,
    faults: FaultState,
    fault_plan: FaultPlan,
    workload_config: WorkloadConfig,
    memory: MemorySubsystem,
    rng: StdRng,
    step_index: u64,
    steps_per_sample: u64,
    thrash_secs: f64,
    alloc_bytes_since_sample: f64,
    alloc_bytes_this_step: f64,
    log: MonitorLog,
    last_sample: Option<Sample>,
    crashed: Option<CrashEvent>,
    rejuvenations: usize,
    down_until_step: u64,
    downtime_secs: f64,
}

impl Machine {
    /// Boots a machine for the given scenario.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn boot(scenario: &Scenario) -> Result<Self> {
        scenario.machine.validate()?;
        let steps_per_sample =
            (scenario.machine.sample_period_secs / scenario.machine.step_secs).round() as u64;
        Ok(Machine {
            config: scenario.machine.clone(),
            scenario_name: scenario.name.clone(),
            sampler: WorkloadSampler::new(scenario.workload.clone())?,
            faults: FaultState::new(scenario.faults.clone())?,
            fault_plan: scenario.faults.clone(),
            workload_config: scenario.workload.clone(),
            memory: MemorySubsystem::new(&scenario.machine)?,
            rng: StdRng::seed_from_u64(scenario.seed),
            step_index: 0,
            steps_per_sample,
            thrash_secs: 0.0,
            alloc_bytes_since_sample: 0.0,
            alloc_bytes_this_step: 0.0,
            log: MonitorLog::new(scenario.machine.sample_period_secs)?,
            last_sample: None,
            crashed: None,
            rejuvenations: 0,
            down_until_step: 0,
            downtime_secs: 0.0,
        })
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        SimTime::from_secs(self.step_index as f64 * self.config.step_secs)
    }

    /// Whether the machine has crashed (and stopped).
    pub fn is_crashed(&self) -> bool {
        self.crashed.is_some()
    }

    /// The machine's monitor log so far.
    pub fn log(&self) -> &MonitorLog {
        &self.log
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of rejuvenations performed so far.
    pub fn rejuvenations(&self) -> usize {
        self.rejuvenations
    }

    /// The monitor sample emitted by the most recent [`Machine::step`], if
    /// that step fell on a sampling instant. Online consumers (predictors,
    /// rejuvenation policies) poll this after each step.
    pub fn last_sample(&self) -> Option<Sample> {
        self.last_sample
    }

    /// Advances one simulation step. Returns the crash event if the machine
    /// died during this step; a crashed machine no longer advances.
    pub fn step(&mut self) -> Option<CrashEvent> {
        if self.crashed.is_some() {
            return self.crashed;
        }
        // Down for a restart: the simulation clock advances but nothing
        // runs — no workload, no fault accrual, no monitor samples.
        if self.step_index < self.down_until_step {
            self.last_sample = None;
            self.step_index += 1;
            return None;
        }
        let dt = self.config.step_secs;
        let now = self.step_index as f64 * dt;

        // Workload allocations.
        self.alloc_bytes_this_step = 0.0;
        let requests = self.sampler.step(now, dt, &mut self.rng);
        for req in requests {
            let expiry = self.step_index + 1 + (req.lifetime_secs / dt).ceil() as u64;
            self.memory.allocate(req.bytes, expiry);
            self.alloc_bytes_this_step += req.bytes.as_f64();
        }
        // Periodic batch job: a transient lump held for batch_hold_secs.
        let wl = &self.workload_config;
        if wl.batch_bytes > Bytes::ZERO && wl.batch_period_secs > 0.0 {
            let period_steps = (wl.batch_period_secs / dt).round().max(1.0) as u64;
            if self.step_index % period_steps == period_steps - 1 {
                let expiry = self.step_index + 1 + (wl.batch_hold_secs / dt).ceil() as u64;
                self.memory.allocate(wl.batch_bytes, expiry);
                self.alloc_bytes_this_step += wl.batch_bytes.as_f64();
            }
        }
        self.alloc_bytes_since_sample += self.alloc_bytes_this_step;

        // Frees and aging.
        self.memory.expire(self.step_index);
        self.faults.step(now, dt, &mut self.rng);

        // Fatal conditions.
        if self
            .memory
            .check_oom(self.faults.leaked(), self.faults.handle_bytes())
        {
            return self.die(CrashCause::OutOfMemory);
        }
        let metrics = self.current_metrics();
        if metrics.thrashing {
            self.thrash_secs += dt;
            if self.thrash_secs >= self.config.thrash_crash_secs {
                return self.die(CrashCause::Thrashing);
            }
        } else {
            self.thrash_secs = 0.0;
        }

        // Sampling.
        if self.step_index % self.steps_per_sample == self.steps_per_sample - 1 {
            let alloc_rate = self.alloc_bytes_since_sample / self.config.sample_period_secs;
            let sample = Sample {
                time: self.now(),
                available: metrics.available,
                used_swap: metrics.used_swap,
                committed: metrics.committed,
                live_heap: metrics.live_heap,
                page_faults_per_sec: metrics.page_faults_per_sec,
                handle_count: self.faults.handle_count(),
                alloc_rate,
            };
            self.log.record(&sample);
            self.last_sample = Some(sample);
            self.alloc_bytes_since_sample = 0.0;
        } else {
            self.last_sample = None;
        }

        self.step_index += 1;
        None
    }

    fn current_metrics(&mut self) -> crate::memory::MemoryMetrics {
        let jitter: f64 = self.rng.gen_range(0.0..1.0);
        self.memory.metrics(
            self.faults.leaked(),
            self.faults.handle_bytes(),
            self.faults.fragmentation_fraction(),
            self.alloc_bytes_this_step / self.config.step_secs,
            jitter,
        )
    }

    fn die(&mut self, cause: CrashCause) -> Option<CrashEvent> {
        let event = CrashEvent {
            time: self.now(),
            cause,
        };
        self.log.record_crash(event);
        self.crashed = Some(event);
        self.crashed
    }

    /// Runs for up to `secs` of simulated time, stopping early on a crash.
    /// Returns the crash event if one occurred.
    pub fn run_for(&mut self, secs: f64) -> Option<CrashEvent> {
        let steps = (secs / self.config.step_secs).ceil() as u64;
        for _ in 0..steps {
            if let Some(crash) = self.step() {
                return Some(crash);
            }
        }
        None
    }

    /// Rejuvenates the machine: restarts the workload process(es), clearing
    /// the live heap, leaked memory, leaked handles and accumulated
    /// fragmentation. The monitor log continues across the restart.
    ///
    /// A crashed machine is also revived (reboot).
    pub fn rejuvenate(&mut self) {
        self.memory.clear_live();
        // Reset aging state: a restart releases leaked memory and handles.
        self.faults = FaultState::new(self.fault_plan.clone()).expect("plan validated at boot");
        self.thrash_secs = 0.0;
        self.crashed = None;
        self.rejuvenations += 1;
    }

    /// Begins a restart (planned rejuvenation or crash-repair reboot):
    /// the machine [`Machine::rejuvenate`]s — live heap, leaks, handles,
    /// fragmentation and thrash accumulation all reset — and then stays
    /// *down* for `downtime_secs` of simulated time. While down, the
    /// clock advances but no workload runs, no faults accrue and no
    /// monitor samples are emitted; afterwards the heap refills from
    /// empty (the post-restart transient detectors must ride out). The
    /// outage accrues into [`Machine::downtime_secs`].
    pub fn begin_restart(&mut self, downtime_secs: f64) {
        self.rejuvenate();
        let steps = (downtime_secs / self.config.step_secs).ceil().max(0.0) as u64;
        self.down_until_step = self.step_index + steps;
        self.downtime_secs += downtime_secs;
    }

    /// Whether the machine is inside a restart outage window.
    pub fn is_down(&self) -> bool {
        self.step_index < self.down_until_step
    }

    /// Total restart/repair outage accrued so far, in seconds.
    pub fn downtime_secs(&self) -> f64 {
        self.downtime_secs
    }

    /// Finishes the run, producing the report.
    pub fn into_report(self) -> SimReport {
        SimReport {
            scenario_name: self.scenario_name,
            log: self.log,
            simulated_secs: self.step_index as f64 * self.config.step_secs,
            rejuvenations: self.rejuvenations,
        }
    }
}

/// Simulates one scenario for up to `max_secs`, stopping at the first
/// crash.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn simulate(scenario: &Scenario, max_secs: f64) -> Result<SimReport> {
    let mut machine = Machine::boot(scenario)?;
    machine.run_for(max_secs);
    Ok(machine.into_report())
}

/// Simulates a scenario for `total_secs`, rebooting after every crash, so
/// the resulting log contains multiple crash events — like the multi-week,
/// multi-crash logs of the paper's testbed.
///
/// # Errors
///
/// Propagates configuration validation failures.
pub fn simulate_with_reboots(scenario: &Scenario, total_secs: f64) -> Result<SimReport> {
    let mut machine = Machine::boot(scenario)?;
    let steps = (total_secs / scenario.machine.step_secs).ceil() as u64;
    for _ in 0..steps {
        if machine.step().is_some() {
            machine.rejuvenate(); // reboot
        }
    }
    let mut report = machine.into_report();
    // Reboots are not policy rejuvenations; expose them via crash count.
    report.rejuvenations = 0;
    Ok(report)
}

/// Simulates several scenarios in parallel on the global
/// [`aging_par::Pool`] (bounded by `AGING_THREADS`, unlike the former
/// thread-per-scenario fan-out).
///
/// # Errors
///
/// Propagates the first (lowest-index) scenario failure.
pub fn simulate_fleet(scenarios: &[Scenario], max_secs: f64) -> Result<Vec<SimReport>> {
    simulate_fleet_in(scenarios, max_secs, aging_par::Pool::global())
}

/// [`simulate_fleet`] on an explicit pool. Each scenario is simulated
/// independently from its own seed, so the fleet is bit-identical to the
/// sequential runs for any pool size.
///
/// # Errors
///
/// Same failure modes as [`simulate_fleet`].
pub fn simulate_fleet_in(
    scenarios: &[Scenario],
    max_secs: f64,
    pool: &aging_par::Pool,
) -> Result<Vec<SimReport>> {
    pool.try_map(scenarios, |sc| simulate(sc, max_secs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Counter;

    #[test]
    fn healthy_machine_survives() {
        let scenario = Scenario {
            name: "healthy".into(),
            machine: MachineConfig::tiny_test(),
            workload: WorkloadConfig::tiny_test(),
            faults: FaultPlan::healthy(),
            seed: 1,
        };
        let report = simulate(&scenario, 3600.0).unwrap();
        assert!(report.first_crash().is_none());
        assert_eq!(report.log.len(), 720); // 3600 s / 5 s sampling
        assert!((report.simulated_secs - 3600.0).abs() < 2.0);
    }

    #[test]
    fn aggressive_leak_crashes_tiny_machine() {
        // 1 GiB/hour leak on a 128 MiB commit limit: crash well within 1 h.
        let scenario = Scenario::tiny_aging(2, 1024.0);
        let report = simulate(&scenario, 3600.0 * 2.0).unwrap();
        let crash = report.first_crash().expect("machine must crash");
        assert!(crash.time.as_secs() < 3600.0, "crash at {}", crash.time);
        // Crash recorded in the log too.
        assert_eq!(report.log.crashes().len(), 1);
    }

    #[test]
    fn crash_is_preceded_by_resource_depletion() {
        let scenario = Scenario::tiny_aging(3, 512.0);
        let report = simulate(&scenario, 3600.0 * 4.0).unwrap();
        assert!(report.first_crash().is_some());
        let avail = report.log.values(Counter::AvailableBytes);
        let swap = report.log.values(Counter::UsedSwapBytes);
        assert!(avail.len() > 20);
        // Early free memory far exceeds late free memory.
        let early = avail[2];
        let late = avail[avail.len() - 2];
        assert!(late < early, "early {early} late {late}");
        // Swap climbs before the end.
        assert!(swap[swap.len() - 2] > swap[1]);
    }

    #[test]
    fn simulation_is_deterministic() {
        let scenario = Scenario::tiny_aging(7, 256.0);
        let a = simulate(&scenario, 1800.0).unwrap();
        let b = simulate(&scenario, 1800.0).unwrap();
        assert_eq!(a.log, b.log);
    }

    #[test]
    fn different_seeds_differ() {
        let a = simulate(&Scenario::tiny_aging(1, 256.0), 900.0).unwrap();
        let b = simulate(&Scenario::tiny_aging(2, 256.0), 900.0).unwrap();
        assert_ne!(
            a.log.values(Counter::AvailableBytes),
            b.log.values(Counter::AvailableBytes)
        );
    }

    #[test]
    fn crashed_machine_stops_stepping() {
        let mut machine = Machine::boot(&Scenario::tiny_aging(4, 2048.0)).unwrap();
        let crash = machine.run_for(3600.0 * 4.0).expect("crash");
        let len_at_crash = machine.log().len();
        assert!(machine.is_crashed());
        // Further steps are no-ops.
        assert_eq!(machine.step(), Some(crash));
        assert_eq!(machine.log().len(), len_at_crash);
    }

    #[test]
    fn rejuvenation_restores_headroom_and_revives() {
        let mut machine = Machine::boot(&Scenario::tiny_aging(5, 2048.0)).unwrap();
        machine.run_for(3600.0 * 4.0).expect("crash");
        assert!(machine.is_crashed());
        machine.rejuvenate();
        assert!(!machine.is_crashed());
        assert_eq!(machine.rejuvenations(), 1);
        // Should survive a while again after rejuvenation.
        let crash = machine.run_for(60.0);
        assert!(crash.is_none());
    }

    #[test]
    fn reboot_logs_capture_multiple_crashes() {
        let scenario = Scenario::tiny_aging(6, 2048.0);
        let report = simulate_with_reboots(&scenario, 3600.0 * 6.0).unwrap();
        assert!(
            report.log.crashes().len() >= 2,
            "only {} crashes",
            report.log.crashes().len()
        );
        // Crash times strictly increase.
        let times: Vec<f64> = report
            .log
            .crashes()
            .iter()
            .map(|c| c.time.as_secs())
            .collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn begin_restart_holds_the_machine_down_then_revives_it() {
        let mut machine = Machine::boot(&Scenario::tiny_aging(9, 512.0)).unwrap();
        machine.run_for(300.0);
        assert!(!machine.is_crashed());
        let samples_before = machine.log().len();
        machine.begin_restart(60.0);
        assert!(machine.is_down());
        assert_eq!(machine.rejuvenations(), 1);
        // 60 s at 1 s steps: the outage emits no samples at all.
        for _ in 0..60 {
            assert!(machine.step().is_none());
            assert!(machine.last_sample().is_none());
        }
        assert!(!machine.is_down());
        assert_eq!(machine.log().len(), samples_before);
        assert!((machine.downtime_secs() - 60.0).abs() < 1e-9);
        // Back up: sampling resumes on the same 5 s grid, strictly after
        // the outage, and the refilled heap starts from a clean slate.
        machine.run_for(120.0);
        assert!(machine.log().len() > samples_before);
        let times = machine.log().values(Counter::AvailableBytes);
        assert!(times.len() == machine.log().len());
        assert!(!machine.is_crashed());
    }

    #[test]
    fn begin_restart_also_repairs_a_crash() {
        let mut machine = Machine::boot(&Scenario::tiny_aging(10, 2048.0)).unwrap();
        machine.run_for(3600.0 * 4.0).expect("crash");
        assert!(machine.is_crashed());
        machine.begin_restart(300.0);
        assert!(!machine.is_crashed());
        assert!(machine.is_down());
        let crash = machine.run_for(400.0);
        assert!(crash.is_none(), "fresh heap must survive the transient");
        assert!((machine.downtime_secs() - 300.0).abs() < 1e-9);
    }

    /// The GPU-serving family: monotone growth statistics — committed
    /// bytes trend strictly upward until the machine dies, across seeds,
    /// while the healthy control survives flat.
    #[test]
    fn gpu_serving_ages_monotonically_across_seeds() {
        for seed in [777u64, 1234, 41] {
            let scenario = Scenario::gpu_serving(seed, 192.0);
            let report = simulate(&scenario, 8.0 * 3600.0).unwrap();
            let crash = report.first_crash().expect("gpu aging must crash");
            assert!(
                crash.time.as_secs() > 600.0,
                "seed {seed}: crashed implausibly early at {}",
                crash.time
            );
            // Long-run growth rate: compare mean committed bytes in the
            // first and last quarters of the (pre-crash) trace.
            let committed = report.log.values(Counter::CommittedBytes);
            let q = committed.len() / 4;
            assert!(q > 4, "seed {seed}: trace too short ({})", committed.len());
            let early: f64 = committed[..q].iter().sum::<f64>() / q as f64;
            let late: f64 = committed[committed.len() - q..].iter().sum::<f64>() / q as f64;
            assert!(
                late > 1.5 * early,
                "seed {seed}: committed grew {early} → {late}, not monotone aging"
            );
        }
        for seed in [777u64, 1234] {
            let report = simulate(&Scenario::gpu_serving_healthy(seed), 8.0 * 3600.0).unwrap();
            assert!(
                report.first_crash().is_none(),
                "seed {seed}: healthy gpu control crashed"
            );
        }
    }

    /// The mobile-churn family: reclaim-cycle statistics — the committed
    /// trace shows repeated partial-reclaim drops (a sawtooth, not a
    /// ramp) yet still ratchets toward exhaustion, across seeds.
    #[test]
    fn mobile_churn_sawtooths_then_exhausts_across_seeds() {
        for seed in [777u64, 1234, 41] {
            let scenario = Scenario::mobile_churn(seed, 72.0);
            let report = simulate(&scenario, 12.0 * 3600.0).unwrap();
            let crash = report.first_crash().expect("mobile churn must crash");
            // The machine must live through several reclaim cycles (the
            // whole point of the family): > 2 × the 1800 s period.
            assert!(
                crash.time.as_secs() > 2.0 * 1800.0,
                "seed {seed}: crashed at {} before the sawtooth developed",
                crash.time
            );
            let committed = report.log.values(Counter::CommittedBytes);
            // Count large single-sample drops: reclaim releases ≥ a few
            // MiB at once, far beyond workload-level fluctuation.
            let threshold = 4.0 * 1024.0 * 1024.0;
            let drops = committed
                .windows(2)
                .filter(|w| w[0] - w[1] > threshold)
                .count();
            assert!(
                drops >= 2,
                "seed {seed}: only {drops} reclaim drops in the committed trace"
            );
            // Still a net ratchet: the last quarter sits above the first.
            let q = committed.len() / 4;
            let early: f64 = committed[..q].iter().sum::<f64>() / q as f64;
            let late: f64 = committed[committed.len() - q..].iter().sum::<f64>() / q as f64;
            assert!(
                late > early,
                "seed {seed}: no residual growth ({early} → {late})"
            );
        }
        for seed in [777u64, 1234] {
            let report = simulate(&Scenario::mobile_churn_healthy(seed), 12.0 * 3600.0).unwrap();
            assert!(
                report.first_crash().is_none(),
                "seed {seed}: healthy mobile control crashed"
            );
        }
    }

    #[test]
    fn fleet_runs_all_scenarios() {
        let scenarios = vec![
            Scenario::tiny_aging(1, 512.0),
            Scenario::tiny_aging(2, 512.0),
            Scenario {
                name: "control".into(),
                machine: MachineConfig::tiny_test(),
                workload: WorkloadConfig::tiny_test(),
                faults: FaultPlan::healthy(),
                seed: 3,
            },
        ];
        let reports = simulate_fleet(&scenarios, 1800.0).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[2].scenario_name, "control");
        // Fleet must equal individual runs (thread scheduling must not
        // affect determinism).
        let solo = simulate(&scenarios[0], 1800.0).unwrap();
        assert_eq!(solo.log, reports[0].log);
    }

    #[test]
    fn counters_are_recorded_for_all_kinds() {
        let report = simulate(&Scenario::tiny_aging(8, 128.0), 600.0).unwrap();
        for c in Counter::ALL {
            assert_eq!(report.log.values(c).len(), report.log.len(), "{c}");
        }
        let ts = report.log.series(Counter::AvailableBytes).unwrap();
        assert_eq!(ts.dt(), 5.0);
    }
}
