//! Load-generator CLI: drives N synthetic memsim machines into an
//! aging-serve server over TCP and reports throughput and latency.
//!
//! ```text
//! serve-loadgen [--addr HOST:PORT] [--machines N] [--leak MIB_PER_HOUR]
//!               [--horizon SECS] [--connections N] [--batch N]
//!               [--rate RECORDS_PER_SEC] [--poll-ms MS] [--seed S]
//!               [--mode record|columnar]
//! ```
//!
//! Without `--addr` the tool self-serves: it binds an in-process server
//! on an ephemeral loopback port, drives it, and also prints the
//! server-side wire counters after a graceful shutdown.

use std::process::ExitCode;

use aging_memsim::Scenario;
use aging_serve::loadgen::{drive, BatchMode, LoadgenConfig};
use aging_serve::{ServeConfig, Server};
use aging_stream::telemetry::LatencyHistogram;

struct Args {
    addr: Option<String>,
    machines: usize,
    leak_mib_per_hour: f64,
    horizon_secs: f64,
    connections: usize,
    batch: usize,
    rate: f64,
    poll_ms: u64,
    seed: u64,
    mode: BatchMode,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut args = Args {
            addr: None,
            machines: 10,
            leak_mib_per_hour: 192.0,
            horizon_secs: 6.0 * 3600.0,
            connections: 4,
            batch: 64,
            rate: 0.0,
            poll_ms: 50,
            seed: 1,
            mode: BatchMode::Record,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
            match flag.as_str() {
                "--addr" => args.addr = Some(value("--addr")?),
                "--machines" => args.machines = parse(&value("--machines")?)?,
                "--leak" => args.leak_mib_per_hour = parse(&value("--leak")?)?,
                "--horizon" => args.horizon_secs = parse(&value("--horizon")?)?,
                "--connections" => args.connections = parse(&value("--connections")?)?,
                "--batch" => args.batch = parse(&value("--batch")?)?,
                "--rate" => args.rate = parse(&value("--rate")?)?,
                "--poll-ms" => args.poll_ms = parse(&value("--poll-ms")?)?,
                "--seed" => args.seed = parse(&value("--seed")?)?,
                "--mode" => {
                    args.mode = match value("--mode")?.as_str() {
                        "record" => BatchMode::Record,
                        "columnar" => BatchMode::Columnar,
                        other => {
                            return Err(format!("--mode must be record|columnar, got {other}"))
                        }
                    }
                }
                "--help" | "-h" => return Err("help".into()),
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("cannot parse {s:?}"))
}

fn quantiles(label: &str, hist: &LatencyHistogram) {
    let p50 = hist.quantile_upper_bound_us(0.50).unwrap_or(0);
    let p99 = hist.quantile_upper_bound_us(0.99).unwrap_or(0);
    println!(
        "{label}: mean {:.1} us, p50 <= {p50} us, p99 <= {p99} us",
        hist.mean_us()
    );
}

fn main() -> ExitCode {
    let args = match Args::parse() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve-loadgen: {msg}");
            eprintln!(
                "usage: serve-loadgen [--addr HOST:PORT] [--machines N] [--leak MIB/H] \
                 [--horizon SECS] [--connections N] [--batch N] [--rate R] [--poll-ms MS] \
                 [--seed S] [--mode record|columnar]"
            );
            return ExitCode::FAILURE;
        }
    };

    let scenarios: Vec<Scenario> = (0..args.machines)
        .map(|i| Scenario::tiny_aging(args.seed + i as u64, args.leak_mib_per_hour))
        .collect();
    let cfg = LoadgenConfig {
        connections: args.connections,
        batch_records: args.batch,
        rate_records_per_sec: args.rate,
        poll_alarms_ms: args.poll_ms,
        counters: vec![aging_memsim::Counter::AvailableBytes],
        mode: args.mode,
    };

    // Self-serve when no address was given.
    let own_server = if args.addr.is_none() {
        match Server::bind(
            "127.0.0.1:0",
            ServeConfig::new(aging_serve::test_detectors()),
        ) {
            Ok(server) => {
                println!("self-serving on {}", server.local_addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("serve-loadgen: bind failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };
    let addr = match &own_server {
        Some(server) => server.local_addr(),
        None => {
            let text = args.addr.as_deref().expect("addr or self-serve");
            match text.parse() {
                Ok(addr) => addr,
                Err(e) => {
                    eprintln!("serve-loadgen: bad --addr {text:?}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    let report = match drive(addr, &scenarios, args.horizon_secs, &cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("serve-loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "sent {} records in {} batches over {:.2}s ({:.0} records/s), {} accepted",
        report.records_sent,
        report.batches,
        report.wall_secs,
        report.records_per_sec(),
        report.records_accepted,
    );
    quantiles("ack rtt", &report.ack_rtt);
    quantiles("alarm visibility", &report.alarm_visibility);
    println!(
        "alarm history: {} events; busy frames: {}",
        report.alarms.len(),
        report.busy_frames
    );
    for (id, crash) in &report.crash_times {
        match crash {
            Some(t) => println!("machine {id}: crashed at {t:.0}s"),
            None => println!("machine {id}: survived"),
        }
    }

    if let Some(server) = own_server {
        let outcome = server.shutdown();
        println!(
            "server: {} connections, {} frames, {} records, {} quarantined, {} panics",
            outcome.wire.connections,
            outcome.wire.frames,
            outcome.wire.records,
            outcome.wire.quarantined,
            outcome.wire.session_panics,
        );
    }
    ExitCode::SUCCESS
}
