//! Property tests for the columnar slice kernels: feeding a
//! [`StreamingDetector`] through `push_slice` in chunks — fixed sizes
//! {1, 2, 7} and arbitrary generated cuts — must be **bit-identical**
//! to repeated scalar `push` calls: same alert offsets, same levels,
//! same eta bits, and the same internal state afterwards (probed by
//! continuing both detectors past the slice boundary).

use aging_core::baseline::TrendPredictorConfig;
use aging_stream::detector::{AlertDetail, DetectorSpec, StreamAlert, StreamingDetector};
use proptest::prelude::*;

fn trend_spec(window: usize, refit_every: usize) -> DetectorSpec {
    DetectorSpec::Trend(TrendPredictorConfig {
        window,
        refit_every,
        alarm_horizon_secs: 1e6,
        ..TrendPredictorConfig::depleting(5.0)
    })
}

/// A leak-like trace: a falling ramp with deterministic jitter, scaled
/// by generated parameters so alarms genuinely fire in most cases.
fn build_trace(len: usize, start: f64, slope: f64, jitter: f64) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let wobble = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
            start - slope * i as f64 + jitter * wobble
        })
        .collect()
}

fn assert_alert_bits_equal(a: &StreamAlert, b: &StreamAlert) {
    prop_assert_eq!(a.sample_index, b.sample_index);
    prop_assert_eq!(a.level, b.level);
    match (&a.detail, &b.detail) {
        (AlertDetail::Trend { eta_secs: ea }, AlertDetail::Trend { eta_secs: eb }) => {
            match (ea, eb) {
                (Some(ea), Some(eb)) => prop_assert_eq!(ea.to_bits(), eb.to_bits()),
                (None, None) => {}
                _ => panic!("eta presence diverged"),
            }
        }
        _ => panic!("alert family diverged"),
    }
}

/// Runs the same trace through scalar pushes and chunked `push_slice`,
/// returning an error on any bit divergence in alerts or post-state.
fn assert_chunked_parity(spec: &DetectorSpec, trace: &[f64], chunks: &[usize]) {
    let mut scalar = StreamingDetector::new(spec).expect("scalar detector");
    let mut sliced = StreamingDetector::new(spec).expect("sliced detector");

    let mut scalar_alerts: Vec<(usize, StreamAlert)> = Vec::new();
    for (i, &v) in trace.iter().enumerate() {
        if let Some(alert) = scalar.push(v).expect("finite sample") {
            scalar_alerts.push((i, alert));
        }
    }

    let mut sliced_alerts: Vec<(usize, StreamAlert)> = Vec::new();
    let mut out = Vec::new();
    let mut pos = 0usize;
    let mut c = 0usize;
    while pos < trace.len() {
        let step = chunks[c % chunks.len()].max(1).min(trace.len() - pos);
        sliced
            .push_slice(&trace[pos..pos + step], &mut out)
            .expect("finite samples");
        for (k, alert) in out.drain(..) {
            sliced_alerts.push((pos + k, alert));
        }
        pos += step;
        c += 1;
    }

    prop_assert_eq!(
        scalar_alerts.len(),
        sliced_alerts.len(),
        "alert count diverged"
    );
    for ((ia, a), (ib, b)) in scalar_alerts.iter().zip(&sliced_alerts) {
        prop_assert_eq!(ia, ib, "alert offset diverged");
        assert_alert_bits_equal(a, b);
    }

    // State parity: both detectors must keep agreeing after the slices.
    for (i, &v) in trace.iter().rev().take(32).enumerate() {
        let probe = v + 1.0 + i as f64;
        let from_scalar = scalar.push(probe).expect("finite probe");
        let mut probe_out = Vec::new();
        sliced
            .push_slice(&[probe], &mut probe_out)
            .expect("finite probe");
        match (from_scalar, probe_out.first()) {
            (Some(a), Some((0, b))) => assert_alert_bits_equal(&a, b),
            (None, None) => {}
            _ => panic!("post-slice state diverged at probe {i}"),
        }
    }
}

proptest! {
    /// Fixed chunk widths {1, 2, 7} — the shapes the columnar ingest
    /// path actually produces (singleton spans, tiny splits, runs).
    #[test]
    fn push_slice_matches_push_at_fixed_chunks(
        window in 16usize..48,
        refit in 1usize..8,
        len in 1usize..300,
        start in 1e3f64..1e9,
        slope in 0.0f64..50.0,
        jitter in 0.0f64..10.0,
    ) {
        let spec = trend_spec(window, refit);
        let trace = build_trace(len, start, slope, jitter);
        for chunk in [1usize, 2, 7] {
            assert_chunked_parity(&spec, &trace, &[chunk]);
        }
    }

    /// Arbitrary chunk patterns, including alternating tiny/large cuts.
    #[test]
    fn push_slice_matches_push_at_arbitrary_chunks(
        window in 16usize..48,
        refit in 1usize..8,
        len in 1usize..300,
        start in 1e3f64..1e9,
        slope in 0.0f64..50.0,
        chunks in prop::collection::vec(1usize..33, 1..=6),
    ) {
        let spec = trend_spec(window, refit);
        let trace = build_trace(len, start, slope, 3.0);
        assert_chunked_parity(&spec, &trace, &chunks);
    }
}
