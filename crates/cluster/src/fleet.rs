//! Local cluster harness: boots one `aging-serve` server per shard and
//! drives a fleet of memsim scenarios across them, partitioned by the
//! [`HashRing`].
//!
//! This is the test/bench topology of the cluster tier — every node is
//! an in-process [`Server`] on an ephemeral loopback port, but all
//! traffic crosses real TCP sockets, so the pieces compose exactly as a
//! multi-host deployment would: ring → per-shard loadgen drivers →
//! shards → aggregator.
//!
//! The launcher pins each shard for byte-determinism: a shard learns
//! its ring index ([`ServeConfig::shard_id`]), the exact number of
//! machines the ring assigns it ([`ServeConfig::expected_machines`], so
//! its release order cannot depend on feeder timing), and optionally a
//! per-shard store directory for kill-and-recover runs.

use std::net::SocketAddr;
use std::path::Path;
use std::sync::Mutex;

use aging_memsim::Scenario;
use aging_serve::loadgen::{drive_with_ids, LoadgenConfig, LoadgenReport};
use aging_serve::{ServeConfig, ServeReport, Server};
use aging_store::StoreConfig;
use aging_timeseries::{Error, Result};

use crate::aggregator::ShardDirectory;
use crate::ring::HashRing;

/// Journal-entries-per-snapshot cadence for per-shard stores — small
/// enough that kill-and-recover tests exercise both replay paths.
const SHARD_SNAPSHOT_EVERY: u64 = 24;

/// A running set of in-process shard servers plus their directory.
#[derive(Debug)]
pub struct LocalCluster {
    /// `None` where a shard was killed via [`abort_shard`] and not yet
    /// re-bound. Behind a mutex so a supervising test can kill and
    /// recover a shard while driver/aggregator threads share `&self`.
    ///
    /// [`abort_shard`]: LocalCluster::abort_shard
    servers: Mutex<Vec<Option<Server>>>,
    /// Each shard's full launch config, kept for re-binding after a
    /// kill (the store config inside points at the shard's directory).
    cfgs: Vec<ServeConfig>,
    directory: ShardDirectory,
    ring: HashRing,
    /// Machine ids owned by each shard, in fleet order.
    assignments: Vec<Vec<u64>>,
}

impl LocalCluster {
    /// Boots one server per ring shard on ephemeral loopback ports.
    ///
    /// `template` supplies the detection parameters; per shard the
    /// launcher overrides `shard_id` (ring index), `expected_machines`
    /// (ring partition size of `machine_ids`) and, when `store_root` is
    /// given, `store` (directory `shard-<id>` under the root).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for duplicate machine ids
    /// and propagates server bind/validation failures.
    pub fn launch(
        ring: &HashRing,
        template: &ServeConfig,
        machine_ids: &[u64],
        store_root: Option<&Path>,
    ) -> Result<LocalCluster> {
        {
            let mut sorted = machine_ids.to_vec();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                return Err(Error::invalid("machine_ids", "ids must be unique"));
            }
        }
        let assignments = ring.partition(machine_ids);
        let mut servers = Vec::with_capacity(assignments.len());
        let mut cfgs = Vec::with_capacity(assignments.len());
        let mut addrs = Vec::with_capacity(assignments.len());
        for (shard, owned) in assignments.iter().enumerate() {
            let mut cfg = template.clone();
            cfg.shard_id = shard as u64;
            // Pinning the exact fleet size makes the shard's release
            // order independent of feeder connection timing — the
            // cluster-side prerequisite of byte parity.
            cfg.expected_machines = Some(owned.len() as u64);
            if let Some(root) = store_root {
                let mut store = StoreConfig::new(root.join(format!("shard-{shard}")));
                store.snapshot_every_entries = SHARD_SNAPSHOT_EVERY;
                cfg.store = Some(store);
            }
            let server = Server::bind("127.0.0.1:0", cfg.clone())?;
            addrs.push(server.local_addr());
            servers.push(Some(server));
            cfgs.push(cfg);
        }
        Ok(LocalCluster {
            servers: Mutex::new(servers),
            cfgs,
            directory: ShardDirectory::new(addrs),
            ring: ring.clone(),
            assignments,
        })
    }

    /// The shard address directory (shared with aggregators; updated in
    /// place by [`rebind_shard`](LocalCluster::rebind_shard)).
    pub fn directory(&self) -> &ShardDirectory {
        &self.directory
    }

    /// The ring the cluster was launched with.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.cfgs.len()
    }

    /// Machine ids owned by `shard`, in fleet order.
    pub fn assignment(&self, shard: usize) -> &[u64] {
        &self.assignments[shard]
    }

    /// Current address of `shard`.
    pub fn addr(&self, shard: usize) -> SocketAddr {
        self.directory.addr(shard)
    }

    /// Kills `shard` abruptly — sockets dropped, no drain, exactly like
    /// a process crash. The directory keeps the stale address until
    /// [`rebind_shard`](LocalCluster::rebind_shard).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the shard is already
    /// down.
    pub fn abort_shard(&self, shard: usize) -> Result<()> {
        let server = self.servers.lock().unwrap_or_else(|p| p.into_inner())[shard].take();
        match server {
            Some(server) => {
                server.abort();
                Ok(())
            }
            None => Err(Error::invalid("shard", "already aborted")),
        }
    }

    /// Re-binds a killed shard from its (store-backed) launch config on
    /// a fresh port and publishes the new address in the directory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the shard is still
    /// running, and propagates bind/recovery failures.
    pub fn rebind_shard(&self, shard: usize) -> Result<SocketAddr> {
        let mut servers = self.servers.lock().unwrap_or_else(|p| p.into_inner());
        if servers[shard].is_some() {
            return Err(Error::invalid("shard", "still running; abort it first"));
        }
        let server = Server::bind("127.0.0.1:0", self.cfgs[shard].clone())?;
        let addr = server.local_addr();
        servers[shard] = Some(server);
        self.directory.update(shard, addr);
        Ok(addr)
    }

    /// Gracefully drains and shuts down every live shard, returning
    /// their reports in shard order (killed shards yield `None`).
    pub fn shutdown(self) -> Vec<Option<ServeReport>> {
        self.servers
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
            .into_iter()
            .map(|server| server.map(Server::shutdown))
            .collect()
    }
}

/// What a fleet drive across all shards produced.
#[derive(Debug)]
pub struct FleetDriveReport {
    /// Per-shard loadgen reports, in shard order. A shard with no
    /// machines yields `None`.
    pub shards: Vec<Option<LoadgenReport>>,
    /// Wall-clock duration of the whole drive (all shards), seconds.
    pub wall_secs: f64,
}

impl FleetDriveReport {
    /// Records sent across all shards.
    pub fn records_sent(&self) -> u64 {
        self.shards.iter().flatten().map(|r| r.records_sent).sum()
    }

    /// Aggregate ingest throughput, records per wall-clock second.
    pub fn records_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.records_sent() as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Drives `scenarios[i]` (publishing as `machine_ids[i]`) into the
/// cluster behind `directory`, partitioned by `ring` — one loadgen
/// driver thread per non-empty shard, all concurrent.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for mismatched input lengths or
/// a directory/ring shard-count disagreement, and propagates the first
/// failing shard driver.
pub fn drive_fleet(
    ring: &HashRing,
    directory: &ShardDirectory,
    scenarios: &[Scenario],
    machine_ids: &[u64],
    horizon_secs: f64,
    cfg: &LoadgenConfig,
) -> Result<FleetDriveReport> {
    if machine_ids.len() != scenarios.len() {
        return Err(Error::invalid(
            "machine_ids",
            "must name exactly one id per scenario",
        ));
    }
    if directory.len() != ring.shards() as usize {
        return Err(Error::invalid(
            "directory",
            "shard count must match the ring",
        ));
    }
    let parts = ring.partition_indices(machine_ids);
    let started = std::time::Instant::now();
    let results: Vec<Option<Result<LoadgenReport>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .enumerate()
            .map(|(shard, positions)| {
                if positions.is_empty() {
                    return None;
                }
                let addr = directory.addr(shard);
                let shard_scenarios: Vec<Scenario> =
                    positions.iter().map(|&p| scenarios[p].clone()).collect();
                let shard_ids: Vec<u64> = positions.iter().map(|&p| machine_ids[p]).collect();
                Some(scope.spawn(move || {
                    drive_with_ids(addr, &shard_scenarios, &shard_ids, horizon_secs, cfg)
                }))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle.map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(Error::Io("shard driver panicked".into())))
                })
            })
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();
    let mut shards = Vec::with_capacity(results.len());
    for result in results {
        shards.push(result.transpose()?);
    }
    Ok(FleetDriveReport { shards, wall_secs })
}
