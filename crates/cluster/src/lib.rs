//! # aging-cluster
//!
//! Sharded multi-node serve tier of the `holder-aging` workspace —
//! scale-out for the networked aging detectors reproducing *"Software
//! Aging and Multifractality of Memory Resources"* (Shereshevsky et
//! al., DSN 2003).
//!
//! A single [`aging_serve::Server`] already holds its TCP alarm stream
//! to byte parity with an offline
//! [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor) run
//! (E14). This crate keeps that guarantee while spreading the fleet
//! over N such servers:
//!
//! ```text
//!                    ┌────────────┐
//!   machine ids ────▶│  HashRing  │── consistent-hash router
//!                    └─────┬──────┘
//!            ┌─────────────┼─────────────┐
//!            ▼             ▼             ▼
//!       ┌─────────┐   ┌─────────┐   ┌─────────┐
//!       │ shard 0 │   │ shard 1 │   │ shard 2 │   aging-serve nodes
//!       │ (+ WAL) │   │ (+ WAL) │   │ (+ WAL) │   (watermark W_s per
//!       └────┬────┘   └────┬────┘   └────┬────┘    AlarmsReply)
//!            └─────────────┼─────────────┘
//!                          ▼
//!                  ┌───────────────┐
//!                  │  Aggregator   │  k-way WatermarkMerger:
//!                  │  (+ journal)  │  release ⇔ time ≤ min_s W_s
//!                  └───────────────┘
//!                          ▼
//!              one global alarm history,
//!              byte-identical to the offline run
//! ```
//!
//! - **Routing** ([`ring`]): a seed-deterministic consistent-hash ring
//!   maps every machine id to exactly one shard; growing the ring only
//!   moves machines onto the new shard.
//! - **Sharding** ([`fleet`]): [`LocalCluster`] boots one serve node
//!   per shard (each with its ring index, pinned fleet size and
//!   optional WAL store) and [`drive_fleet`] partitions a scenario
//!   fleet across them over real sockets.
//! - **Merging** ([`aggregator`]): the [`Aggregator`] pulls each
//!   shard's watermark-ordered alarm stream over the ordinary query
//!   protocol and releases events only below the minimum shard
//!   watermark — the *global watermark release invariant* — producing
//!   one deterministic history it can also journal for kill-and-recover
//!   (experiment E16).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aggregator;
pub mod fleet;
pub mod ring;

pub use aging_timeseries::{Error, Result};

pub use aggregator::{AggregateReport, Aggregator, AggregatorConfig, ShardDirectory};
pub use fleet::{drive_fleet, FleetDriveReport, LocalCluster};
pub use ring::HashRing;
