//! # aging-chaos
//!
//! Seed-deterministic fault injection for the `holder-aging` streaming
//! pipeline — the hostile counterpart of the clean simulator feeds.
//!
//! The online detectors of [`aging_stream`] exist to catch software aging
//! on *real* monitor streams, and real streams misbehave: exporters emit
//! NaN during restarts, transports duplicate and replay, clocks step and
//! skew, counters wrap, scrapes stall, log files arrive truncated. This
//! crate makes every one of those defects a first-class, reproducible
//! input:
//!
//! - [`plan`] — the declarative [`ChaosPlan`]: composable
//!   [`InjectorSpec`]s with per-injector rate, onset window and a master
//!   seed. A plan plus a seed pins the whole fault stream, bit for bit.
//! - [`inject`] — the per-stream [`inject::ChaosEngine`] and its exact
//!   [`inject::InjectionCounters`] bookkeeping
//!   (`emitted == offered - stalled + duplicated + replayed`, always).
//! - [`source`] — [`ChaosSource`], wrapping any
//!   [`aging_stream::SampleSource`].
//! - [`csv`] — structural log damage ([`csv::garble_csv`]) for the lossy
//!   CSV ingestion path.
//! - [`wire`] — byte-stream damage for the `aging-serve` TCP protocol:
//!   frame truncation, CRC-defeating bit flips, pathological write
//!   fragmentation and abrupt disconnects, all replayable from a seed.
//! - [`harness`] — the differential robustness harness:
//!   [`harness::run_differential`] runs a fleet clean vs. chaos-wrapped
//!   and hard-asserts the robustness contract (no panic, exact telemetry,
//!   ordered watermarks, cross-thread determinism, budgeted degradation).
//!
//! # Example
//!
//! ```
//! use aging_chaos::{ChaosPlan, ChaosSource, InjectorSpec};
//! use aging_stream::source::{CsvReplaySource, SampleSource};
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! let csv = "time,free\n0,100\n30,99\n60,98\n90,97\n120,96\n";
//! let inner = CsvReplaySource::from_csv_str(csv, "time", "free")?;
//! let plan = ChaosPlan::new(42).with(InjectorSpec::nan_bursts(0.5, 2));
//! let mut hostile = ChaosSource::new(inner, &plan);
//! let mut n = 0;
//! while let Some(_sample) = hostile.next_sample()? {
//!     n += 1;
//! }
//! assert_eq!(n, 5); // NaN bursts corrupt values, never lose samples
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csv;
pub mod harness;
pub mod inject;
pub mod plan;
pub mod source;
pub mod wire;

pub use aging_timeseries::{Error, Result};

pub use csv::{garble_csv, CsvChaosConfig, CsvGarbleCounts};
pub use harness::{
    fleet_perturber, run_differential, ChaosPerturber, DifferentialReport, DifferentialRow,
    InjectionTotals, Tolerance,
};
pub use inject::{ChaosEngine, InjectionCounters};
pub use plan::{ActiveWindow, ChaosPlan, InjectorSpec};
pub use source::ChaosSource;
pub use wire::{WireChaos, WireFault, WirePlan, WriteOp};
