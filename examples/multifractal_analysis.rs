//! Multifractal analysis walkthrough: validate the estimators on synthetic
//! ground truth, then measure how the multifractality of a simulated
//! memory trace intensifies with age (the paper's second observation).
//!
//! Run with: `cargo run --release --example multifractal_analysis`

use aging_core::progression::{progression, ProgressionConfig};
use aging_fractal::spectrum::{leader_cumulants, mfdfa, MfdfaConfig};
use holder_aging::prelude::*;

fn main() -> Result<()> {
    // ── 1. Ground-truth validation ────────────────────────────────────
    println!("── Hurst estimation on fractional Gaussian noise ──");
    println!("{:>6} {:>8} {:>8} {:>8}", "true H", "DFA", "R/S", "aggvar");
    for (i, &h) in [0.3, 0.5, 0.7, 0.9].iter().enumerate() {
        let x = generate::fgn(8192, h, 100 + i as u64)?;
        println!(
            "{:>6.1} {:>8.3} {:>8.3} {:>8.3}",
            h,
            hurst::dfa(&x, 1)?.hurst,
            hurst::rescaled_range(&x)?.hurst,
            hurst::aggregated_variance(&x)?.hurst,
        );
    }

    println!("\n── Multifractal spectrum: monofractal vs cascade ──");
    let mono = generate::fbm(8192, 0.6, 11)?;
    let cascade = generate::binomial_cascade(13, 0.3, true, 12)?;
    let mono_mf = mfdfa(
        &mono
            .iter()
            .zip(&mono[1..])
            .map(|(a, b)| b - a)
            .collect::<Vec<_>>(),
        &MfdfaConfig::default(),
    )?;
    let multi_mf = mfdfa(&cascade, &MfdfaConfig::default())?;
    println!("fBm(H=0.6) increments : width = {:.3}", mono_mf.width());
    println!("binomial cascade      : width = {:.3}", multi_mf.width());
    let lc_mono = leader_cumulants(&mono, Wavelet::Daubechies6, 9, 3)?;
    println!(
        "fBm leader cumulants  : c1 = {:.3}, c2 = {:.3}",
        lc_mono.c1, lc_mono.c2
    );

    println!("\ncascade spectrum (α, f(α)):");
    for p in multi_mf.spectrum.iter().step_by(2) {
        println!("  q={:>5.1}  α={:.3}  f={:.3}", p.q, p.alpha, p.f);
    }

    // ── 2. Aging progression on a simulated trace ─────────────────────
    println!("\n── Multifractality progression of an aging machine ──");
    let mut scenario = Scenario::aging_web_server(7);
    scenario.machine.sample_period_secs = 10.0; // finer sampling: more data
    let report = simulate(&scenario, 40.0 * 3600.0)?;
    match report.first_crash() {
        Some(c) => println!("machine crashed at {} ({})", c.time, c.cause),
        None => println!("machine still alive at horizon"),
    }
    let series = report.log.series(Counter::AvailableBytes)?;
    let prog = progression(series.values(), &ProgressionConfig::default())?;
    println!(
        "{:>8} {:>10} {:>12} {:>8} {:>8}",
        "segment", "mean h", "width f(α)", "h(2)", "c2"
    );
    for (i, seg) in prog.iter().enumerate() {
        println!(
            "{:>8} {:>10.3} {:>12.3} {:>8} {:>8}",
            format!("{}/{}", i + 1, prog.len()),
            seg.mean_holder,
            seg.spectrum_width,
            seg.hurst.map_or("-".into(), |v| format!("{v:.3}")),
            seg.c2.map_or("-".into(), |v| format!("{v:.3}")),
        );
    }
    println!(
        "\naging signature (late-life regularity below early-life): {}",
        aging_core::progression::is_aging_signature(&prog)
    );
    Ok(())
}
