//! Error types shared by all time-series operations.

use std::fmt;

/// Errors produced by time-series constructors and analyses.
///
/// Every fallible public function in this crate (and in the crates layered
/// on top of it) reports failures through this type, so callers can match on
/// a single enum across the whole workspace.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// The input series is empty but the operation requires data.
    Empty,
    /// The input has fewer samples than the operation needs.
    TooShort {
        /// Number of samples required by the operation.
        required: usize,
        /// Number of samples actually supplied.
        actual: usize,
    },
    /// Two inputs that must have equal length do not.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A numeric parameter is outside its documented domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The data contain NaN or infinite values where finite values are
    /// required.
    NonFinite {
        /// Index of the first non-finite sample.
        index: usize,
    },
    /// A numerical procedure failed to produce a usable result (e.g. a
    /// singular system in least squares, or a degenerate log–log fit).
    Numerical(String),
    /// An I/O operation failed (reading a trace, writing a CSV). The
    /// message is the underlying [`std::io::Error`]'s description; the
    /// source is not retained so the enum stays `Clone + PartialEq`.
    Io(String),
}

impl Error {
    /// Convenience constructor for [`Error::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        Error::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }

    /// Checks that `data` has at least `required` samples.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] or [`Error::TooShort`] when the check fails.
    pub fn require_len(data: &[f64], required: usize) -> Result<(), Error> {
        if data.is_empty() {
            return Err(Error::Empty);
        }
        if data.len() < required {
            return Err(Error::TooShort {
                required,
                actual: data.len(),
            });
        }
        Ok(())
    }

    /// Checks that every sample in `data` is finite.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] with the index of the first offending
    /// sample.
    pub fn require_finite(data: &[f64]) -> Result<(), Error> {
        match data.iter().position(|v| !v.is_finite()) {
            Some(index) => Err(Error::NonFinite { index }),
            None => Ok(()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Empty => write!(f, "input series is empty"),
            Error::TooShort { required, actual } => write!(
                f,
                "input series too short: {actual} samples, {required} required"
            ),
            Error::LengthMismatch { left, right } => {
                write!(f, "input length mismatch: {left} vs {right}")
            }
            Error::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            Error::NonFinite { index } => {
                write!(f, "non-finite sample at index {index}")
            }
            Error::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            Error::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn require_len_empty() {
        assert_eq!(Error::require_len(&[], 1), Err(Error::Empty));
    }

    #[test]
    fn require_len_too_short() {
        assert_eq!(
            Error::require_len(&[1.0, 2.0], 3),
            Err(Error::TooShort {
                required: 3,
                actual: 2
            })
        );
    }

    #[test]
    fn require_len_ok() {
        assert_eq!(Error::require_len(&[1.0, 2.0, 3.0], 3), Ok(()));
    }

    #[test]
    fn require_finite_detects_nan() {
        assert_eq!(
            Error::require_finite(&[0.0, f64::NAN]),
            Err(Error::NonFinite { index: 1 })
        );
        assert_eq!(
            Error::require_finite(&[f64::INFINITY]),
            Err(Error::NonFinite { index: 0 })
        );
    }

    #[test]
    fn require_finite_ok() {
        assert_eq!(Error::require_finite(&[0.0, -1.5, 3.0]), Ok(()));
    }

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            Error::Empty,
            Error::TooShort {
                required: 4,
                actual: 2,
            },
            Error::LengthMismatch { left: 1, right: 2 },
            Error::invalid("q", "must be positive"),
            Error::NonFinite { index: 7 },
            Error::Numerical("singular matrix".into()),
            Error::Io("file not found".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such trace");
        let e: Error = io.into();
        assert_eq!(e, Error::Io("no such trace".into()));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
