//! Smoke test for the line-delimited text fallback protocol: a raw TCP
//! client opens with the `TEXT\n` preamble, feeds a depleting machine,
//! queries status / machine / alarm history, and says goodbye — all
//! without ever touching the binary codec. A second connection earns a
//! quarantine by talking nonsense.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use aging_serve::{ServeConfig, Server};

fn connect_text(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read line");
    line.trim_end().to_string()
}

#[test]
fn text_session_feeds_queries_and_closes() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig::new(aging_serve::test_detectors()),
    )
    .expect("bind");
    let (mut stream, mut reader) = connect_text(server.local_addr());

    // Preamble + hello. The depleting feed mirrors the pipeline unit
    // test that provably alarms under `test_detectors()`.
    let mut script = String::from("TEXT\nhello smoke\n");
    for i in 0..400 {
        script.push_str(&format!(
            "sample 7 available_bytes {} {}\n",
            i as f64 * 5.0,
            1e6 - 400.0 * i as f64
        ));
    }
    script.push_str("done 7\nstatus\nmachine 7\nalarms 0\nbye\n");
    stream.write_all(script.as_bytes()).expect("write script");

    let banner = read_line(&mut reader);
    assert!(
        banner.starts_with("ok aging-serve"),
        "unexpected banner {banner:?}"
    );
    for i in 0..400 {
        assert_eq!(read_line(&mut reader), "ok", "sample {i} not acked");
    }
    assert_eq!(read_line(&mut reader), "ok", "done not acked");

    let status = read_line(&mut reader);
    assert!(
        status.starts_with('{') && status.contains("\"machines_finished\":1"),
        "unexpected status json {status:?}"
    );
    let machine = read_line(&mut reader);
    assert!(
        machine.starts_with('{') && machine.contains("\"machine_id\":7"),
        "unexpected machine json {machine:?}"
    );

    let header = read_line(&mut reader);
    let total: u64 = header
        .strip_prefix("alarms ")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unexpected alarms header {header:?}"));
    assert!(total >= 2, "expected detector + fused alarm, got {total}");
    let mut saw_machine_alarm = false;
    for _ in 0..total {
        let event = read_line(&mut reader);
        assert!(
            event.starts_with("event 7 "),
            "unexpected event line {event:?}"
        );
        saw_machine_alarm |= event.contains("machine-alarm");
    }
    assert!(
        saw_machine_alarm,
        "fused machine alarm missing from history"
    );
    assert_eq!(read_line(&mut reader), "end");
    assert_eq!(read_line(&mut reader), "ok bye");

    let report = server.shutdown();
    assert_eq!(report.wire.session_panics, 0);
    assert_eq!(report.wire.text_sessions, 1);
    assert_eq!(report.wire.quarantined, 0);
    assert_eq!(report.wire.records, 400);
}

#[test]
fn text_gibberish_earns_quarantine() {
    let server = Server::bind(
        "127.0.0.1:0",
        ServeConfig::new(aging_serve::test_detectors()),
    )
    .expect("bind");
    let (mut stream, mut reader) = connect_text(server.local_addr());

    stream
        .write_all(b"TEXT\nhello smoke\nfrobnicate\nsample nope\nbogus 1 2 3\n")
        .expect("write script");
    assert!(read_line(&mut reader).starts_with("ok aging-serve"));
    for _ in 0..3 {
        let line = read_line(&mut reader);
        assert!(line.starts_with("err "), "expected strike, got {line:?}");
    }
    // Three consecutive strikes (the default `quarantine_after`) close
    // the session with an explicit reason.
    assert_eq!(read_line(&mut reader), "err quarantined");

    let report = server.shutdown();
    assert_eq!(report.wire.session_panics, 0);
    assert_eq!(report.wire.quarantined, 1);
    assert_eq!(
        report.wire.corrupt_streams, 0,
        "gibberish is not framing loss"
    );
    assert_eq!(report.wire.malformed_frames, 3);
}
