//! The differential robustness harness: the same fleet, clean vs.
//! chaos-wrapped, with the robustness contract hard-asserted.
//!
//! # The robustness contract
//!
//! For any valid [`ChaosPlan`], a chaos-wrapped fleet run must:
//!
//! 1. **never panic** — every run executes under `catch_unwind`;
//! 2. **keep telemetry exact** — `ingested == accepted +
//!    dropped_non_finite + dropped_out_of_order` at the fleet level, and
//!    the gate must have ingested *exactly* what the injection engines
//!    emitted;
//! 3. **preserve watermark ordering** — the released event stream stays
//!    sorted by time and the reorder heap drains to zero;
//! 4. **stay deterministic** — the same plan seed reproduces bit-identical
//!    events, outcomes and counters across runs *and shard counts*;
//! 5. **leave the simulation untouched** — injection happens downstream
//!    of the machines, so crash times and sample counts equal the clean
//!    run's;
//! 6. **degrade gracefully** — crash-warning lead time may shrink under
//!    injection, but only within the caller's quantified [`Tolerance`];
//!    silence (missed detection) and noise (new false alarms) are budgeted,
//!    never unlimited.
//!
//! Violations surface as [`Error::Numerical`] with a message naming the
//! broken clause, which is exactly what CI prints on failure.

use std::sync::{Arc, Mutex};

use aging_memsim::{Counter, Scenario};
use aging_stream::supervisor::PerturberFactory;
use aging_stream::{FleetConfig, FleetReport, FleetSupervisor, SamplePerturber, StreamSample};
use aging_timeseries::{Error, Result};

use crate::inject::{ChaosEngine, InjectionCounters};
use crate::plan::ChaosPlan;

/// Thread-safe accumulator for fleet-wide injection totals.
///
/// Each [`ChaosPerturber`] merges its engine's counters here when its
/// shard retires it, so after `FleetSupervisor::run` returns the total is
/// complete.
#[derive(Debug, Clone, Default)]
pub struct InjectionTotals(Arc<Mutex<InjectionCounters>>);

impl InjectionTotals {
    /// The totals accumulated so far.
    pub fn snapshot(&self) -> InjectionCounters {
        *self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn merge(&self, counters: &InjectionCounters) {
        self.0
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .merge(counters);
    }
}

/// A [`SamplePerturber`] driving one stream's [`ChaosEngine`] inside the
/// fleet supervisor.
#[derive(Debug)]
pub struct ChaosPerturber {
    engine: ChaosEngine,
    totals: InjectionTotals,
}

impl SamplePerturber for ChaosPerturber {
    fn perturb(&mut self, raw: StreamSample, out: &mut Vec<StreamSample>) {
        self.engine.feed(raw, out);
    }
}

impl Drop for ChaosPerturber {
    fn drop(&mut self) {
        self.totals.merge(self.engine.counters());
    }
}

/// Builds a supervisor perturber factory from a plan, plus the shared
/// totals it reports into.
///
/// Stream keys are `(machine_index << 8) | counter_index`, so every
/// `(machine, counter)` stream draws an independent, individually
/// reproducible fault sequence regardless of sharding.
///
/// # Errors
///
/// Propagates [`ChaosPlan::validate`].
pub fn fleet_perturber(plan: &ChaosPlan) -> Result<(PerturberFactory, InjectionTotals)> {
    plan.validate()?;
    let totals = InjectionTotals::default();
    let plan = plan.clone();
    let shared = totals.clone();
    let factory: PerturberFactory = Arc::new(move |machine_index, counter: Counter| {
        let counter_index = Counter::ALL
            .iter()
            .position(|&c| c == counter)
            .unwrap_or(Counter::ALL.len()) as u64;
        let key = ((machine_index as u64) << 8) | counter_index;
        Box::new(ChaosPerturber {
            engine: ChaosEngine::new(&plan, key),
            totals: shared.clone(),
        })
    });
    Ok((factory, totals))
}

/// Quantified degradation budget for the differential checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Machines that alarmed clean but may stay silent under chaos.
    pub max_missed_detections: usize,
    /// How much crash-warning lead time may shrink, seconds.
    pub max_lead_loss_secs: f64,
    /// Machines that may newly alarm under chaos without crashing.
    pub max_extra_false_alarms: usize,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            max_missed_detections: 0,
            max_lead_loss_secs: 1800.0,
            max_extra_false_alarms: 1,
        }
    }
}

/// Per-machine outcome of the clean/chaos comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialRow {
    /// Scenario name.
    pub scenario: String,
    /// Crash time (identical clean/chaos by contract), seconds.
    pub crash_time_secs: Option<f64>,
    /// Crash-warning lead time in the clean run, seconds.
    pub clean_lead_secs: Option<f64>,
    /// Crash-warning lead time under injection, seconds.
    pub chaos_lead_secs: Option<f64>,
}

/// Everything a differential sweep produced.
#[derive(Debug, Clone)]
pub struct DifferentialReport {
    /// Per-machine comparison rows, by machine index.
    pub rows: Vec<DifferentialRow>,
    /// The clean reference run.
    pub clean: FleetReport,
    /// The chaos-wrapped run (first of the determinism replicas).
    pub chaos: FleetReport,
    /// Fleet-wide injection totals of the chaos run.
    pub injected: InjectionCounters,
}

impl DifferentialReport {
    /// A plain-text comparison table for logs and experiment output.
    pub fn table(&self) -> String {
        let mut out = String::from(
            "machine                          crash[s]   lead clean[s]   lead chaos[s]\n",
        );
        for row in &self.rows {
            let fmt = |v: Option<f64>| match v {
                Some(x) => format!("{x:>10.0}"),
                None => format!("{:>10}", "-"),
            };
            out.push_str(&format!(
                "{:<32} {}      {}      {}\n",
                row.scenario,
                fmt(row.crash_time_secs),
                fmt(row.clean_lead_secs),
                fmt(row.chaos_lead_secs),
            ));
        }
        out
    }
}

/// Runs the fleet under `catch_unwind`, converting panics into errors —
/// robustness-contract clause 1.
fn run_guarded(cfg: FleetConfig, scenarios: &[Scenario], label: &str) -> Result<FleetReport> {
    let supervisor = FleetSupervisor::new(cfg)?;
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| supervisor.run(scenarios))) {
        Ok(result) => result,
        Err(panic) => {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Err(Error::Numerical(format!(
                "{label}: fleet run panicked: {msg}"
            )))
        }
    }
}

/// Contract clauses 2 and 3 on one report: exact counter reconciliation,
/// ordered events, drained reorder heap.
fn check_invariants(report: &FleetReport, label: &str) -> Result<()> {
    let s = &report.status.ingestion;
    let accounted = s.accepted + s.dropped_non_finite + s.dropped_out_of_order;
    if s.ingested != accounted {
        return Err(Error::Numerical(format!(
            "{label}: telemetry does not reconcile: ingested {} != accepted {} + dropped {}",
            s.ingested,
            s.accepted,
            s.dropped_non_finite + s.dropped_out_of_order,
        )));
    }
    if let Some(w) = report
        .events
        .windows(2)
        .find(|w| w[0].time_secs > w[1].time_secs)
    {
        return Err(Error::Numerical(format!(
            "{label}: event stream out of order at t={} > t={}",
            w[0].time_secs, w[1].time_secs
        )));
    }
    if report.status.alarm_queue_depth != 0 {
        return Err(Error::Numerical(format!(
            "{label}: reorder heap not drained ({} pending)",
            report.status.alarm_queue_depth
        )));
    }
    Ok(())
}

/// Runs `scenarios` clean and chaos-wrapped through the full fleet
/// supervisor and hard-asserts the module-level robustness contract.
///
/// The chaos configuration is executed three times — twice at the base
/// shard count and once at a different one — to prove clause 4
/// (bit-identical reproduction across runs and thread counts). `base`'s
/// own `perturb` hook is ignored; the clean run always feeds machines
/// straight through.
///
/// # Errors
///
/// Returns [`Error::Numerical`] naming the first violated contract
/// clause, and propagates plan/config validation and boot failures.
pub fn run_differential(
    scenarios: &[Scenario],
    base: &FleetConfig,
    plan: &ChaosPlan,
    tolerance: &Tolerance,
) -> Result<DifferentialReport> {
    if scenarios.is_empty() {
        return Err(Error::invalid("scenarios", "need at least one machine"));
    }
    plan.validate()?;

    let mut clean_cfg = base.clone();
    clean_cfg.perturb = None;
    let clean = run_guarded(clean_cfg, scenarios, "clean")?;
    check_invariants(&clean, "clean")?;

    let chaos_run = |shards: usize, label: &str| -> Result<(FleetReport, InjectionCounters)> {
        let (factory, totals) = fleet_perturber(plan)?;
        let mut cfg = base.clone();
        cfg.shards = shards;
        cfg.perturb = Some(factory);
        let report = run_guarded(cfg, scenarios, label)?;
        Ok((report, totals.snapshot()))
    };

    let (chaos, injected) = chaos_run(base.shards, "chaos")?;
    check_invariants(&chaos, "chaos")?;

    // Clause 2b: the gates ingested exactly what the engines emitted.
    if chaos.status.ingestion.ingested != injected.emitted {
        return Err(Error::Numerical(format!(
            "chaos: gate ingested {} but engines emitted {}",
            chaos.status.ingestion.ingested, injected.emitted
        )));
    }

    // Clause 4: bit-identical replay, same and different shard counts.
    let (replica, replica_injected) = chaos_run(base.shards, "chaos-replica")?;
    let alt_shards = scenarios.len().max(1);
    let (resharded, resharded_injected) = chaos_run(alt_shards, "chaos-resharded")?;
    for (other, other_injected, label) in [
        (&replica, &replica_injected, "replica"),
        (&resharded, &resharded_injected, "resharded"),
    ] {
        if other.events != chaos.events {
            return Err(Error::Numerical(format!(
                "chaos {label}: event stream not reproducible ({} vs {} events)",
                other.events.len(),
                chaos.events.len()
            )));
        }
        if other.outcomes != chaos.outcomes {
            return Err(Error::Numerical(format!(
                "chaos {label}: outcomes not reproducible"
            )));
        }
        if *other_injected != injected {
            return Err(Error::Numerical(format!(
                "chaos {label}: injection counters not reproducible"
            )));
        }
        if other.status.ingestion != chaos.status.ingestion {
            return Err(Error::Numerical(format!(
                "chaos {label}: ingestion telemetry not reproducible"
            )));
        }
    }

    // Clause 5: injection is downstream of the simulation.
    if chaos.outcomes != clean.outcomes {
        return Err(Error::Numerical(
            "chaos run changed machine outcomes (crash times / sample counts)".into(),
        ));
    }

    // Clause 6: graceful, budgeted degradation.
    let mut missed = 0usize;
    let mut false_alarms = 0usize;
    let mut rows = Vec::with_capacity(scenarios.len());
    for (i, scenario) in scenarios.iter().enumerate() {
        let crash = clean.outcomes[i].crash_time_secs;
        let clean_lead = clean.lead_time_secs(i);
        let chaos_lead = chaos.lead_time_secs(i);
        match (clean_lead, chaos_lead) {
            (Some(cl), Some(ch)) if ch < cl - tolerance.max_lead_loss_secs => {
                return Err(Error::Numerical(format!(
                    "{}: lead time degraded beyond tolerance: clean {cl:.0}s, \
                     chaos {ch:.0}s (budget {:.0}s)",
                    scenario.name, tolerance.max_lead_loss_secs
                )));
            }
            (Some(_), None) => missed += 1,
            _ => {}
        }
        if crash.is_none() {
            let clean_alarmed = clean.machine_alarms().any(|e| e.machine_index == i);
            let chaos_alarmed = chaos.machine_alarms().any(|e| e.machine_index == i);
            if chaos_alarmed && !clean_alarmed {
                false_alarms += 1;
            }
        }
        rows.push(DifferentialRow {
            scenario: scenario.name.clone(),
            crash_time_secs: crash,
            clean_lead_secs: clean_lead,
            chaos_lead_secs: chaos_lead,
        });
    }
    if missed > tolerance.max_missed_detections {
        return Err(Error::Numerical(format!(
            "{missed} detections missed under chaos (budget {})",
            tolerance.max_missed_detections
        )));
    }
    if false_alarms > tolerance.max_extra_false_alarms {
        return Err(Error::Numerical(format!(
            "{false_alarms} extra false alarms under chaos (budget {})",
            tolerance.max_extra_false_alarms
        )));
    }

    Ok(DifferentialReport {
        rows,
        clean,
        chaos,
        injected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_perturber_keys_streams_independently() {
        let plan = ChaosPlan::nasty(5);
        let (factory, totals) = fleet_perturber(&plan).unwrap();
        let mut a = factory(0, Counter::AvailableBytes);
        let mut b = factory(1, Counter::AvailableBytes);
        let raw = StreamSample {
            time_secs: 0.0,
            value: 1e6,
        };
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for i in 0..500 {
            let s = StreamSample {
                time_secs: raw.time_secs + i as f64 * 5.0,
                ..raw
            };
            a.perturb(s, &mut out_a);
            b.perturb(s, &mut out_b);
        }
        assert_ne!(out_a, out_b, "machines must draw independent faults");
        // Totals only land once the perturbers retire.
        assert_eq!(totals.snapshot().offered, 0);
        drop(a);
        assert_eq!(totals.snapshot().offered, 500);
        drop(b);
        assert_eq!(totals.snapshot().offered, 1000);
    }

    #[test]
    fn invalid_plans_are_rejected_up_front() {
        let bad = ChaosPlan::new(1).with(crate::plan::InjectorSpec::spikes(2.0, 4.0));
        assert!(fleet_perturber(&bad).is_err());
    }
}
