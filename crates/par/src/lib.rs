//! # aging-par
//!
//! Deterministic parallel execution for the `holder-aging` workspace: a
//! tiny chunked work-distribution layer built on scoped threads, with no
//! external dependencies and no `unsafe`.
//!
//! # Determinism contract
//!
//! Every operation on a [`Pool`] is **bit-identical to its sequential
//! counterpart, regardless of thread count**:
//!
//! - work is split into contiguous index *chunks*; workers claim chunks
//!   dynamically (an atomic counter — the chunked analogue of work
//!   stealing) but every result lands in its input's slot, so the output
//!   order is the input order;
//! - no reductions are performed across threads — merging is a plain
//!   in-order concatenation on the calling thread, so there is no
//!   floating-point reduction-order drift;
//! - fallible maps report the error of the **smallest failing index**, the
//!   same error a sequential loop that runs to completion would pick.
//!
//! The hot kernels (`holder_trace`, CWT, surrogate ensembles, fleet
//! scoring) parallelise over items that are mutually independent, so the
//! per-item arithmetic is untouched and the contract holds end to end.
//! Parity is enforced by proptests in `aging-fractal` and `aging-core`
//! that compare 1-, 2- and 7-thread pools element for element.
//!
//! # Thread-count resolution
//!
//! [`Pool::global`] resolves its size once per process:
//!
//! 1. `AGING_THREADS` environment variable, when set to a positive
//!    integer (`AGING_THREADS=1` forces the inline sequential path);
//! 2. otherwise [`std::thread::available_parallelism`].
//!
//! Explicit sizes ([`Pool::new`]) always win over the environment; the
//! `*_in` function variants across the workspace take a `&Pool` for
//! callers that need per-call control (tests, benchmarks, the `repro e12`
//! speedup experiment).
//!
//! # Examples
//!
//! ```
//! use aging_par::Pool;
//!
//! let pool = Pool::new(4);
//! let squares = pool.map(&[1i64, 2, 3, 4, 5], |&v| v * v);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//!
//! // Identical output on any pool size — including the sequential one.
//! assert_eq!(squares, Pool::sequential().map(&[1i64, 2, 3, 4, 5], |&v| v * v));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Name of the environment variable that sizes the global pool.
pub const THREADS_ENV: &str = "AGING_THREADS";

/// Minimum number of items a chunk carries (amortises the per-chunk
/// scheduling cost for cheap per-item work).
const MIN_CHUNK: usize = 16;

/// Chunks issued per worker thread; > 1 so threads that finish early can
/// claim more work (dynamic load balancing).
const CHUNKS_PER_THREAD: usize = 4;

/// A deterministic chunked thread pool.
///
/// The pool is a *policy* object — it records how many worker threads an
/// operation may use. Threads themselves are scoped to each call
/// ([`std::thread::scope`]), so a `Pool` is trivially cheap to create,
/// `Copy`-free but `Clone`, and never leaks OS resources.
#[derive(Debug, Clone)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool that may use up to `threads` worker threads. `0` resolves
    /// the automatic size (environment, then hardware) like
    /// [`Pool::global`] does.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            auto_threads()
        } else {
            threads
        };
        Pool { threads }
    }

    /// The single-threaded pool: every operation runs inline on the
    /// calling thread. Useful as an explicit "no parallelism" choice and
    /// for parity tests.
    pub fn sequential() -> Self {
        Pool { threads: 1 }
    }

    /// The process-wide shared pool, sized once from `AGING_THREADS` (a
    /// positive integer) or, when unset or invalid, from
    /// [`std::thread::available_parallelism`].
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(0))
    }

    /// Number of worker threads operations on this pool may use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The scheduler core: maps `f` over `0..n` by contiguous index
    /// ranges of at least `min_chunk` items, concatenating the per-range
    /// outputs in index order.
    fn chunked<U, F>(&self, n: usize, min_chunk: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(std::ops::Range<usize>) -> Vec<U> + Sync,
    {
        let check = |range: std::ops::Range<usize>, out: &Vec<U>| {
            assert_eq!(
                out.len(),
                range.len(),
                "map_range closure returned {} results for a {}-item range",
                out.len(),
                range.len(),
            );
        };
        if self.threads <= 1 || n <= min_chunk {
            let out = f(0..n);
            check(0..n, &out);
            return out;
        }

        let chunk = (n.div_ceil(self.threads * CHUNKS_PER_THREAD)).max(min_chunk);
        let num_chunks = n.div_ceil(chunk);
        let workers = self.threads.min(num_chunks);
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Vec<U>>>> = Mutex::new((0..num_chunks).map(|_| None).collect());

        std::thread::scope(|scope| {
            let worker = || loop {
                let c = next.fetch_add(1, Ordering::Relaxed);
                if c >= num_chunks {
                    return;
                }
                let range = c * chunk..((c + 1) * chunk).min(n);
                let out = f(range.clone());
                check(range, &out);
                slots.lock().expect("result mutex poisoned")[c] = Some(out);
            };
            // The calling thread is worker 0; spawn the remainder.
            for _ in 1..workers {
                scope.spawn(worker);
            }
            worker();
        });

        let mut merged = Vec::with_capacity(n);
        for slot in slots.into_inner().expect("result mutex poisoned") {
            merged.extend(slot.expect("every chunk was claimed"));
        }
        merged
    }

    /// Maps `f` over `0..n` by contiguous index ranges, concatenating the
    /// per-range outputs in index order.
    ///
    /// `f` receives a range and must return exactly `range.len()` results
    /// for it; ranges partition `0..n`, so the output has length `n` and
    /// `output[i]` is produced by the range containing `i`. This is the
    /// building block for *fine-grained* kernels (cheap per-index work,
    /// large `n`) that carry per-chunk scratch buffers; ranges are at
    /// least 16 items so scheduling cost stays amortised.
    ///
    /// # Panics
    ///
    /// Panics when `f` returns the wrong number of results for a range,
    /// and propagates panics raised inside `f`.
    pub fn map_range<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(std::ops::Range<usize>) -> Vec<U> + Sync,
    {
        self.chunked(n, MIN_CHUNK, f)
    }

    /// Maps `f` over the index range `0..n`, returning the results in
    /// index order.
    ///
    /// Indices are treated as *coarse* tasks (chunks shrink to a single
    /// index when threads outnumber work), so even a handful of expensive
    /// items — CWT scales, surrogate replicas, fleet reports — spread
    /// across the pool.
    pub fn map_indexed<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        self.chunked(n, 1, |range| range.map(&f).collect())
    }

    /// Maps `f` over `items`, returning the results in input order.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }

    /// Fallible [`Pool::map`]: on failure, returns the error of the
    /// smallest failing input index (sequential-loop-equivalent and
    /// independent of thread interleaving).
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-index) error `f` produced.
    pub fn try_map<T, U, E, F>(&self, items: &[T], f: F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(&T) -> Result<U, E> + Sync,
    {
        let results = self.map(items, f);
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r?);
        }
        Ok(out)
    }

    /// Fallible [`Pool::map_indexed`] with the same lowest-index error
    /// guarantee as [`Pool::try_map`].
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-index) error `f` produced.
    pub fn try_map_indexed<U, E, F>(&self, n: usize, f: F) -> Result<Vec<U>, E>
    where
        U: Send,
        E: Send,
        F: Fn(usize) -> Result<U, E> + Sync,
    {
        let results = self.map_indexed(n, f);
        let mut out = Vec::with_capacity(results.len());
        for r in results {
            out.push(r?);
        }
        Ok(out)
    }
}

impl Default for Pool {
    /// The automatic size — same resolution as [`Pool::global`].
    fn default() -> Self {
        Pool::new(0)
    }
}

/// Resolves the automatic thread count: `AGING_THREADS` when it parses as
/// a positive integer, otherwise the hardware parallelism (≥ 1).
fn auto_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> Vec<Pool> {
        vec![Pool::sequential(), Pool::new(2), Pool::new(7)]
    }

    #[test]
    fn map_preserves_order_on_every_pool_size() {
        let items: Vec<i64> = (0..1000).collect();
        let expected: Vec<i64> = items.iter().map(|v| v * 3 - 1).collect();
        for pool in pools() {
            assert_eq!(pool.map(&items, |&v| v * 3 - 1), expected);
        }
    }

    #[test]
    fn map_indexed_matches_sequential() {
        let expected: Vec<usize> = (0..513).map(|i| i * i).collect();
        for pool in pools() {
            assert_eq!(pool.map_indexed(513, |i| i * i), expected);
        }
    }

    #[test]
    fn map_range_chunks_partition_the_index_space() {
        for pool in pools() {
            let out = pool.map_range(1003, |range| range.collect::<Vec<usize>>());
            assert_eq!(out, (0..1003).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn float_results_are_bit_identical_across_pool_sizes() {
        // Transcendental per-item work: any reduction-order drift or chunk
        // dependence would show up as bit differences.
        let f = |i: usize| ((i as f64) * 0.7311).sin().exp().ln_1p();
        let baseline = Pool::sequential().map_indexed(4096, f);
        for pool in [Pool::new(2), Pool::new(3), Pool::new(7), Pool::new(16)] {
            let out = pool.map_indexed(4096, f);
            assert_eq!(out.len(), baseline.len());
            for (a, b) in baseline.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for pool in pools() {
            assert_eq!(pool.map(&[] as &[i32], |&v| v), Vec::<i32>::new());
            assert_eq!(pool.map(&[42], |&v| v + 1), vec![43]);
        }
    }

    #[test]
    fn try_map_collects_all_successes() {
        for pool in pools() {
            let out: Result<Vec<i64>, String> = pool.try_map(&[1i64, 2, 3], |&v| Ok(v * 2));
            assert_eq!(out.unwrap(), vec![2, 4, 6]);
        }
    }

    #[test]
    fn try_map_reports_lowest_index_error() {
        let items: Vec<usize> = (0..500).collect();
        for pool in pools() {
            let err = pool
                .try_map(&items, |&i| {
                    if i == 137 || i == 401 {
                        Err(format!("bad {i}"))
                    } else {
                        Ok(i)
                    }
                })
                .unwrap_err();
            assert_eq!(err, "bad 137");
        }
    }

    #[test]
    fn zero_threads_resolves_to_at_least_one() {
        assert!(Pool::new(0).threads() >= 1);
        assert!(Pool::default().threads() >= 1);
        assert!(Pool::global().threads() >= 1);
    }

    #[test]
    fn sequential_pool_has_one_thread() {
        assert_eq!(Pool::sequential().threads(), 1);
    }

    #[test]
    #[should_panic(expected = "map_range closure returned")]
    fn map_range_length_mismatch_panics() {
        Pool::sequential().map_range(8, |_| vec![0u8; 3]);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(4).map_indexed(1000, |i| {
                assert!(i != 700, "boom");
                i
            })
        });
        assert!(result.is_err());
    }
}
