//! Wavelet transform throughput benchmarks.

use aging_fractal::generate;
use aging_wavelet::{dwt, modwt, Wavelet, WaveletLeaders};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_transforms(c: &mut Criterion) {
    let signal = generate::fgn(4096, 0.7, 1).unwrap();
    let mut group = c.benchmark_group("wavelet");
    group.throughput(Throughput::Elements(4096));
    for w in [Wavelet::Haar, Wavelet::Daubechies4, Wavelet::Daubechies12] {
        group.bench_with_input(BenchmarkId::new("dwt6", w.to_string()), &w, |b, &w| {
            b.iter(|| dwt(std::hint::black_box(&signal), w, 6).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("modwt4", w.to_string()), &w, |b, &w| {
            b.iter(|| modwt(std::hint::black_box(&signal), w, 4).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("leaders6", w.to_string()), &w, |b, &w| {
            b.iter(|| WaveletLeaders::compute(std::hint::black_box(&signal), w, 6).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
