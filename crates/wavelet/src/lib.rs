//! # aging-wavelet
//!
//! Wavelet substrate of the `holder-aging` workspace (reproduction of
//! *"Software Aging and Multifractality of Memory Resources"*, DSN 2003).
//!
//! Provides the transforms the multifractal analysis in `aging-fractal` is
//! built on:
//!
//! - [`Wavelet`] — orthogonal filter banks (Haar, Daubechies 4–12 taps),
//! - [`mod@dwt`] — decimated multi-level DWT with periodic extension,
//! - [`mod@modwt`] — maximal-overlap (undecimated, shift-invariant) transform
//!   for arbitrary-length monitor logs,
//! - [`cwt`](crate::cwt::cwt) — continuous transform (Mexican hat / real
//!   Morlet) for modulus-maxima inspection,
//! - [`WaveletLeaders`] — wavelet leaders, the basis of local Hölder and
//!   multifractal-spectrum estimation.
//!
//! # Examples
//!
//! ```
//! use aging_wavelet::{dwt, Wavelet, WaveletLeaders};
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
//! let dec = dwt(&signal, Wavelet::Daubechies4, 4)?;
//! let leaders = WaveletLeaders::from_decomposition(&dec)?;
//! assert_eq!(leaders.levels(), 4);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cwt;
pub mod denoise;
pub mod dwt;
pub mod filters;
pub mod leaders;
pub mod modwt;
pub mod variance;

pub use dwt::{dwt, Decomposition};
pub use filters::Wavelet;
pub use leaders::WaveletLeaders;
pub use modwt::{modwt, ModwtDecomposition};
