//! The aggregator node: merges per-shard watermarked alarm streams into
//! one global, byte-deterministic history.
//!
//! Each shard (an `aging-serve` server) releases its local alarm stream
//! in `(time, machine_id, seq)` order and advertises, with every
//! `AlarmsReply`, a watermark `W` meaning *"the first `total` events of
//! my history contain everything I will ever release at or below `W`"*
//! (`total` and `W` are computed under one engine lock, so the pair is
//! consistent). The aggregator keeps one cursor per shard, pulls each
//! stream chunk by chunk into a shared
//! [`WatermarkMerger`](aging_stream::merge::WatermarkMerger), and only
//! advances a shard's merger watermark to a reply's `W` once its cursor
//! has consumed that *same* reply's `total` events — at which point the
//! merger provably holds every event of that shard at or below `W`.
//! Events then leave the merger strictly below the minimum shard
//! watermark, keyed `(time, machine_id, per-shard stream position)`.
//!
//! Because every machine lives on exactly one shard and each shard's
//! stream is already in global key order for its own machines, the
//! k-way merge reproduces exactly the order an offline
//! [`FleetSupervisor`](aging_stream::supervisor::FleetSupervisor) run
//! over the whole fleet emits — the E16 parity invariant.
//!
//! A shard is *finished* once it advertises a `+inf` watermark (its
//! drain barrier: every machine done) and the cursor has its full
//! history. Connection errors are retried against the
//! [`ShardDirectory`], whose entries a supervisor may rewrite after
//! killing and re-binding a shard — the recovered server reconstructs
//! its engine bit-identically from its store, so the aggregator's
//! cursor stays valid across the crash.
//!
//! When a [`StoreConfig`] is given, every merged event is journaled
//! (one canonical-codec payload per entry) before it enters the report,
//! and snapshots compact the log on the store's cadence —
//! [`Aggregator::recover_events`] rebuilds the merged history from disk
//! for cluster-wide kill-and-recover.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use aging_serve::protocol::{decode_events, encode_event, encode_events};
use aging_serve::{ServeClient, ServeEvent};
use aging_store::{Store, StoreConfig};
use aging_stream::merge::{MergeKey, WatermarkMerger};
use aging_timeseries::{Error, Result};

/// Version byte prefixing aggregator snapshot blobs.
const SNAPSHOT_VERSION: u8 = 1;

/// Where each shard currently listens.
///
/// Interior-mutable so a supervising process can [`update`] a shard's
/// address after killing and re-binding it while an
/// [`Aggregator::run`] is mid-stream on another thread.
///
/// [`update`]: ShardDirectory::update
#[derive(Debug)]
pub struct ShardDirectory {
    addrs: Mutex<Vec<SocketAddr>>,
}

impl ShardDirectory {
    /// A directory over the given shard addresses (index = shard id).
    pub fn new(addrs: Vec<SocketAddr>) -> ShardDirectory {
        ShardDirectory {
            addrs: Mutex::new(addrs),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.addrs.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// `true` when the directory holds no shards.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current address of `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn addr(&self, shard: usize) -> SocketAddr {
        self.addrs.lock().unwrap_or_else(|p| p.into_inner())[shard]
    }

    /// Rewrites the address of `shard` — the rebind hook after a shard
    /// is killed and recovered on a fresh port.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    pub fn update(&self, shard: usize, addr: SocketAddr) {
        self.addrs.lock().unwrap_or_else(|p| p.into_inner())[shard] = addr;
    }
}

/// Aggregator knobs.
#[derive(Debug, Clone)]
pub struct AggregatorConfig {
    /// Sleep between poll sweeps that made no progress, ms.
    pub poll_ms: u64,
    /// Sleep before re-attempting a failed shard connection, ms.
    pub reconnect_backoff_ms: u64,
    /// Abort the run when no shard makes progress for this long —
    /// distinguishes "shard being recovered" (transient) from "shard
    /// gone for good" (the run would otherwise hang on its watermark).
    pub stall_timeout_secs: f64,
    /// Journal every merged event (and snapshot on cadence) to this
    /// store; [`Aggregator::recover_events`] reads it back. `None`
    /// aggregates purely in memory.
    pub store: Option<StoreConfig>,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            poll_ms: 10,
            reconnect_backoff_ms: 50,
            stall_timeout_secs: 30.0,
            store: None,
        }
    }
}

impl AggregatorConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive or
    /// non-finite stall timeout, or an invalid store config.
    pub fn validate(&self) -> Result<()> {
        if !(self.stall_timeout_secs > 0.0) || !self.stall_timeout_secs.is_finite() {
            return Err(Error::invalid(
                "stall_timeout_secs",
                "must be positive and finite",
            ));
        }
        if let Some(store) = &self.store {
            store
                .validate()
                .map_err(|e| Error::invalid("store", e.to_string()))?;
        }
        Ok(())
    }
}

/// What an aggregation run produced.
#[derive(Debug, Clone)]
pub struct AggregateReport {
    /// The merged global alarm history, in `(time, machine_id, shard
    /// stream position)` order — byte-comparable (via the canonical
    /// event codec) with an offline whole-fleet run.
    pub events: Vec<ServeEvent>,
    /// Events contributed by each shard.
    pub per_shard: Vec<u64>,
    /// `QueryAlarms` round trips performed.
    pub polls: u64,
    /// Re-connection attempts after a lost or failed shard connection.
    pub reconnects: u64,
    /// Wall-clock duration of the run, seconds.
    pub wall_secs: f64,
}

/// Per-shard pull state inside a run.
struct ShardPull {
    client: Option<ServeClient>,
    /// Events consumed so far == next `since` cursor.
    cursor: u64,
    /// Ever connected successfully (first attempts are not "reconnects").
    connected_once: bool,
    done: bool,
}

/// The aggregator node. See the module docs for the protocol.
#[derive(Debug)]
pub struct Aggregator {
    cfg: AggregatorConfig,
}

impl Aggregator {
    /// Builds an aggregator.
    ///
    /// # Errors
    ///
    /// Propagates [`AggregatorConfig::validate`].
    pub fn new(cfg: AggregatorConfig) -> Result<Aggregator> {
        cfg.validate()?;
        Ok(Aggregator { cfg })
    }

    /// Pulls every shard in `directory` to completion and returns the
    /// merged global history.
    ///
    /// Blocks until all shards have drained (advertised a `+inf`
    /// watermark with their full history consumed), so it is typically
    /// run on its own thread alongside the fleet drivers.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty directory or a
    /// journaling store that already holds state, [`Error::Io`] when no
    /// shard makes progress for
    /// [`stall_timeout_secs`](AggregatorConfig::stall_timeout_secs),
    /// and propagates store write failures. Connection and query errors
    /// against shards are *not* fatal — they trigger reconnects.
    pub fn run(&self, directory: &ShardDirectory) -> Result<AggregateReport> {
        let shard_count = directory.len();
        if shard_count == 0 {
            return Err(Error::invalid("directory", "need at least one shard"));
        }
        let mut store = match &self.cfg.store {
            Some(cfg) => {
                let (store, recovery) =
                    Store::open(cfg.clone()).map_err(|e| Error::Io(e.to_string()))?;
                if !recovery.is_empty() {
                    return Err(Error::invalid(
                        "store",
                        "aggregator store must start empty; use recover_events to read it",
                    ));
                }
                Some(store)
            }
            None => None,
        };

        let mut merger: WatermarkMerger<(usize, ServeEvent)> = WatermarkMerger::new(shard_count);
        let mut pulls: Vec<ShardPull> = (0..shard_count)
            .map(|_| ShardPull {
                client: None,
                cursor: 0,
                connected_once: false,
                done: false,
            })
            .collect();
        let mut report = AggregateReport {
            events: Vec::new(),
            per_shard: vec![0; shard_count],
            polls: 0,
            reconnects: 0,
            wall_secs: 0.0,
        };
        let started = Instant::now();
        let mut last_progress = Instant::now();

        loop {
            let mut progressed = false;
            let mut all_done = true;
            for (shard, pull) in pulls.iter_mut().enumerate() {
                if pull.done {
                    continue;
                }
                all_done = false;
                if pull.client.is_none() {
                    if pull.connected_once {
                        report.reconnects += 1;
                    }
                    match ServeClient::connect(directory.addr(shard), "aggregator") {
                        Ok(client) => {
                            pull.client = Some(client);
                            pull.connected_once = true;
                        }
                        Err(_) => {
                            std::thread::sleep(Duration::from_millis(
                                self.cfg.reconnect_backoff_ms,
                            ));
                            continue;
                        }
                    }
                }
                let client = pull.client.as_mut().expect("connected above");
                let chunk = match client.query_alarms_chunk(pull.cursor) {
                    Ok(chunk) => chunk,
                    Err(_) => {
                        // Lost mid-query (shard killed?); drop the
                        // connection and retry via the directory, which
                        // may meanwhile point at the recovered process.
                        pull.client = None;
                        continue;
                    }
                };
                report.polls += 1;
                if !chunk.events.is_empty() {
                    progressed = true;
                }
                for event in chunk.events {
                    merger.push(
                        MergeKey {
                            time_secs: event.time_secs,
                            lane: event.machine_id,
                            // Absolute position in the shard's stream:
                            // the residual tie-break reproducing the
                            // shard's own release order.
                            seq: pull.cursor,
                        },
                        (shard, event),
                    );
                    pull.cursor += 1;
                }
                if pull.cursor == chunk.total {
                    // Caught up with this very reply, so the merger now
                    // holds every event of this shard at or below the
                    // watermark computed alongside `total` — only now is
                    // adopting it sound.
                    if merger.advance(shard, chunk.watermark_secs) {
                        progressed = true;
                    }
                    if chunk.watermark_secs == f64::INFINITY {
                        pull.done = true;
                        if let Some(client) = pull.client.take() {
                            let _ = client.bye();
                        }
                    }
                }
            }

            while let Some((shard, event)) = merger.pop_ready() {
                if let Some(store) = store.as_mut() {
                    journal_event(store, &event, &report.events)?;
                }
                report.per_shard[shard] += 1;
                report.events.push(event);
            }

            if all_done {
                break;
            }
            if progressed {
                last_progress = Instant::now();
            } else {
                if last_progress.elapsed().as_secs_f64() > self.cfg.stall_timeout_secs {
                    return Err(Error::Io(format!(
                        "aggregator stalled: no shard progressed for {:.1}s",
                        self.cfg.stall_timeout_secs
                    )));
                }
                std::thread::sleep(Duration::from_millis(self.cfg.poll_ms));
            }
        }

        debug_assert!(
            merger.is_empty(),
            "all shards at +inf watermark must drain the merger"
        );
        report.wall_secs = started.elapsed().as_secs_f64();
        Ok(report)
    }

    /// Reconstructs a merged history previously journaled by
    /// [`run`](Aggregator::run) with a store config — snapshot plus
    /// journal suffix, in release order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] when the store cannot be opened or a blob
    /// fails to decode.
    pub fn recover_events(store: &StoreConfig) -> Result<Vec<ServeEvent>> {
        let (_store, recovery) =
            Store::open(store.clone()).map_err(|e| Error::Io(e.to_string()))?;
        let mut events = Vec::new();
        if let Some(blob) = &recovery.snapshot {
            let Some((&version, body)) = blob.split_first() else {
                return Err(Error::Io("aggregator snapshot: empty blob".into()));
            };
            if version != SNAPSHOT_VERSION {
                return Err(Error::Io(format!(
                    "aggregator snapshot: unknown version {version}"
                )));
            }
            events =
                decode_events(body).map_err(|e| Error::Io(format!("aggregator snapshot: {e}")))?;
        }
        for entry in &recovery.entries {
            let mut decoded = decode_events(&entry.payload)
                .map_err(|e| Error::Io(format!("aggregator journal entry {}: {e}", entry.id)))?;
            events.append(&mut decoded);
        }
        Ok(events)
    }
}

/// Appends one merged event to the journal, compacting into a snapshot
/// on the store's cadence. `released` is the history so far (the event
/// itself not yet included).
fn journal_event(store: &mut Store, event: &ServeEvent, released: &[ServeEvent]) -> Result<()> {
    let mut payload = Vec::with_capacity(48);
    encode_event(event, &mut payload);
    store
        .append(&payload)
        .map_err(|e| Error::Io(format!("aggregator journal: {e}")))?;
    if store.snapshot_due() {
        let mut blob = Vec::with_capacity(1 + (released.len() + 1) * 48);
        blob.push(SNAPSHOT_VERSION);
        blob.extend_from_slice(&encode_events(released));
        encode_event(event, &mut blob);
        store
            .commit_snapshot(&blob)
            .map_err(|e| Error::Io(format!("aggregator snapshot: {e}")))?;
    }
    Ok(())
}
