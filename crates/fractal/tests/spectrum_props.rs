//! Property tests for the streaming multifractal spectrum: the
//! bounded-memory [`StreamingSpectrum`] must be **bit-identical** to the
//! offline [`spectrum_trace`] reference on every emitted window — for
//! scalar pushes, for `push_slice` at chunk cuts {1, 2, 7} (with the
//! internal state probed past the slice boundary), and across pool
//! sizes {1, 2, 7}. All inputs are built from generated scalars
//! (fBm traces parameterized by Hurst exponent and seed).

use aging_fractal::generate;
use aging_fractal::spectrum::{
    spectrum_in, spectrum_trace_in, SpectrumConfig, SpectrumWindow, StreamingSpectrum,
};
use aging_par::Pool;
use proptest::prelude::*;

fn config(window: usize, stride: usize) -> SpectrumConfig {
    SpectrumConfig {
        window,
        stride,
        ..SpectrumConfig::default()
    }
}

fn trace(len: usize, hurst_pct: u8, seed: u64) -> Vec<f64> {
    // hurst_pct in 20..=90 keeps fBm well-conditioned.
    let hurst = f64::from(hurst_pct) / 100.0;
    generate::fbm(len, hurst, seed).expect("fbm generation")
}

fn assert_windows_bit_equal(a: &[SpectrumWindow], b: &[SpectrumWindow]) {
    prop_assert_eq!(a.len(), b.len(), "emission count diverged");
    for (x, y) in a.iter().zip(b) {
        prop_assert_eq!(x.input_index, y.input_index);
        prop_assert_eq!(x.alpha_min.to_bits(), y.alpha_min.to_bits());
        prop_assert_eq!(x.alpha_max.to_bits(), y.alpha_max.to_bits());
        prop_assert_eq!(x.delta_alpha.to_bits(), y.delta_alpha.to_bits());
    }
}

fn stream_scalar(cfg: &SpectrumConfig, data: &[f64], pool: &Pool) -> Vec<SpectrumWindow> {
    let mut streaming = StreamingSpectrum::new(cfg).expect("streaming estimator");
    let mut windows = Vec::new();
    for &v in data {
        if let Some(w) = streaming.push_in(v, pool).expect("finite sample") {
            windows.push(w);
        }
    }
    windows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scalar streaming == offline batch trace, bit for bit.
    #[test]
    fn streaming_matches_batch_trace(
        window_step in 0usize..3,
        stride in 16usize..64,
        extra in 0usize..160,
        hurst_pct in 20u8..=90,
        seed in 0u64..1024,
    ) {
        let window = 128 + 16 * window_step;
        let cfg = config(window, stride.min(window));
        let data = trace(window + extra, hurst_pct, seed);
        let pool = Pool::new(1);
        let batch = spectrum_trace_in(&data, &cfg, &pool).expect("batch trace");
        let streamed = stream_scalar(&cfg, &data, &pool);
        assert_windows_bit_equal(&batch, &streamed);
    }

    /// `push_slice` at fixed chunk cuts {1, 2, 7} == scalar pushes, and
    /// the internal state agrees afterwards: both estimators keep
    /// emitting identical windows when driven past the slice boundary.
    #[test]
    fn chunked_pushes_match_scalar_and_state_survives(
        stride in 16usize..64,
        extra in 0usize..128,
        hurst_pct in 20u8..=90,
        seed in 0u64..1024,
    ) {
        let window = 128usize;
        let cfg = config(window, stride.min(window));
        let data = trace(window + extra, hurst_pct, seed);
        let probes = trace(2 * window, hurst_pct.wrapping_add(7).clamp(20, 90), seed ^ 0x5eed);
        let pool = Pool::new(1);

        let mut scalar = StreamingSpectrum::new(&cfg).expect("scalar estimator");
        let mut scalar_windows = Vec::new();
        for &v in &data {
            if let Some(w) = scalar.push_in(v, &pool).expect("finite sample") {
                scalar_windows.push(w);
            }
        }

        for chunk in [1usize, 2, 7] {
            let mut sliced = StreamingSpectrum::new(&cfg).expect("sliced estimator");
            let mut windows = Vec::new();
            let mut out = Vec::new();
            for piece in data.chunks(chunk) {
                sliced.push_slice_in(piece, &mut out, &pool).expect("finite samples");
                windows.append(&mut out);
            }
            assert_windows_bit_equal(&scalar_windows, &windows);
            prop_assert_eq!(scalar.samples_seen(), sliced.samples_seen());

            // Post-slice state probe: a fresh scalar twin continues from
            // the same prefix; the sliced estimator must track it.
            let mut twin = StreamingSpectrum::new(&cfg).expect("twin estimator");
            for &v in &data {
                let _ = twin.push_in(v, &pool).expect("finite sample");
            }
            for &v in &probes {
                let a = twin.push_in(v, &pool).expect("finite probe");
                let b = sliced.push_in(v, &pool).expect("finite probe");
                match (a, b) {
                    (Some(x), Some(y)) => assert_windows_bit_equal(&[x], &[y]),
                    (None, None) => {}
                    _ => panic!("post-slice emission phase diverged"),
                }
            }
        }
    }

    /// The O(stride) sliding accumulators track a from-scratch
    /// [`spectrum_in`] recompute at every stride boundary: the first
    /// emission (an exact rebuild) is bit-identical, and no slid
    /// emission drifts more than 1e-9 relative before the next periodic
    /// rebuild re-anchors the state.
    #[test]
    fn sliding_kernel_tracks_naive_recompute(
        stride in 16usize..48,
        slides in 8usize..40,
        hurst_pct in 20u8..=90,
        seed in 0u64..1024,
    ) {
        let window = 128usize;
        let cfg = config(window, stride);
        let data = trace(window + stride * slides, hurst_pct, seed);
        let pool = Pool::new(1);
        let streamed = stream_scalar(&cfg, &data, &pool);
        prop_assert_eq!(streamed.len(), slides + 1, "one emission per stride");

        let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
        for (i, w) in streamed.iter().enumerate() {
            let end = w.input_index as usize + 1;
            let naive =
                spectrum_in(&data[end - window..end], &cfg.qs, &pool).expect("naive window");
            if i == 0 {
                prop_assert_eq!(w.alpha_min.to_bits(), naive.alpha_min.to_bits());
                prop_assert_eq!(w.alpha_max.to_bits(), naive.alpha_max.to_bits());
                prop_assert_eq!(w.delta_alpha.to_bits(), naive.delta_alpha.to_bits());
            } else {
                prop_assert!(
                    rel(w.alpha_min, naive.alpha_min) <= 1e-9,
                    "alpha_min drift at emission {}: {} vs {}", i, w.alpha_min, naive.alpha_min
                );
                prop_assert!(
                    rel(w.alpha_max, naive.alpha_max) <= 1e-9,
                    "alpha_max drift at emission {}: {} vs {}", i, w.alpha_max, naive.alpha_max
                );
                prop_assert!(
                    rel(w.delta_alpha, naive.delta_alpha) <= 1e-9,
                    "delta_alpha drift at emission {}: {} vs {}",
                    i, w.delta_alpha, naive.delta_alpha
                );
            }
        }
    }

    /// Pool sizes {1, 2, 7} produce bit-identical emissions: the q-sweep
    /// merge is order-deterministic regardless of worker count.
    #[test]
    fn pool_sizes_are_bit_identical(
        stride in 16usize..64,
        extra in 0usize..128,
        hurst_pct in 20u8..=90,
        seed in 0u64..1024,
    ) {
        let window = 128usize;
        let cfg = config(window, stride.min(window));
        let data = trace(window + extra, hurst_pct, seed);
        let reference = stream_scalar(&cfg, &data, &Pool::new(1));
        for threads in [2usize, 7] {
            let other = stream_scalar(&cfg, &data, &Pool::new(threads));
            assert_windows_bit_equal(&reference, &other);
        }
    }
}
