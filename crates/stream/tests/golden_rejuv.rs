//! Golden restart-decision regression tests: two committed fixture CSVs
//! (one aging fleet under the alarm-triggered policy, one healthy fleet
//! under the periodic policy) with the exact decision sequence the
//! closed-loop supervisor must produce on them. Any drift in the
//! park-and-arbitrate ordering, the cooldown/budget discipline, or the
//! detector chain feeding it — intentional retuning or an accidental
//! behaviour change — fails CI with a line-level diff instead of
//! silently shifting E18 results.
//!
//! To regenerate the fixtures after an *intentional* change:
//!
//! ```text
//! cargo test -p aging-stream --test golden_rejuv -- --ignored regenerate
//! ```
//!
//! then review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use aging_core::baseline::TrendPredictorConfig;
use aging_memsim::{Counter, Scenario};
use aging_rejuv::{RejuvConfig, RejuvController, RejuvPolicy, RestartReason, RestartRequest};
use aging_stream::detector::DetectorSpec;
use aging_stream::supervisor::{CounterDetector, FleetConfig, FleetReport, FleetSupervisor};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name)).unwrap_or_else(|e| {
        panic!(
            "missing fixture {name} ({e}); run \
             `cargo test -p aging-stream --test golden_rejuv -- --ignored regenerate`"
        )
    })
}

/// The closed-loop tuning the fixtures pin. A budget of one concurrent
/// restart makes fleet-wide contention — and therefore `Budget` denials
/// — part of the recorded sequence, alongside `Cooldown` denials from
/// alarm retries.
fn rejuv_config(policy: RejuvPolicy) -> RejuvConfig {
    RejuvConfig {
        policy,
        cooldown_secs: 900.0,
        restart_downtime_secs: 30.0,
        crash_repair_secs: 900.0,
        max_concurrent_restarts: 1,
    }
}

fn fleet_config(horizon_secs: f64, rejuv: RejuvConfig) -> FleetConfig {
    let mut cfg = FleetConfig::new(
        vec![CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 120,
                refit_every: 8,
                alarm_horizon_secs: 900.0,
                ..TrendPredictorConfig::depleting(5.0)
            }),
        }],
        horizon_secs,
    );
    cfg.gate.nominal_period_secs = 5.0;
    cfg.shards = 2;
    cfg.rejuv = Some(rejuv);
    cfg
}

/// Three aggressively leaking machines: alarms, planned restarts, crash
/// reboots and both denial kinds all appear in the decision log.
fn aging_fleet() -> Vec<Scenario> {
    (0..3)
        .map(|i| Scenario::tiny_aging(900 + i, 192.0))
        .collect()
}

/// Three healthy machines under the cron policy: simultaneous periodic
/// requests contend for the single-restart budget, so the log pins the
/// deterministic `(time, machine)` arbitration order too.
fn healthy_fleet() -> Vec<Scenario> {
    (0..3).map(|i| Scenario::tiny_aging(910 + i, 0.0)).collect()
}

/// One row per controller decision, in arbitration order, every float
/// rendered with its shortest round-trip representation so the fixture
/// pins exact bits.
fn decision_csv(report: &FleetReport) -> String {
    let mut out = String::from("machine_index,time_secs,reason,granted,deny,downtime_secs\n");
    for d in &report.decisions {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            d.machine_index,
            d.time_secs,
            d.reason.name(),
            d.granted,
            d.deny.map_or(String::new(), |deny| format!("{deny:?}")),
            d.downtime_secs
        )
        .unwrap();
    }
    out
}

/// Line-level comparison with a readable drift report.
fn assert_trace_matches(name: &str, expected: &str, actual: &str) {
    if expected == actual {
        return;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied().unwrap_or("<missing>");
        let a = act.get(i).copied().unwrap_or("<missing>");
        assert_eq!(
            e,
            a,
            "\nrestart decisions drifted from golden trace `{name}` at line {}:\n  \
             expected: {e}\n  actual:   {a}\n({} expected lines, {} actual lines)\n\
             If the change is intentional, regenerate fixtures with\n  \
             cargo test -p aging-stream --test golden_rejuv -- --ignored regenerate",
            i + 1,
            exp.len(),
            act.len(),
        );
    }
    unreachable!("traces differ but all lines matched");
}

fn aging_report() -> FleetReport {
    let cfg = fleet_config(6.0 * 3600.0, rejuv_config(RejuvPolicy::AlarmTriggered));
    FleetSupervisor::new(cfg)
        .unwrap()
        .run(&aging_fleet())
        .unwrap()
}

fn healthy_report() -> FleetReport {
    let cfg = fleet_config(
        4.0 * 3600.0,
        rejuv_config(RejuvPolicy::Periodic {
            period_secs: 3600.0,
        }),
    );
    FleetSupervisor::new(cfg)
        .unwrap()
        .run(&healthy_fleet())
        .unwrap()
}

#[test]
fn aging_decisions_match_golden() {
    let report = aging_report();
    let actual = decision_csv(&report);
    // The fixture must exercise every decision path: granted alarm
    // restarts, forced crash reboots, and at least one denial.
    assert!(actual.lines().any(|l| l.contains(",alarm,true,")));
    assert!(actual.lines().any(|l| l.contains(",false,")));
    assert_eq!(
        report.decisions.iter().filter(|d| d.granted).count(),
        report.restart_events().count(),
        "every granted decision lands exactly one journaled restart event"
    );
    assert_trace_matches(
        "rejuv_aging_expected.csv",
        &read_fixture("rejuv_aging_expected.csv"),
        &actual,
    );
}

#[test]
fn healthy_periodic_decisions_match_golden() {
    let report = healthy_report();
    let actual = decision_csv(&report);
    assert!(
        report
            .decisions
            .iter()
            .all(|d| d.reason == RestartReason::Periodic),
        "a healthy fleet only sees scheduled restarts"
    );
    assert_eq!(report.machine_alarms().count(), 0);
    assert_trace_matches(
        "rejuv_healthy_expected.csv",
        &read_fixture("rejuv_healthy_expected.csv"),
        &actual,
    );
}

/// The fixtures double as a controller contract: replaying the recorded
/// request columns through a bare [`RejuvController`] must reproduce the
/// recorded verdict columns bit for bit — the supervisor adds ordering,
/// never judgement.
#[test]
fn fixture_requests_replay_through_a_bare_controller() {
    for (name, policy, machines) in [
        (
            "rejuv_aging_expected.csv",
            RejuvPolicy::AlarmTriggered,
            aging_fleet().len(),
        ),
        (
            "rejuv_healthy_expected.csv",
            RejuvPolicy::Periodic {
                period_secs: 3600.0,
            },
            healthy_fleet().len(),
        ),
    ] {
        let mut controller = RejuvController::new(rejuv_config(policy), machines).unwrap();
        for (lineno, line) in read_fixture(name).lines().skip(1).enumerate() {
            let fields: Vec<&str> = line.split(',').collect();
            let [machine_index, time_secs, reason, granted, deny, downtime_secs] = fields[..]
            else {
                panic!("{name}:{}: malformed row `{line}`", lineno + 2);
            };
            let request = RestartRequest {
                machine_index: machine_index.parse().unwrap(),
                time_secs: time_secs.parse().unwrap(),
                reason: match reason {
                    "alarm" => RestartReason::Alarm,
                    "periodic" => RestartReason::Periodic,
                    "crash-reboot" => RestartReason::CrashReboot,
                    other => panic!("{name}:{}: unknown reason `{other}`", lineno + 2),
                },
            };
            let decision = controller.decide(&request);
            assert_eq!(
                decision.granted.to_string(),
                granted,
                "{name}:{}",
                lineno + 2
            );
            assert_eq!(
                decision.deny.map_or(String::new(), |d| format!("{d:?}")),
                deny,
                "{name}:{}",
                lineno + 2
            );
            assert_eq!(
                decision.downtime_secs.to_string(),
                downtime_secs,
                "{name}:{}",
                lineno + 2
            );
        }
    }
}

/// Writes both fixtures. Ignored by default: run explicitly after an
/// intentional controller or detector change, then review the diff.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate() {
    let dir = fixture_path("");
    std::fs::create_dir_all(&dir).unwrap();
    let aging = decision_csv(&aging_report());
    let healthy = decision_csv(&healthy_report());
    std::fs::write(fixture_path("rejuv_aging_expected.csv"), &aging).unwrap();
    std::fs::write(fixture_path("rejuv_healthy_expected.csv"), &healthy).unwrap();
    println!(
        "regenerated fixtures in {} ({} aging decisions, {} healthy decisions)",
        dir.display(),
        aging.lines().count() - 1,
        healthy.lines().count() - 1,
    );
}
