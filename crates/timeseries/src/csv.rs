//! Minimal CSV import/export for time series — the interchange format
//! between this library, the experiment harness and external tooling
//! (plotting, real monitor logs).
//!
//! Format: a header line, then one row per sample. Export writes
//! `time,value`; import accepts any numeric column layout and lets the
//! caller pick the value column. No quoting/escaping — this is numeric
//! data only.

use crate::error::{Error, Result};
use crate::series::TimeSeries;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes `series` as `time,<name>` CSV rows to `writer`.
///
/// # Errors
///
/// Returns [`Error::Io`] wrapping any I/O failure.
pub fn write_csv<W: Write>(series: &TimeSeries, name: &str, mut writer: W) -> Result<()> {
    let io = |e: std::io::Error| Error::Io(format!("csv write: {e}"));
    writeln!(writer, "time,{name}").map_err(io)?;
    for (t, v) in series.iter() {
        writeln!(writer, "{t},{v}").map_err(io)?;
    }
    Ok(())
}

/// Parsed CSV content: header names and numeric columns.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvTable {
    /// Column names from the header row.
    pub headers: Vec<String>,
    /// Column-major values; non-numeric cells become NaN.
    pub columns: Vec<Vec<f64>>,
}

impl CsvTable {
    /// Index of the column with the given (case-insensitive) name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.headers
            .iter()
            .position(|h| h.eq_ignore_ascii_case(name))
    }

    /// Builds a [`TimeSeries`] from the named value column, taking the
    /// sampling period from the first two entries of the named time
    /// column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for unknown columns and
    /// propagates series-construction failures (e.g. non-increasing time).
    pub fn series(&self, time_column: &str, value_column: &str) -> Result<TimeSeries> {
        let ti = self
            .column_index(time_column)
            .ok_or_else(|| Error::invalid("time_column", format!("no column `{time_column}`")))?;
        let vi = self
            .column_index(value_column)
            .ok_or_else(|| Error::invalid("value_column", format!("no column `{value_column}`")))?;
        let times = &self.columns[ti];
        let values = &self.columns[vi];
        if times.len() < 2 {
            return Err(Error::TooShort {
                required: 2,
                actual: times.len(),
            });
        }
        let dt = times[1] - times[0];
        TimeSeries::from_values(times[0], dt, values.clone())
    }
}

/// Structural defects encountered (and tolerated) by [`read_csv_lossy`].
///
/// Real monitor logs get truncated mid-write, garbled by transport or
/// concatenated badly; the lossy reader records what it had to skip so
/// callers can audit the damage instead of silently losing rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsvDefects {
    /// Rows whose cell count differed from the header width (skipped —
    /// a truncated or over-long row cannot be aligned to columns).
    pub ragged_rows: u64,
    /// Cells that failed numeric parsing (recorded as NaN).
    pub non_numeric_cells: u64,
}

impl CsvDefects {
    /// Whether any structural defect was encountered.
    pub fn any(&self) -> bool {
        self.ragged_rows > 0 || self.non_numeric_cells > 0
    }
}

/// Reads a CSV table, tolerating structural row damage.
///
/// Unlike [`read_csv`] — which treats a ragged row as fatal — this reader
/// skips rows whose cell count does not match the header and counts them,
/// so a log truncated mid-write or garbled in flight still replays. Cells
/// that fail numeric parsing become NaN (as in [`read_csv`]) and are
/// counted.
///
/// # Errors
///
/// Returns [`Error::Empty`] for input without a header line (nothing can
/// be recovered without column names) and [`Error::Io`] wrapping I/O
/// failures.
pub fn read_csv_lossy<R: Read>(reader: R) -> Result<(CsvTable, CsvDefects)> {
    let io = |e: std::io::Error| Error::Io(format!("csv read: {e}"));
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or(Error::Empty)
        .and_then(|l| l.map_err(io))?;
    let headers: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let width = headers.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); width];
    let mut defects = CsvDefects::default();
    for line in lines {
        let line = line.map_err(io)?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != width {
            defects.ragged_rows += 1;
            continue;
        }
        for (col, cell) in columns.iter_mut().zip(&cells) {
            match cell.trim().parse::<f64>() {
                Ok(v) => col.push(v),
                Err(_) => {
                    defects.non_numeric_cells += 1;
                    col.push(f64::NAN);
                }
            }
        }
    }
    Ok((CsvTable { headers, columns }, defects))
}

/// Reads a CSV table from `reader`.
///
/// # Errors
///
/// Returns [`Error::Empty`] for input without a header,
/// [`Error::LengthMismatch`] for ragged rows, and [`Error::Io`]
/// wrapping I/O failures.
pub fn read_csv<R: Read>(reader: R) -> Result<CsvTable> {
    let io = |e: std::io::Error| Error::Io(format!("csv read: {e}"));
    let mut lines = BufReader::new(reader).lines();
    let header = lines
        .next()
        .ok_or(Error::Empty)
        .and_then(|l| l.map_err(io))?;
    let headers: Vec<String> = header.split(',').map(|s| s.trim().to_string()).collect();
    let width = headers.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); width];
    for line in lines {
        let line = line.map_err(io)?;
        if line.trim().is_empty() {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != width {
            return Err(Error::LengthMismatch {
                left: cells.len(),
                right: width,
            });
        }
        for (col, cell) in columns.iter_mut().zip(&cells) {
            col.push(cell.trim().parse::<f64>().unwrap_or(f64::NAN));
        }
    }
    Ok(CsvTable { headers, columns })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let ts = TimeSeries::from_values(10.0, 2.5, vec![1.0, -2.0, 3.5]).unwrap();
        let mut buf = Vec::new();
        write_csv(&ts, "free_memory", &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("time,free_memory\n10,1\n"));

        let table = read_csv(buf.as_slice()).unwrap();
        assert_eq!(table.headers, vec!["time", "free_memory"]);
        let back = table.series("time", "free_memory").unwrap();
        assert_eq!(back.t0(), 10.0);
        assert_eq!(back.dt(), 2.5);
        assert_eq!(back.values(), ts.values());
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let table = read_csv("T,V\n0,1\n1,2\n".as_bytes()).unwrap();
        assert_eq!(table.column_index("t"), Some(0));
        assert_eq!(table.column_index("v"), Some(1));
        assert!(table.series("t", "missing").is_err());
    }

    #[test]
    fn non_numeric_cells_become_nan() {
        let table = read_csv("t,v\n0,1\n1,oops\n2,3\n".as_bytes()).unwrap();
        assert!(table.columns[1][1].is_nan());
        // And gap repair can fix them downstream.
        let mut v = table.columns[1].clone();
        crate::interp::fill_gaps(&mut v, crate::interp::FillMethod::Linear).unwrap();
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn lossy_reader_skips_ragged_rows_and_counts_damage() {
        // Row 3 is truncated (1 of 2 cells), row 5 has a garbled cell.
        let text = "t,v\n0,1\n30\n60,3\n90,x!7\n120,5\n";
        let (table, defects) = read_csv_lossy(text.as_bytes()).unwrap();
        assert_eq!(defects.ragged_rows, 1);
        assert_eq!(defects.non_numeric_cells, 1);
        assert!(defects.any());
        // The surviving rows keep their alignment.
        assert_eq!(table.columns[0], vec![0.0, 60.0, 90.0, 120.0]);
        assert_eq!(table.columns[1][0], 1.0);
        assert!(table.columns[1][2].is_nan());
        assert_eq!(table.columns[1][3], 5.0);
        // The strict reader refuses the same input.
        assert!(read_csv(text.as_bytes()).is_err());
    }

    #[test]
    fn lossy_reader_on_clean_input_matches_strict() {
        let text = "t,v\n0,1\n30,2\n";
        let (table, defects) = read_csv_lossy(text.as_bytes()).unwrap();
        assert!(!defects.any());
        assert_eq!(table, read_csv(text.as_bytes()).unwrap());
        // A header is still mandatory.
        assert!(matches!(read_csv_lossy("".as_bytes()), Err(Error::Empty)));
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(matches!(
            read_csv("a,b\n1,2\n3\n".as_bytes()),
            Err(Error::LengthMismatch { .. })
        ));
    }

    #[test]
    fn empty_and_blank_lines() {
        assert!(matches!(read_csv("".as_bytes()), Err(Error::Empty)));
        let table = read_csv("t,v\n0,1\n\n1,2\n".as_bytes()).unwrap();
        assert_eq!(table.columns[0].len(), 2);
    }

    #[test]
    fn too_few_rows_for_series() {
        let table = read_csv("t,v\n0,1\n".as_bytes()).unwrap();
        assert!(matches!(
            table.series("t", "v"),
            Err(Error::TooShort { .. })
        ));
    }
}
