//! The Hölder-dimension aging detector — the target paper's primary
//! contribution.
//!
//! Pipeline (Shereshevsky et al., DSN 2003):
//!
//! 1. a memory-resource counter (available bytes, used swap) is sampled at
//!    a fixed period;
//! 2. the **local Hölder exponent trace** `h(t)` of the counter is
//!    computed over a sliding history;
//! 3. the **fractal (box-counting) dimension** of the graph of `h(t)` is
//!    computed over a sliding window — the *Hölder dimension trace*
//!    `D_h(t)` — together with the windowed mean of `h(t)`;
//! 4. a window is *anomalous* when `D_h` jumps above its baseline (the
//!    paper's rule) and/or when the mean Hölder exponent collapses below
//!    its baseline (regularity collapse — the dominant pre-crash signal on
//!    the simulated substrate; see DESIGN.md). The first anomalous window
//!    raises a warning; `confirm_windows` consecutive anomalous windows
//!    raise the crash **alarm** (the paper's "two-jump" rule).
//!
//! The jump threshold adapts to the baseline's own variability
//! (`median + max(jump_delta, mad_multiplier · MAD)`), and the first
//! `skip_windows` windows are discarded so boot-time warmup does not
//! contaminate the baseline.
//!
//! The detector is streaming: feed one counter sample at a time with
//! [`HolderDimensionDetector::push`]. Because the Hölder estimator is
//! centred, the emitted traces trail the newest sample by the estimator's
//! neighbourhood radius — alarms are attributed to the *push* (wall-clock)
//! instant, so evaluation lead times are honest.

use aging_fractal::holder::{self, HolderEstimator, IncrementConfig};
use aging_fractal::streaming::WindowDimension;
use aging_timeseries::{stats, Error, Result};

/// Which graph-dimension estimator the detector applies to the Hölder
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum DimensionMethod {
    /// Grid box-counting (the paper's choice).
    #[default]
    BoxCounting,
    /// Variation/oscillation method (smoother on short windows).
    Variation,
}

impl DimensionMethod {
    /// Applies the method to one window of the Hölder trace.
    ///
    /// # Errors
    ///
    /// Propagates the underlying estimator's failures (constant windows
    /// are mapped to dimension 1).
    pub fn estimate(&self, window: &[f64]) -> Result<f64> {
        self.window_dimension().estimate(window)
    }

    /// The equivalent streaming-kernel estimator
    /// ([`aging_fractal::streaming::WindowDimension`]).
    pub fn window_dimension(&self) -> WindowDimension {
        match self {
            DimensionMethod::BoxCounting => WindowDimension::BoxCounting,
            DimensionMethod::Variation => WindowDimension::Variation,
        }
    }
}

/// Which anomaly rule(s) drive warnings and alarms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum JumpRule {
    /// Only the paper's dimension-jump rule.
    DimensionJump,
    /// Only the Hölder-collapse rule.
    HolderCollapse,
    /// Either rule (default — most sensitive, still calm on stationary
    /// signals thanks to the adaptive threshold).
    #[default]
    Either,
}

/// Detector configuration. Defaults follow the calibration on the
/// simulated NT4 workload (see DESIGN.md, E3/E8).
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Neighbourhood radius (in samples) of the Hölder estimator.
    pub holder_radius: usize,
    /// Largest lag of the local-increment Hölder estimator.
    pub holder_max_lag: usize,
    /// Hölder cap for degenerate neighbourhoods.
    pub max_h: f64,
    /// Window (in Hölder-trace samples) of the dimension estimator.
    pub dimension_window: usize,
    /// Stride between dimension windows.
    pub dimension_stride: usize,
    /// Dimension method.
    pub dimension_method: DimensionMethod,
    /// Initial dimension windows discarded (boot warmup).
    pub skip_windows: usize,
    /// Number of subsequent dimension values that form the baseline.
    pub baseline_windows: usize,
    /// Minimum jump threshold above the baseline median.
    pub jump_delta: f64,
    /// The jump threshold is `max(jump_delta, mad_multiplier · MAD)` of
    /// the baseline windows — it adapts to how noisy the signal's
    /// dimension naturally is. Adaptation is capped at 3 × `jump_delta`
    /// (dimension) and 2 × `holder_drop` (collapse) so a turbulent warmup
    /// cannot disable a rule outright.
    pub mad_multiplier: f64,
    /// Minimum Hölder-collapse threshold: anomalous when the windowed mean
    /// exponent falls below its baseline median by more than
    /// `max(holder_drop, mad_multiplier · MAD)` of the baseline windows.
    pub holder_drop: f64,
    /// Relative collapse floor: a window is also anomalous when its mean
    /// exponent falls below this fraction of the baseline median — the
    /// robust detector of total regularity collapse (`h → 0`) even when a
    /// turbulent warmup inflated the MAD-based threshold.
    pub holder_floor_fraction: f64,
    /// Which rule(s) to apply.
    pub rule: JumpRule,
    /// Consecutive anomalous windows required for a full alarm (2 = the
    /// paper's two-jump rule).
    pub confirm_windows: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            holder_radius: 32,
            holder_max_lag: 8,
            max_h: 2.0,
            dimension_window: 128,
            dimension_stride: 16,
            dimension_method: DimensionMethod::BoxCounting,
            skip_windows: 2,
            baseline_windows: 12,
            jump_delta: 0.2,
            mad_multiplier: 5.0,
            holder_drop: 0.3,
            holder_floor_fraction: 0.25,
            rule: JumpRule::Either,
            confirm_windows: 3,
        }
    }
}

impl DetectorConfig {
    /// Starts a fluent builder seeded with the defaults; finish with
    /// [`DetectorConfigBuilder::build`], which validates the result — the
    /// preferred way to construct a customised configuration (invalid
    /// combinations are rejected at build time instead of surfacing later
    /// from [`HolderDimensionDetector::new`]).
    ///
    /// # Examples
    ///
    /// ```
    /// use aging_core::detector::DetectorConfig;
    ///
    /// # fn main() -> Result<(), aging_timeseries::Error> {
    /// let config = DetectorConfig::builder()
    ///     .dimension_window(96)
    ///     .confirm_windows(2)
    ///     .build()?;
    /// assert_eq!(config.dimension_window, 96);
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder() -> DetectorConfigBuilder {
        DetectorConfigBuilder {
            config: DetectorConfig::default(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.holder_max_lag < 4 {
            return Err(Error::invalid("holder_max_lag", "must be at least 4"));
        }
        if self.holder_radius < 2 * self.holder_max_lag {
            return Err(Error::invalid(
                "holder_radius",
                "must be at least twice holder_max_lag",
            ));
        }
        if !(self.max_h > 0.0) {
            return Err(Error::invalid("max_h", "must be positive"));
        }
        if self.dimension_window < 16 {
            return Err(Error::invalid("dimension_window", "must be at least 16"));
        }
        if self.dimension_stride == 0 {
            return Err(Error::invalid("dimension_stride", "must be positive"));
        }
        if self.baseline_windows < 2 {
            return Err(Error::invalid("baseline_windows", "must be at least 2"));
        }
        if !(self.jump_delta > 0.0) {
            return Err(Error::invalid("jump_delta", "must be positive"));
        }
        if !(self.mad_multiplier >= 0.0 && self.mad_multiplier.is_finite()) {
            return Err(Error::invalid(
                "mad_multiplier",
                "must be finite and non-negative",
            ));
        }
        if !(self.holder_drop > 0.0) {
            return Err(Error::invalid("holder_drop", "must be positive"));
        }
        if !(0.0..1.0).contains(&self.holder_floor_fraction) {
            return Err(Error::invalid(
                "holder_floor_fraction",
                "must lie in [0, 1)",
            ));
        }
        if self.confirm_windows == 0 {
            return Err(Error::invalid("confirm_windows", "must be positive"));
        }
        Ok(())
    }

    /// Number of raw samples needed before the first alarm can possibly
    /// fire (holder delay + skipped/baseline windows + confirmation).
    pub fn warmup_samples(&self) -> usize {
        let windows = self.skip_windows + self.baseline_windows + self.confirm_windows;
        let first_dim = self.dimension_window + (windows - 1) * self.dimension_stride;
        2 * self.holder_radius + first_dim
    }

    /// The equivalent offline Hölder estimator.
    pub fn holder_estimator(&self) -> HolderEstimator {
        HolderEstimator::LocalIncrement(IncrementConfig {
            window_radius: self.holder_radius,
            max_lag: self.holder_max_lag,
            max_h: self.max_h,
        })
    }
}

/// Fluent builder for [`DetectorConfig`]; see [`DetectorConfig::builder`].
#[derive(Debug, Clone)]
pub struct DetectorConfigBuilder {
    config: DetectorConfig,
}

impl DetectorConfigBuilder {
    /// Sets the Hölder-estimator neighbourhood radius.
    #[must_use]
    pub fn holder_radius(mut self, holder_radius: usize) -> Self {
        self.config.holder_radius = holder_radius;
        self
    }

    /// Sets the largest lag of the local-increment Hölder estimator.
    #[must_use]
    pub fn holder_max_lag(mut self, holder_max_lag: usize) -> Self {
        self.config.holder_max_lag = holder_max_lag;
        self
    }

    /// Sets the Hölder cap for degenerate neighbourhoods.
    #[must_use]
    pub fn max_h(mut self, max_h: f64) -> Self {
        self.config.max_h = max_h;
        self
    }

    /// Sets the dimension-estimator window length.
    #[must_use]
    pub fn dimension_window(mut self, dimension_window: usize) -> Self {
        self.config.dimension_window = dimension_window;
        self
    }

    /// Sets the stride between dimension windows.
    #[must_use]
    pub fn dimension_stride(mut self, dimension_stride: usize) -> Self {
        self.config.dimension_stride = dimension_stride;
        self
    }

    /// Sets the dimension method.
    #[must_use]
    pub fn dimension_method(mut self, dimension_method: DimensionMethod) -> Self {
        self.config.dimension_method = dimension_method;
        self
    }

    /// Sets the number of initial windows discarded as boot warmup.
    #[must_use]
    pub fn skip_windows(mut self, skip_windows: usize) -> Self {
        self.config.skip_windows = skip_windows;
        self
    }

    /// Sets the number of windows that form the baseline.
    #[must_use]
    pub fn baseline_windows(mut self, baseline_windows: usize) -> Self {
        self.config.baseline_windows = baseline_windows;
        self
    }

    /// Sets the minimum dimension-jump threshold.
    #[must_use]
    pub fn jump_delta(mut self, jump_delta: f64) -> Self {
        self.config.jump_delta = jump_delta;
        self
    }

    /// Sets the MAD multiplier of the adaptive thresholds.
    #[must_use]
    pub fn mad_multiplier(mut self, mad_multiplier: f64) -> Self {
        self.config.mad_multiplier = mad_multiplier;
        self
    }

    /// Sets the minimum Hölder-collapse threshold.
    #[must_use]
    pub fn holder_drop(mut self, holder_drop: f64) -> Self {
        self.config.holder_drop = holder_drop;
        self
    }

    /// Sets the relative collapse floor.
    #[must_use]
    pub fn holder_floor_fraction(mut self, holder_floor_fraction: f64) -> Self {
        self.config.holder_floor_fraction = holder_floor_fraction;
        self
    }

    /// Sets which anomaly rule(s) to apply.
    #[must_use]
    pub fn rule(mut self, rule: JumpRule) -> Self {
        self.config.rule = rule;
        self
    }

    /// Sets the number of consecutive anomalous windows required for a
    /// full alarm.
    #[must_use]
    pub fn confirm_windows(mut self, confirm_windows: usize) -> Self {
        self.config.confirm_windows = confirm_windows;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint, exactly like [`DetectorConfig::validate`].
    pub fn build(self) -> Result<DetectorConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Severity of an emitted alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertLevel {
    /// First anomalous window above baseline.
    Warning,
    /// Confirmed anomaly (the paper's crash predictor firing).
    Alarm,
}

impl std::fmt::Display for AlertLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlertLevel::Warning => f.write_str("warning"),
            AlertLevel::Alarm => f.write_str("alarm"),
        }
    }
}

/// Which rule(s) a window violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trigger {
    /// Dimension jumped above baseline.
    DimensionJump,
    /// Mean Hölder exponent collapsed below baseline.
    HolderCollapse,
    /// Both at once.
    Both,
}

/// An alert emitted by the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alert {
    /// Index of the raw sample whose push produced the alert.
    pub sample_index: usize,
    /// Severity.
    pub level: AlertLevel,
    /// Which rule fired.
    pub trigger: Trigger,
    /// Dimension value of the anomalous window.
    pub dimension: f64,
    /// Windowed mean Hölder exponent of the anomalous window.
    pub mean_holder: f64,
    /// Baseline dimension median.
    pub dimension_baseline: f64,
    /// Baseline mean-Hölder median.
    pub holder_baseline: f64,
}

/// Baseline levels established after warmup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Baseline {
    /// Median dimension of the baseline windows.
    pub dimension: f64,
    /// Effective jump threshold actually applied (`max(jump_delta,
    /// mad_multiplier · MAD)`).
    pub dimension_delta: f64,
    /// Median windowed mean Hölder exponent of the baseline windows.
    pub mean_holder: f64,
    /// Effective collapse threshold actually applied (`max(holder_drop,
    /// mad_multiplier · MAD)`).
    pub holder_delta: f64,
}

/// Streaming Hölder-dimension detector.
///
/// # Examples
///
/// ```
/// use aging_core::detector::{DetectorConfig, HolderDimensionDetector, AlertLevel};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let mut det = HolderDimensionDetector::new(DetectorConfig::default())?;
/// for i in 0..800 {
///     let value = (i as f64 * 0.37).sin() * 10.0 + 100.0;
///     det.push(value)?;
/// }
/// // A clean periodic signal never alarms.
/// assert!(det.alerts().iter().all(|a| a.level != AlertLevel::Alarm));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HolderDimensionDetector {
    config: DetectorConfig,
    samples: Vec<f64>,
    samples_dropped: usize,
    holder_trace: Vec<f64>,
    holder_dropped: usize,
    dimension_trace: Vec<(usize, f64)>,
    mean_holder_trace: Vec<(usize, f64)>,
    windows_seen: usize,
    baseline_dim: Vec<f64>,
    baseline_h: Vec<f64>,
    baseline: Option<Baseline>,
    consecutive_anomalies: usize,
    alerts: Vec<Alert>,
    alarmed: bool,
}

impl HolderDimensionDetector {
    /// Creates a detector.
    ///
    /// # Errors
    ///
    /// Propagates [`DetectorConfig::validate`] failures.
    pub fn new(config: DetectorConfig) -> Result<Self> {
        config.validate()?;
        Ok(HolderDimensionDetector {
            config,
            samples: Vec::new(),
            samples_dropped: 0,
            holder_trace: Vec::new(),
            holder_dropped: 0,
            dimension_trace: Vec::new(),
            mean_holder_trace: Vec::new(),
            windows_seen: 0,
            baseline_dim: Vec::new(),
            baseline_h: Vec::new(),
            baseline: None,
            consecutive_anomalies: 0,
            alerts: Vec::new(),
            alarmed: false,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Feeds one counter sample; returns an alert if this sample produced
    /// (or confirmed) an anomalous window.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] for NaN/infinite samples (repair gaps
    /// with [`aging_timeseries::interp`] before feeding) and propagates
    /// internal estimator failures.
    pub fn push(&mut self, value: f64) -> Result<Option<Alert>> {
        if !value.is_finite() {
            return Err(Error::NonFinite {
                index: self.samples_seen(),
            });
        }
        self.samples.push(value);

        // Hölder point for the centre of the trailing neighbourhood.
        let w = self.config.holder_radius;
        if self.samples_seen() > 2 * w {
            let window = &self.samples[self.samples.len() - (2 * w + 1)..];
            let h =
                holder::increment_exponent(window, self.config.holder_max_lag, self.config.max_h)?;
            self.holder_trace.push(h);
        } else {
            return Ok(None);
        }

        // Dimension window due?
        let n = self.holder_dropped + self.holder_trace.len();
        let cfg = &self.config;
        if n < cfg.dimension_window
            || !(n - cfg.dimension_window).is_multiple_of(cfg.dimension_stride)
        {
            return Ok(None);
        }
        let window = &self.holder_trace[self.holder_trace.len() - cfg.dimension_window..];
        let d = cfg.dimension_method.estimate(window)?;
        let mean_h = stats::mean(window)?;
        let raw_index = self.samples_seen() - 1;
        self.dimension_trace.push((raw_index, d));
        self.mean_holder_trace.push((raw_index, mean_h));
        self.windows_seen += 1;

        // Warmup skip.
        if self.windows_seen <= cfg.skip_windows {
            return Ok(None);
        }

        // Baseline formation.
        if self.baseline.is_none() {
            self.baseline_dim.push(d);
            self.baseline_h.push(mean_h);
            if self.baseline_dim.len() >= cfg.baseline_windows {
                let dim_median = stats::median(&self.baseline_dim)?;
                let dim_mad = stats::mad(&self.baseline_dim)?;
                let h_mad = stats::mad(&self.baseline_h)?;
                self.baseline = Some(Baseline {
                    dimension: dim_median,
                    dimension_delta: (cfg.mad_multiplier * dim_mad)
                        .clamp(cfg.jump_delta, 3.0 * cfg.jump_delta),
                    mean_holder: stats::median(&self.baseline_h)?,
                    holder_delta: (cfg.mad_multiplier * h_mad)
                        .clamp(cfg.holder_drop, 2.0 * cfg.holder_drop),
                });
            }
            return Ok(None);
        }
        let baseline = self.baseline.expect("set above");

        // Anomaly rules.
        let dim_jump = d > baseline.dimension + baseline.dimension_delta;
        let mut collapse_level = baseline.mean_holder - baseline.holder_delta;
        if baseline.mean_holder > cfg.holder_drop {
            // Only meaningful when there is regularity to collapse from;
            // a noise-like baseline (h ≈ 0) has no lower floor.
            collapse_level = collapse_level.max(cfg.holder_floor_fraction * baseline.mean_holder);
        }
        let collapse = mean_h < collapse_level;
        let anomalous = match cfg.rule {
            JumpRule::DimensionJump => dim_jump,
            JumpRule::HolderCollapse => collapse,
            JumpRule::Either => dim_jump || collapse,
        };
        if !anomalous {
            self.consecutive_anomalies = 0;
            return Ok(None);
        }
        self.consecutive_anomalies += 1;
        if self.alarmed {
            return Ok(None);
        }
        let level = if self.consecutive_anomalies >= cfg.confirm_windows {
            self.alarmed = true;
            AlertLevel::Alarm
        } else if self.consecutive_anomalies == 1 {
            AlertLevel::Warning
        } else {
            return Ok(None);
        };
        let trigger = match (dim_jump, collapse) {
            (true, true) => Trigger::Both,
            (true, false) => Trigger::DimensionJump,
            (false, true) => Trigger::HolderCollapse,
            (false, false) => unreachable!("anomalous implies a trigger"),
        };
        let alert = Alert {
            sample_index: raw_index,
            level,
            trigger,
            dimension: d,
            mean_holder: mean_h,
            dimension_baseline: baseline.dimension,
            holder_baseline: baseline.mean_holder,
        };
        self.alerts.push(alert);
        Ok(Some(alert))
    }

    /// All alerts so far, in order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Whether the full alarm has fired.
    pub fn is_alarmed(&self) -> bool {
        self.alarmed
    }

    /// The established baseline, once enough windows exist.
    pub fn baseline(&self) -> Option<Baseline> {
        self.baseline
    }

    /// The Hölder trace computed so far (delayed by `holder_radius`
    /// samples relative to the raw input).
    pub fn holder_trace(&self) -> &[f64] {
        &self.holder_trace
    }

    /// The dimension trace: `(raw-sample index, dimension)` pairs.
    pub fn dimension_trace(&self) -> &[(usize, f64)] {
        &self.dimension_trace
    }

    /// The windowed mean-Hölder trace: `(raw-sample index, mean h)` pairs.
    pub fn mean_holder_trace(&self) -> &[(usize, f64)] {
        &self.mean_holder_trace
    }

    /// Number of raw samples consumed (including any dropped by
    /// [`HolderDimensionDetector::shrink_history`]).
    pub fn len(&self) -> usize {
        self.samples_seen()
    }

    /// Whether no samples have been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.samples_seen() == 0
    }

    /// Total raw samples consumed over the detector's lifetime.
    pub fn samples_seen(&self) -> usize {
        self.samples_dropped + self.samples.len()
    }

    /// Drops buffered history that future computations no longer need,
    /// bounding the detector's memory for indefinite streaming. Alerts and
    /// the dimension trace are kept (they are small — one entry per
    /// stride); the raw-sample and Hölder buffers are truncated to the
    /// trailing windows the next push reads, so
    /// [`HolderDimensionDetector::holder_trace`] subsequently returns only
    /// the retained suffix.
    ///
    /// Calling this at any point does not change any future alert or
    /// trace value.
    pub fn shrink_history(&mut self) {
        let keep_samples = 2 * self.config.holder_radius + 1;
        if self.samples.len() > keep_samples {
            let drop = self.samples.len() - keep_samples;
            self.samples.drain(..drop);
            self.samples_dropped += drop;
        }
        let keep_holder = self.config.dimension_window;
        if self.holder_trace.len() > keep_holder {
            let drop = self.holder_trace.len() - keep_holder;
            self.holder_trace.drain(..drop);
            self.holder_dropped += drop;
        }
    }

    /// Resets all state (e.g. after a rejuvenation or reboot). The
    /// configuration is retained.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.samples_dropped = 0;
        self.holder_trace.clear();
        self.holder_dropped = 0;
        self.dimension_trace.clear();
        self.mean_holder_trace.clear();
        self.windows_seen = 0;
        self.baseline_dim.clear();
        self.baseline_h.clear();
        self.baseline = None;
        self.consecutive_anomalies = 0;
        self.alerts.clear();
        self.alarmed = false;
    }
}

/// Result of an offline end-to-end analysis of a full counter series.
#[derive(Debug, Clone)]
pub struct OfflineAnalysis {
    /// The Hölder trace (index `i` corresponds to raw sample
    /// `i + holder_radius`).
    pub holder_trace: Vec<f64>,
    /// `(raw-sample index, dimension)` pairs.
    pub dimension_trace: Vec<(usize, f64)>,
    /// `(raw-sample index, windowed mean Hölder)` pairs.
    pub mean_holder_trace: Vec<(usize, f64)>,
    /// All alerts.
    pub alerts: Vec<Alert>,
    /// The baseline, if it formed.
    pub baseline: Option<Baseline>,
}

impl OfflineAnalysis {
    /// The first full alarm, if any.
    pub fn first_alarm(&self) -> Option<Alert> {
        self.alerts
            .iter()
            .copied()
            .find(|a| a.level == AlertLevel::Alarm)
    }
}

/// Runs the detector over a complete series in one call.
///
/// # Errors
///
/// Propagates configuration and estimator failures; NaN samples are
/// rejected.
pub fn analyze(values: &[f64], config: &DetectorConfig) -> Result<OfflineAnalysis> {
    let mut det = HolderDimensionDetector::new(config.clone())?;
    for &v in values {
        det.push(v)?;
    }
    Ok(OfflineAnalysis {
        holder_trace: det.holder_trace,
        dimension_trace: det.dimension_trace,
        mean_holder_trace: det.mean_holder_trace,
        alerts: det.alerts,
        baseline: det.baseline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_fractal::generate;

    /// Smooth persistent first half, rough noise second half: the
    /// archetypal regularity collapse.
    fn collapse_signal(n: usize, seed: u64) -> Vec<f64> {
        let mut x = generate::fbm(n / 2, 0.9, seed).unwrap();
        let last = *x.last().unwrap();
        let noise = generate::white_noise(n / 2, seed + 1000).unwrap();
        x.extend(noise.iter().map(|v| last + v));
        x
    }

    #[test]
    fn config_validation() {
        assert!(DetectorConfig::default().validate().is_ok());
        let bad = |f: fn(&mut DetectorConfig)| {
            let mut c = DetectorConfig::default();
            f(&mut c);
            c.validate().is_err()
        };
        assert!(bad(|c| c.holder_max_lag = 2));
        assert!(bad(|c| c.holder_radius = 8));
        assert!(bad(|c| c.max_h = 0.0));
        assert!(bad(|c| c.dimension_window = 4));
        assert!(bad(|c| c.dimension_stride = 0));
        assert!(bad(|c| c.baseline_windows = 1));
        assert!(bad(|c| c.jump_delta = 0.0));
        assert!(bad(|c| c.mad_multiplier = f64::NAN));
        assert!(bad(|c| c.holder_drop = 0.0));
        assert!(bad(|c| c.holder_floor_fraction = 1.0));
        assert!(bad(|c| c.holder_floor_fraction = -0.1));
        assert!(bad(|c| c.confirm_windows = 0));
    }

    #[test]
    fn builder_round_trips_and_validates() {
        let built = DetectorConfig::builder().build().unwrap();
        assert_eq!(built, DetectorConfig::default());

        let custom = DetectorConfig::builder()
            .holder_radius(48)
            .holder_max_lag(16)
            .max_h(1.5)
            .dimension_window(96)
            .dimension_stride(8)
            .dimension_method(DimensionMethod::Variation)
            .skip_windows(1)
            .baseline_windows(6)
            .jump_delta(0.15)
            .mad_multiplier(4.0)
            .holder_drop(0.25)
            .holder_floor_fraction(0.3)
            .rule(JumpRule::HolderCollapse)
            .confirm_windows(2)
            .build()
            .unwrap();
        assert_eq!(custom.holder_radius, 48);
        assert_eq!(custom.holder_max_lag, 16);
        assert_eq!(custom.max_h, 1.5);
        assert_eq!(custom.dimension_window, 96);
        assert_eq!(custom.dimension_stride, 8);
        assert_eq!(custom.dimension_method, DimensionMethod::Variation);
        assert_eq!(custom.skip_windows, 1);
        assert_eq!(custom.baseline_windows, 6);
        assert_eq!(custom.jump_delta, 0.15);
        assert_eq!(custom.mad_multiplier, 4.0);
        assert_eq!(custom.holder_drop, 0.25);
        assert_eq!(custom.holder_floor_fraction, 0.3);
        assert_eq!(custom.rule, JumpRule::HolderCollapse);
        assert_eq!(custom.confirm_windows, 2);

        // Invalid combinations fail at build time.
        assert!(DetectorConfig::builder().holder_max_lag(2).build().is_err());
        assert!(DetectorConfig::builder().holder_radius(8).build().is_err());
        assert!(DetectorConfig::builder()
            .confirm_windows(0)
            .build()
            .is_err());
    }

    #[test]
    fn warmup_sample_count() {
        let c = DetectorConfig::default();
        // 64 + 128 + (2+12+3−1)·16 = 448.
        assert_eq!(c.warmup_samples(), 448);
    }

    #[test]
    fn stationary_signal_never_alarms() {
        // Stationary fGn at several roughness levels: regularity never
        // changes, so the alarm must stay silent.
        for &(h, seed) in &[(0.3, 1u64), (0.5, 2), (0.7, 3)] {
            let x = generate::fgn(4000, h, seed).unwrap();
            let analysis = analyze(&x, &DetectorConfig::default()).unwrap();
            assert!(analysis.baseline.is_some());
            assert!(
                analysis.first_alarm().is_none(),
                "H={h}: {:?}",
                analysis.alerts
            );
        }
    }

    #[test]
    fn regularity_collapse_triggers_alarm() {
        let n = 4000;
        let x = collapse_signal(n, 2);
        let analysis = analyze(&x, &DetectorConfig::default()).unwrap();
        let alarm = analysis.first_alarm().expect("alarm must fire");
        // Alarm must land after the regime change began.
        assert!(alarm.sample_index > n / 2, "index {}", alarm.sample_index);
        // And reasonably soon after it (within the detector's natural
        // latency: holder radius + dimension window + confirmation).
        assert!(
            alarm.sample_index < n / 2 + 500,
            "index {}",
            alarm.sample_index
        );
    }

    #[test]
    fn collapse_rule_reports_holder_trigger() {
        let config = DetectorConfig {
            rule: JumpRule::HolderCollapse,
            ..DetectorConfig::default()
        };
        let x = collapse_signal(4000, 4);
        let analysis = analyze(&x, &config).unwrap();
        let alarm = analysis.first_alarm().expect("collapse rule must fire");
        assert_eq!(alarm.trigger, Trigger::HolderCollapse);
        assert!(alarm.mean_holder < alarm.holder_baseline - 0.3);
    }

    #[test]
    fn dimension_rule_alone_is_silent_on_stationary() {
        let config = DetectorConfig {
            rule: JumpRule::DimensionJump,
            ..DetectorConfig::default()
        };
        let x = generate::fgn(4000, 0.5, 5).unwrap();
        let analysis = analyze(&x, &config).unwrap();
        assert!(analysis.first_alarm().is_none());
    }

    #[test]
    fn warning_precedes_alarm() {
        let x = collapse_signal(4000, 6);
        let analysis = analyze(&x, &DetectorConfig::default()).unwrap();
        let warning_idx = analysis
            .alerts
            .iter()
            .position(|a| a.level == AlertLevel::Warning);
        let alarm_idx = analysis
            .alerts
            .iter()
            .position(|a| a.level == AlertLevel::Alarm);
        let (w, a) = (warning_idx.unwrap(), alarm_idx.unwrap());
        assert!(w < a);
        assert!(analysis.alerts[w].sample_index < analysis.alerts[a].sample_index);
    }

    #[test]
    fn streaming_matches_offline() {
        let x = generate::fbm(2000, 0.6, 7).unwrap();
        let config = DetectorConfig::default();
        let offline = analyze(&x, &config).unwrap();
        let mut det = HolderDimensionDetector::new(config).unwrap();
        for &v in &x {
            det.push(v).unwrap();
        }
        assert_eq!(det.holder_trace(), offline.holder_trace.as_slice());
        assert_eq!(det.dimension_trace(), offline.dimension_trace.as_slice());
        assert_eq!(det.alerts(), offline.alerts.as_slice());
    }

    #[test]
    fn alarm_latches_until_reset() {
        let x = collapse_signal(4000, 8);
        let mut det = HolderDimensionDetector::new(DetectorConfig::default()).unwrap();
        for &v in &x {
            det.push(v).unwrap();
        }
        assert!(det.is_alarmed());
        let alarm_count = det
            .alerts()
            .iter()
            .filter(|a| a.level == AlertLevel::Alarm)
            .count();
        assert_eq!(alarm_count, 1, "alarm must fire exactly once");

        det.reset();
        assert!(!det.is_alarmed());
        assert!(det.is_empty());
        assert!(det.alerts().is_empty());
        assert_eq!(det.baseline(), None);
    }

    #[test]
    fn shrink_history_preserves_behaviour_and_bounds_memory() {
        let x = collapse_signal(4000, 20);
        let config = DetectorConfig::default();
        let mut full = HolderDimensionDetector::new(config.clone()).unwrap();
        let mut shrunk = HolderDimensionDetector::new(config.clone()).unwrap();
        for (i, &v) in x.iter().enumerate() {
            full.push(v).unwrap();
            shrunk.push(v).unwrap();
            if i % 37 == 0 {
                shrunk.shrink_history();
            }
        }
        assert_eq!(full.alerts(), shrunk.alerts());
        assert_eq!(full.dimension_trace(), shrunk.dimension_trace());
        assert_eq!(full.len(), shrunk.len());
        // Memory genuinely bounded.
        shrunk.shrink_history();
        assert!(shrunk.holder_trace().len() <= config.dimension_window);
        assert!(full.holder_trace().len() > config.dimension_window);
    }

    #[test]
    fn rejects_nan_samples() {
        let mut det = HolderDimensionDetector::new(DetectorConfig::default()).unwrap();
        det.push(1.0).unwrap();
        assert!(det.push(f64::NAN).is_err());
    }

    #[test]
    fn traces_are_delayed_consistently() {
        let x = generate::fgn(500, 0.5, 9).unwrap();
        let config = DetectorConfig::default();
        let analysis = analyze(&x, &config).unwrap();
        // Hölder trace length = n − 2·radius.
        assert_eq!(analysis.holder_trace.len(), 500 - 64);
        // Dimension indices are valid raw-sample indices; mean-h trace is
        // parallel to the dimension trace.
        assert_eq!(
            analysis.dimension_trace.len(),
            analysis.mean_holder_trace.len()
        );
        for (&(idx, d), &(idx2, h)) in analysis
            .dimension_trace
            .iter()
            .zip(&analysis.mean_holder_trace)
        {
            assert_eq!(idx, idx2);
            assert!(idx < 500);
            assert!((1.0..=2.0).contains(&d));
            assert!((-1.0..=2.0).contains(&h));
        }
    }

    #[test]
    fn dimension_methods_both_work() {
        let x = generate::fgn(2000, 0.5, 10).unwrap();
        for method in [DimensionMethod::BoxCounting, DimensionMethod::Variation] {
            let config = DetectorConfig {
                dimension_method: method,
                ..DetectorConfig::default()
            };
            let analysis = analyze(&x, &config).unwrap();
            assert!(!analysis.dimension_trace.is_empty(), "{method:?}");
        }
    }

    #[test]
    fn constant_input_is_smooth_not_error() {
        let x = vec![5.0; 1200];
        let analysis = analyze(&x, &DetectorConfig::default()).unwrap();
        // Hölder trace is capped at max_h, dimension of a constant trace
        // is 1, and nothing alarms.
        assert!(analysis.first_alarm().is_none());
        for &(_, d) in &analysis.dimension_trace {
            assert_eq!(d, 1.0);
        }
    }

    #[test]
    fn baseline_reports_adaptive_delta() {
        let x = generate::fgn(2000, 0.5, 11).unwrap();
        let analysis = analyze(&x, &DetectorConfig::default()).unwrap();
        let b = analysis.baseline.unwrap();
        assert!(b.dimension_delta >= 0.2); // at least jump_delta
        assert!((1.0..=2.0).contains(&b.dimension));
        assert!((-1.0..=2.0).contains(&b.mean_holder));
    }
}
