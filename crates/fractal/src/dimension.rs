//! Fractal dimension of the graph of a time series.
//!
//! The target paper's detector tracks the **box-counting dimension of the
//! local Hölder exponent trace** over a sliding window; a jump in that
//! dimension precedes failure. This module supplies the dimension
//! estimators:
//!
//! - [`box_counting`] — classic grid cover of the normalised graph,
//! - [`variation`] — the oscillation/variation method of Dubuc et al.,
//!   usually better behaved on short windows,
//! - [`higuchi`] — Higuchi's curve-length method.
//!
//! For a self-affine graph with Hurst exponent `H` (e.g. fBm),
//! `D = 2 − H`; a smooth curve has `D = 1`; white noise approaches `D = 2`.

use aging_timeseries::regression::{log_log_fit, LineFit};
use aging_timeseries::{stats, Error, Result};

/// A graph-dimension estimate together with its scaling fit.
#[derive(Debug, Clone, PartialEq)]
pub struct DimensionEstimate {
    /// Estimated dimension, clamped to the meaningful range `[1, 2]`.
    pub dimension: f64,
    /// Raw (unclamped) dimension from the fit.
    pub raw_dimension: f64,
    /// The underlying log–log fit.
    pub fit: LineFit,
}

/// Box-counting dimension of the graph `{(t, x[t])}`.
///
/// The graph is normalised to the unit square, covered with grids of side
/// `2^{−k}`, and the number of occupied boxes `N(ε)` is regressed against
/// `1/ε`. Columns are swept with linear interpolation between adjacent
/// samples so the "curve", not just the sample points, is covered.
///
/// # Errors
///
/// Returns [`Error::TooShort`] below 16 samples, [`Error::NonFinite`] for
/// NaN input, and [`Error::Numerical`] for a constant series (a degenerate
/// graph; its dimension is 1 by convention but no fit is possible —
/// callers that want the convention use [`box_counting_or_smooth`]).
pub fn box_counting(data: &[f64]) -> Result<DimensionEstimate> {
    Error::require_len(data, 16)?;
    Error::require_finite(data)?;
    let n = data.len();
    let lo = stats::min(data)?;
    let hi = stats::max(data)?;
    if hi - lo <= f64::EPSILON * lo.abs().max(1.0) {
        return Err(Error::Numerical(
            "constant series has degenerate graph".into(),
        ));
    }
    let span = hi - lo;

    // Grid levels: ε = 2^{-k}, from 2 divisions up to ~n/4 divisions so
    // each column holds a few samples.
    let max_k = ((n as f64 / 4.0).log2().floor() as usize).max(2);
    if max_k < 3 {
        return Err(Error::TooShort {
            required: 32,
            actual: n,
        });
    }

    // Time columns cover contiguous sample runs (t = i/(n−1) is monotone
    // in i), so each column's vertical extent — including the linear
    // interpolation to the first sample past the column — is the min/max
    // of one contiguous data slice. min/max commute with the monotone
    // graph normalisation, so counting boxes from the raw-slice extremes
    // is exact, needs no per-column state arrays, and the scan runs
    // through the 4-lane [`min_max`] kernel instead of a loop-carried
    // read-modify-write. `max_k` ≤ 64, so the fit points live on the
    // stack. This runs per StreamingDimension emission: zero heap.
    let mut xs = [0.0f64; 64];
    let mut ys = [0.0f64; 64];
    for k in 1..=max_k {
        let divisions = 1usize << k;
        let eps = 1.0 / divisions as f64;
        let mut count = 0usize;
        let mut i = 0usize;
        while i < n {
            let t = i as f64 / (n - 1) as f64;
            let col = ((t / eps) as usize).min(divisions - 1);
            let mut j = i + 1;
            while j < n {
                let tj = j as f64 / (n - 1) as f64;
                if ((tj / eps) as usize).min(divisions - 1) != col {
                    break;
                }
                j += 1;
            }
            // Include the interpolation partner (first sample of the next
            // column) in this column's excursion.
            let (mn, mx) = crate::holder::min_max(&data[i..=j.min(n - 1)]);
            let lo_box = (((mn - lo) / span) / eps).floor() as i64;
            let hi_box = (((mx - lo) / span) / eps).floor() as i64;
            count += (hi_box - lo_box + 1).max(1) as usize;
            i = j;
        }
        xs[k - 1] = divisions as f64;
        ys[k - 1] = count as f64;
    }
    let fit = log_log_fit(&xs[..max_k], &ys[..max_k])?;
    Ok(DimensionEstimate {
        dimension: fit.slope.clamp(1.0, 2.0),
        raw_dimension: fit.slope,
        fit,
    })
}

/// Like [`box_counting`] but maps the degenerate constant-series case to
/// dimension 1 (a flat line is smooth) instead of an error. Other failures
/// still propagate.
///
/// # Errors
///
/// Same as [`box_counting`] except the constant case.
pub fn box_counting_or_smooth(data: &[f64]) -> Result<f64> {
    match box_counting(data) {
        Ok(est) => Ok(est.dimension),
        Err(Error::Numerical(_)) => Ok(1.0),
        Err(e) => Err(e),
    }
}

/// Variation (oscillation) dimension of Dubuc et al.: the mean oscillation
/// of the series over windows of radius `r` scales as `r^{2−D}` for a
/// self-affine graph; regress `log mean-osc` on `log r`.
///
/// More stable than grid box-counting on the short windows used by the
/// sliding detector.
///
/// # Errors
///
/// Returns [`Error::TooShort`] below 16 samples, [`Error::NonFinite`] for
/// NaN input, and [`Error::Numerical`] for constant series.
pub fn variation(data: &[f64]) -> Result<DimensionEstimate> {
    Error::require_len(data, 16)?;
    Error::require_finite(data)?;
    let n = data.len();
    let max_r = (n / 4).max(2);
    // Radii are 1, 2, 4, … ≤ max_r, so there are exactly
    // bits(max_r) of them — no materialised radius list needed.
    let n_radii = (usize::BITS - max_r.leading_zeros()) as usize;
    if n_radii < 3 {
        return Err(Error::TooShort {
            required: 16,
            actual: n,
        });
    }
    // At most bits(usize) dyadic radii, so the fit points fit on the
    // stack; this runs per StreamingDimension emission: zero heap.
    let mut xs = [0.0f64; usize::BITS as usize];
    let mut ys = [0.0f64; usize::BITS as usize];
    let mut len = 0usize;
    let mut r = 1usize;
    while r <= max_r {
        let mut total = 0.0;
        for t in 0..n {
            let lo = t.saturating_sub(r);
            let hi = (t + r).min(n - 1);
            let (mn, mx) = crate::holder::min_max(&data[lo..=hi]);
            total += mx - mn;
        }
        let mean_osc = total / n as f64;
        if mean_osc > 0.0 {
            xs[len] = r as f64;
            ys[len] = mean_osc;
            len += 1;
        }
        r *= 2;
    }
    if len < 3 {
        return Err(Error::Numerical(
            "constant series has degenerate oscillation".into(),
        ));
    }
    let fit = log_log_fit(&xs[..len], &ys[..len])?;
    // osc ~ r^H with H = 2 − D.
    Ok(DimensionEstimate {
        dimension: (2.0 - fit.slope).clamp(1.0, 2.0),
        raw_dimension: 2.0 - fit.slope,
        fit,
    })
}

/// Higuchi's fractal dimension: the curve length measured at stride `k`
/// scales as `k^{−D}`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `k_max < 3`,
/// [`Error::TooShort`] when `n < 4·k_max`, and [`Error::Numerical`] for
/// constant series.
pub fn higuchi(data: &[f64], k_max: usize) -> Result<DimensionEstimate> {
    if k_max < 3 {
        return Err(Error::invalid("k_max", "must be at least 3"));
    }
    Error::require_len(data, 4 * k_max)?;
    Error::require_finite(data)?;
    let n = data.len();
    let mut points = Vec::with_capacity(k_max);
    for k in 1..=k_max {
        let mut lengths = Vec::with_capacity(k);
        for m in 0..k {
            let steps = (n - 1 - m) / k;
            if steps == 0 {
                continue;
            }
            let mut len = 0.0;
            for i in 1..=steps {
                len += (data[m + i * k] - data[m + (i - 1) * k]).abs();
            }
            // Higuchi normalisation.
            let norm = (n - 1) as f64 / (steps as f64 * k as f64);
            lengths.push(len * norm / k as f64);
        }
        if let Ok(mean_len) = stats::mean(&lengths) {
            if mean_len > 0.0 {
                points.push((k as f64, mean_len));
            }
        }
    }
    if points.len() < 3 {
        return Err(Error::Numerical(
            "constant series has degenerate curve length".into(),
        ));
    }
    let (xs, ys): (Vec<f64>, Vec<f64>) = points.iter().copied().unzip();
    let fit = log_log_fit(&xs, &ys)?;
    Ok(DimensionEstimate {
        dimension: (-fit.slope).clamp(1.0, 2.0),
        raw_dimension: -fit.slope,
        fit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn smooth_curve_has_dimension_one() {
        let x: Vec<f64> = (0..512).map(|i| (i as f64 * 0.01).sin()).collect();
        let d = box_counting(&x).unwrap();
        assert!(d.dimension < 1.25, "box {}", d.dimension);
        let v = variation(&x).unwrap();
        assert!(v.dimension < 1.2, "variation {}", v.dimension);
        let h = higuchi(&x, 8).unwrap();
        assert!(h.dimension < 1.2, "higuchi {}", h.dimension);
    }

    #[test]
    fn white_noise_dimension_near_two() {
        let x = generate::white_noise(4096, 1).unwrap();
        let v = variation(&x).unwrap();
        assert!(v.dimension > 1.8, "variation {}", v.dimension);
        let h = higuchi(&x, 8).unwrap();
        assert!(h.dimension > 1.8, "higuchi {}", h.dimension);
    }

    #[test]
    fn fbm_dimension_tracks_two_minus_h() {
        for &(hurst, seed) in &[(0.3, 2u64), (0.5, 3), (0.8, 4)] {
            let x = generate::fbm(8192, hurst, seed).unwrap();
            let expect = 2.0 - hurst;
            let v = variation(&x).unwrap();
            assert!(
                (v.dimension - expect).abs() < 0.15,
                "H={hurst}: variation {} vs {expect}",
                v.dimension
            );
            let hg = higuchi(&x, 8).unwrap();
            assert!(
                (hg.dimension - expect).abs() < 0.2,
                "H={hurst}: higuchi {} vs {expect}",
                hg.dimension
            );
        }
    }

    #[test]
    fn box_counting_orders_roughness() {
        let smooth = generate::fbm(4096, 0.8, 5).unwrap();
        let rough = generate::fbm(4096, 0.2, 6).unwrap();
        let ds = box_counting(&smooth).unwrap().dimension;
        let dr = box_counting(&rough).unwrap().dimension;
        assert!(dr > ds + 0.2, "rough {dr} smooth {ds}");
    }

    #[test]
    fn dimension_is_amplitude_invariant() {
        // The graph is normalised, so scaling the values must not move D.
        let x = generate::fbm(2048, 0.5, 7).unwrap();
        let scaled: Vec<f64> = x.iter().map(|v| v * 1000.0).collect();
        let a = box_counting(&x).unwrap().dimension;
        let b = box_counting(&scaled).unwrap().dimension;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn constant_series_handling() {
        let x = vec![2.5; 256];
        assert!(matches!(box_counting(&x), Err(Error::Numerical(_))));
        assert_eq!(box_counting_or_smooth(&x).unwrap(), 1.0);
        assert!(variation(&x).is_err());
        assert!(higuchi(&x, 8).is_err());
    }

    #[test]
    fn guards() {
        let x = generate::white_noise(64, 8).unwrap();
        assert!(box_counting(&x[..8]).is_err());
        assert!(higuchi(&x, 2).is_err());
        assert!(higuchi(&x[..8], 8).is_err());
        let mut bad = x.clone();
        bad[10] = f64::NAN;
        assert!(box_counting(&bad).is_err());
        assert!(variation(&bad).is_err());
    }

    #[test]
    fn estimates_expose_diagnostics() {
        let x = generate::fbm(1024, 0.5, 9).unwrap();
        let d = variation(&x).unwrap();
        assert!(d.fit.r_squared > 0.9);
        assert!(d.raw_dimension > 0.0);
    }

    #[test]
    fn short_window_variation_works_at_64() {
        // The sliding detector uses windows this small.
        let x = generate::fbm(64, 0.5, 10).unwrap();
        let d = variation(&x).unwrap();
        assert!(d.dimension >= 1.0 && d.dimension <= 2.0);
    }
}
