//! Operating-characteristic sweeps: trade detection coverage against
//! false alarms by sweeping a predictor's sensitivity parameter over a
//! fixed fleet of monitor logs.
//!
//! This quantifies the tuning landscape the paper's threshold choice sits
//! in (experiment E9): each sweep point re-scores the whole fleet with a
//! different threshold and records coverage, false alarms and lead time.

use crate::detector::DetectorConfig;
use crate::eval::{compare_in, ComparisonRow, PredictorSpec};
use aging_memsim::{Counter, SimReport};
use aging_par::Pool;
use aging_timeseries::{Error, Result};

/// One point of an operating-characteristic sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RocPoint {
    /// The sensitivity parameter value at this point.
    pub parameter: f64,
    /// Aggregated scoring at this parameter.
    pub row: ComparisonRow,
}

impl RocPoint {
    /// Detection coverage in `[0, 1]`.
    pub fn coverage(&self) -> f64 {
        self.row.coverage()
    }

    /// False alarms per healthy segment (0 when no healthy segments).
    pub fn false_alarm_rate(&self) -> f64 {
        if self.row.healthy_segments == 0 {
            0.0
        } else {
            self.row.false_alarms as f64 / self.row.healthy_segments as f64
        }
    }
}

/// Which detector parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SweepParameter {
    /// The Hölder-collapse threshold `holder_drop`.
    HolderDrop,
    /// The dimension-jump floor `jump_delta`.
    JumpDelta,
    /// The confirmation count (rounded to the nearest integer ≥ 1).
    ConfirmWindows,
}

/// Sweeps one detector parameter over `values`, scoring each setting on
/// the same fleet of reports.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for an empty sweep and propagates
/// evaluation failures.
pub fn sweep_detector(
    base: &DetectorConfig,
    parameter: SweepParameter,
    values: &[f64],
    reports: &[SimReport],
    counter: Counter,
) -> Result<Vec<RocPoint>> {
    sweep_detector_in(base, parameter, values, reports, counter, Pool::global())
}

/// [`sweep_detector`] on an explicit pool: sweep points are scored in
/// parallel (each point's fleet evaluation stays sequential to avoid
/// oversubscription), with results ordered like `values` — bit-identical
/// to the sequential sweep for any pool size.
///
/// # Errors
///
/// Same failure modes as [`sweep_detector`].
pub fn sweep_detector_in(
    base: &DetectorConfig,
    parameter: SweepParameter,
    values: &[f64],
    reports: &[SimReport],
    counter: Counter,
    pool: &Pool,
) -> Result<Vec<RocPoint>> {
    if values.is_empty() {
        return Err(Error::invalid("values", "must not be empty"));
    }
    let inner = Pool::sequential();
    pool.try_map(values, |&v| {
        let mut config = base.clone();
        match parameter {
            SweepParameter::HolderDrop => config.holder_drop = v,
            SweepParameter::JumpDelta => config.jump_delta = v,
            SweepParameter::ConfirmWindows => {
                config.confirm_windows = (v.round().max(1.0)) as usize
            }
        }
        let row = compare_in(
            &PredictorSpec::HolderDimension(config),
            reports,
            counter,
            &inner,
        )?;
        Ok(RocPoint { parameter: v, row })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_memsim::{simulate, Scenario};

    fn tiny_fleet() -> Vec<SimReport> {
        let mut reports: Vec<SimReport> = (0..2)
            .map(|s| simulate(&Scenario::tiny_aging(s, 192.0), 5.0 * 3600.0).unwrap())
            .collect();
        reports.push(simulate(&Scenario::tiny_aging(9, 0.0), 5.0 * 3600.0).unwrap());
        reports
    }

    fn tiny_config() -> DetectorConfig {
        DetectorConfig {
            holder_radius: 16,
            holder_max_lag: 4,
            dimension_window: 64,
            dimension_stride: 16,
            baseline_windows: 8,
            ..DetectorConfig::default()
        }
    }

    #[test]
    fn sweep_produces_one_point_per_value() {
        let reports = tiny_fleet();
        let points = sweep_detector(
            &tiny_config(),
            SweepParameter::HolderDrop,
            &[0.2, 0.4, 0.8],
            &reports,
            Counter::AvailableBytes,
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.coverage() >= 0.0 && p.coverage() <= 1.0);
            assert!(p.false_alarm_rate() >= 0.0 && p.false_alarm_rate() <= 1.0);
        }
    }

    #[test]
    fn coverage_never_increases_with_stricter_confirmation() {
        let reports = tiny_fleet();
        let points = sweep_detector(
            &tiny_config(),
            SweepParameter::ConfirmWindows,
            &[1.0, 3.0, 8.0, 20.0],
            &reports,
            Counter::AvailableBytes,
        )
        .unwrap();
        for w in points.windows(2) {
            assert!(
                w[1].row.detected <= w[0].row.detected,
                "stricter confirmation cannot detect more"
            );
            assert!(w[1].row.false_alarms <= w[0].row.false_alarms);
        }
    }

    #[test]
    fn empty_sweep_is_error() {
        let reports = tiny_fleet();
        assert!(sweep_detector(
            &tiny_config(),
            SweepParameter::JumpDelta,
            &[],
            &reports,
            Counter::AvailableBytes,
        )
        .is_err());
    }
}
