//! One-call aging assessment: runs the whole analysis stack over a
//! monitored resource series and produces a structured, printable report —
//! the "operator-facing" surface of the library.

use crate::detector::{analyze, DetectorConfig, OfflineAnalysis};
use aging_fractal::holder::{holder_trace, HolderSummary};
use aging_fractal::spectrum::{mfdfa, MfdfaConfig};
use aging_timeseries::trend::{MannKendall, SenSlope, TrendDirection};
use aging_timeseries::{stats, Error, Result, TimeSeries};

/// Direction-aware verdict of an assessment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// No aging indicators.
    Healthy,
    /// Statistically significant depletion trend and/or regularity loss,
    /// but the crash detector has not confirmed.
    Aging,
    /// The crash detector's alarm fired — failure expected soon.
    Critical,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Verdict::Healthy => "HEALTHY",
            Verdict::Aging => "AGING",
            Verdict::Critical => "CRITICAL",
        };
        f.write_str(s)
    }
}

/// Configuration of [`assess`].
#[derive(Debug, Clone, PartialEq)]
pub struct AssessmentConfig {
    /// Detector configuration.
    pub detector: DetectorConfig,
    /// Mann–Kendall significance level.
    pub alpha: f64,
    /// The level whose crossing counts as exhaustion (e.g. 0 for free
    /// memory).
    pub exhaustion_level: f64,
    /// Whether exhaustion means falling (free memory) or rising (swap).
    pub depleting: bool,
    /// A linear ETA only contributes to an `Aging` verdict when it falls
    /// within this horizon (heavy-tailed workloads drift on short windows,
    /// producing huge but meaningless extrapolations).
    pub aging_eta_horizon_secs: f64,
}

impl Default for AssessmentConfig {
    fn default() -> Self {
        AssessmentConfig {
            detector: DetectorConfig::default(),
            alpha: 0.05,
            exhaustion_level: 0.0,
            depleting: true,
            aging_eta_horizon_secs: 24.0 * 3600.0,
        }
    }
}

/// A full aging assessment of one counter series.
#[derive(Debug, Clone)]
pub struct Assessment {
    /// Number of samples analysed.
    pub samples: usize,
    /// Covered duration in seconds.
    pub duration_secs: f64,
    /// Mann–Kendall result on the raw series.
    pub mann_kendall: MannKendall,
    /// Detected monotone direction at the configured level.
    pub trend_direction: TrendDirection,
    /// Sen's slope per hour.
    pub sen_slope_per_hour: f64,
    /// Linear time-to-exhaustion (seconds from the end of the series), if
    /// the trend points toward exhaustion.
    pub eta_secs: Option<f64>,
    /// Hölder-trace summary over the whole series.
    pub holder: HolderSummary,
    /// Mean Hölder exponent of the first and last quarter.
    pub holder_first_quarter: f64,
    /// Mean Hölder exponent of the last quarter.
    pub holder_last_quarter: f64,
    /// MF-DFA spectrum width (multifractality), when the series is long
    /// enough.
    pub spectrum_width: Option<f64>,
    /// Detector traces and alerts.
    pub detector: OfflineAnalysis,
    /// Sampling period of the analysed series (seconds).
    pub sample_period_secs: f64,
    /// The combined verdict.
    pub verdict: Verdict,
}

impl Assessment {
    /// Time (seconds from series start) of the detector's first full
    /// alarm, if any.
    pub fn alarm_secs(&self) -> Option<f64> {
        self.detector
            .first_alarm()
            .map(|a| a.sample_index as f64 * self.sample_period_secs)
    }
}

impl std::fmt::Display for Assessment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "── aging assessment ─────────────────────────────")?;
        writeln!(
            f,
            "samples            {} over {:.1} h",
            self.samples,
            self.duration_secs / 3600.0
        )?;
        writeln!(
            f,
            "trend              {} (p = {:.4}), Sen slope {:+.1}/h",
            self.trend_direction, self.mann_kendall.p_value, self.sen_slope_per_hour
        )?;
        match self.eta_secs {
            Some(eta) => writeln!(f, "linear exhaustion  in {:.1} h", eta / 3600.0)?,
            None => writeln!(f, "linear exhaustion  not indicated")?,
        }
        writeln!(
            f,
            "holder exponent    mean {:.3} (first quarter {:.3} → last quarter {:.3})",
            self.holder.mean, self.holder_first_quarter, self.holder_last_quarter
        )?;
        if let Some(w) = self.spectrum_width {
            writeln!(f, "spectrum width     {w:.3}")?;
        }
        match self.detector.first_alarm() {
            Some(alarm) => writeln!(
                f,
                "detector           ALARM at sample {} ({:?})",
                alarm.sample_index, alarm.trigger
            )?,
            None => writeln!(
                f,
                "detector           quiet ({} warnings)",
                self.detector.alerts.len()
            )?,
        }
        writeln!(f, "verdict            {}", self.verdict)
    }
}

/// Runs the full assessment over a uniformly sampled counter series.
///
/// # Errors
///
/// Returns [`Error::TooShort`] when the series is shorter than the
/// detector's Hölder neighbourhood (`2·holder_radius + 1` samples) and
/// propagates estimator failures. Individual optional measurements
/// (spectrum width) are skipped rather than failing the report.
pub fn assess(series: &TimeSeries, config: &AssessmentConfig) -> Result<Assessment> {
    config.detector.validate()?;
    if !(0.0 < config.alpha && config.alpha < 1.0) {
        return Err(Error::invalid("alpha", "must lie in (0, 1)"));
    }
    series.require_finite()?;
    let values = series.values();
    Error::require_len(values, 2 * config.detector.holder_radius + 1)?;

    let mann_kendall = MannKendall::test(values)?;
    let trend_direction = mann_kendall.direction(config.alpha);
    let sen = SenSlope::estimate(values, series.dt())?;
    let toward_exhaustion = match config.depleting {
        true => sen.slope < 0.0 && trend_direction == TrendDirection::Decreasing,
        false => sen.slope > 0.0 && trend_direction == TrendDirection::Increasing,
    };
    let span = (values.len() - 1) as f64 * series.dt();
    let eta_secs = if toward_exhaustion {
        sen.time_to_level(config.exhaustion_level)
            .map(|t| (t - span).max(0.0))
    } else {
        None
    };

    let trace = holder_trace(values, &config.detector.holder_estimator())?;
    let holder = HolderSummary::of(&trace)?;
    let q = trace.len() / 4;
    let holder_first_quarter = stats::mean(&trace[..q.max(1)])?;
    let holder_last_quarter = stats::mean(&trace[trace.len() - q.max(1)..])?;

    let spectrum_width = mfdfa(values, &MfdfaConfig::default())
        .ok()
        .map(|r| r.width());

    let detector = analyze(values, &config.detector)?;

    let critical = detector.first_alarm().is_some();
    let regularity_loss = holder_last_quarter < holder_first_quarter - 0.25;
    let eta_imminent = eta_secs.is_some_and(|eta| eta <= config.aging_eta_horizon_secs);
    let verdict = if critical {
        Verdict::Critical
    } else if eta_imminent || regularity_loss {
        Verdict::Aging
    } else {
        Verdict::Healthy
    };

    Ok(Assessment {
        samples: values.len(),
        duration_secs: span,
        mann_kendall,
        trend_direction,
        sen_slope_per_hour: sen.slope * 3600.0,
        eta_secs,
        holder,
        holder_first_quarter,
        holder_last_quarter,
        spectrum_width,
        detector,
        sample_period_secs: series.dt(),
        verdict,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_memsim::{simulate, Counter, Scenario};

    fn tiny_config() -> AssessmentConfig {
        AssessmentConfig {
            detector: DetectorConfig {
                holder_radius: 16,
                holder_max_lag: 4,
                dimension_window: 64,
                dimension_stride: 16,
                baseline_windows: 8,
                ..DetectorConfig::default()
            },
            ..AssessmentConfig::default()
        }
    }

    #[test]
    fn healthy_machine_assessed_healthy() {
        let report = simulate(&Scenario::tiny_aging(21, 0.0), 4.0 * 3600.0).unwrap();
        let series = report.log.series(Counter::AvailableBytes).unwrap();
        let a = assess(&series, &tiny_config()).unwrap();
        assert_eq!(a.verdict, Verdict::Healthy, "{a}");
        // Heavy-tailed workloads drift on short windows, so a (distant)
        // linear ETA may exist — but it must lie beyond the aging horizon.
        if let Some(eta) = a.eta_secs {
            assert!(eta > tiny_config().aging_eta_horizon_secs, "{a}");
        }
        assert!(!a.to_string().is_empty());
    }

    #[test]
    fn crashing_machine_assessed_critical() {
        let report = simulate(&Scenario::tiny_aging(22, 192.0), 6.0 * 3600.0).unwrap();
        assert!(report.first_crash().is_some());
        let series = report.log.series(Counter::AvailableBytes).unwrap();
        let a = assess(&series, &tiny_config()).unwrap();
        assert_eq!(a.verdict, Verdict::Critical, "{a}");
        assert!(a.alarm_secs().is_some());
        // Sen slope negative (depleting).
        assert!(a.sen_slope_per_hour < 0.0);
    }

    #[test]
    fn slow_leak_detected_as_aging_before_detector_fires() {
        // Very slow leak: clear trend long before any collapse. Use only
        // the early portion of the run so the detector stays quiet.
        let report = simulate(&Scenario::tiny_aging(23, 24.0), 2.0 * 3600.0).unwrap();
        let series = report.log.series(Counter::AvailableBytes).unwrap();
        let a = assess(&series, &tiny_config()).unwrap();
        assert_ne!(a.verdict, Verdict::Healthy, "{a}");
        assert_eq!(a.trend_direction, TrendDirection::Decreasing);
    }

    #[test]
    fn display_contains_verdict() {
        let report = simulate(&Scenario::tiny_aging(24, 0.0), 2.0 * 3600.0).unwrap();
        let series = report.log.series(Counter::AvailableBytes).unwrap();
        let a = assess(&series, &tiny_config()).unwrap();
        let text = a.to_string();
        assert!(text.contains("verdict"));
        assert!(text.contains("holder exponent"));
    }

    #[test]
    fn guards() {
        let series = aging_timeseries::TimeSeries::from_values(0.0, 1.0, vec![1.0; 10]).unwrap();
        assert!(assess(&series, &tiny_config()).is_err()); // too short
        let mut bad = tiny_config();
        bad.alpha = 0.0;
        let report = simulate(&Scenario::tiny_aging(25, 0.0), 3600.0).unwrap();
        let s = report.log.series(Counter::AvailableBytes).unwrap();
        assert!(assess(&s, &bad).is_err());
    }
}
