//! Gap repair for series with missing samples (encoded as NaN).
//!
//! Real performance-monitor logs drop samples; the analyses in this
//! workspace require dense data, so gaps must be filled explicitly before
//! analysis. All fillers operate in place.

use crate::error::{Error, Result};

/// How to fill NaN gaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillMethod {
    /// Straight line between the nearest valid neighbours.
    Linear,
    /// Repeat the previous valid sample (zero-order hold).
    Hold,
    /// Copy the nearest valid sample (ties resolve to the earlier one).
    Nearest,
}

/// Fills NaN gaps in place using the chosen method.
///
/// Leading gaps are filled from the first valid sample and trailing gaps
/// from the last valid sample regardless of method.
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input and [`Error::Numerical`] when
/// the series contains no valid sample at all.
///
/// # Examples
///
/// ```
/// use aging_timeseries::interp::{fill_gaps, FillMethod};
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let mut data = [1.0, f64::NAN, 3.0];
/// fill_gaps(&mut data, FillMethod::Linear)?;
/// assert_eq!(data, [1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
pub fn fill_gaps(data: &mut [f64], method: FillMethod) -> Result<()> {
    Error::require_len(data, 1)?;
    let first_valid = data
        .iter()
        .position(|v| v.is_finite())
        .ok_or_else(|| Error::Numerical("no valid samples to interpolate from".into()))?;
    let last_valid = data
        .iter()
        .rposition(|v| v.is_finite())
        .expect("a valid sample exists");

    // Edge fills.
    let head = data[first_valid];
    for v in &mut data[..first_valid] {
        *v = head;
    }
    let tail = data[last_valid];
    for v in &mut data[last_valid + 1..] {
        *v = tail;
    }

    // Interior gaps.
    let mut i = first_valid;
    while i <= last_valid {
        if data[i].is_finite() {
            i += 1;
            continue;
        }
        let gap_start = i; // first NaN
        let mut j = i;
        while !data[j].is_finite() {
            j += 1;
        }
        let gap_end = j; // first valid after the gap
        let left = data[gap_start - 1];
        let right = data[gap_end];
        let gap_len = gap_end - gap_start;
        for (k, v) in data[gap_start..gap_end].iter_mut().enumerate() {
            *v = match method {
                FillMethod::Linear => {
                    let t = (k + 1) as f64 / (gap_len + 1) as f64;
                    left + t * (right - left)
                }
                FillMethod::Hold => left,
                FillMethod::Nearest => {
                    // Distance to left neighbour is k+1, to right is gap_len-k.
                    if k < gap_len - k {
                        left
                    } else {
                        right
                    }
                }
            };
        }
        i = gap_end;
    }
    Ok(())
}

/// Fraction of samples that are NaN or infinite.
pub fn missing_fraction(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().filter(|v| !v.is_finite()).count() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fills_interior() {
        let mut d = [0.0, f64::NAN, f64::NAN, 3.0];
        fill_gaps(&mut d, FillMethod::Linear).unwrap();
        assert_eq!(d, [0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn hold_repeats_left() {
        let mut d = [5.0, f64::NAN, f64::NAN, 9.0];
        fill_gaps(&mut d, FillMethod::Hold).unwrap();
        assert_eq!(d, [5.0, 5.0, 5.0, 9.0]);
    }

    #[test]
    fn nearest_picks_closer_side() {
        let mut d = [0.0, f64::NAN, f64::NAN, f64::NAN, 10.0];
        fill_gaps(&mut d, FillMethod::Nearest).unwrap();
        assert_eq!(d, [0.0, 0.0, 0.0, 10.0, 10.0]);
    }

    #[test]
    fn edges_fill_from_nearest_valid() {
        let mut d = [f64::NAN, f64::NAN, 4.0, f64::NAN];
        fill_gaps(&mut d, FillMethod::Linear).unwrap();
        assert_eq!(d, [4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn infinities_are_treated_as_gaps() {
        let mut d = [1.0, f64::INFINITY, 3.0];
        fill_gaps(&mut d, FillMethod::Linear).unwrap();
        assert_eq!(d, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn all_nan_is_error() {
        let mut d = [f64::NAN, f64::NAN];
        assert!(fill_gaps(&mut d, FillMethod::Linear).is_err());
        assert!(fill_gaps(&mut [], FillMethod::Hold).is_err());
    }

    #[test]
    fn no_gaps_is_identity() {
        let mut d = [1.0, 2.0, 3.0];
        fill_gaps(&mut d, FillMethod::Linear).unwrap();
        assert_eq!(d, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn missing_fraction_counts() {
        assert_eq!(missing_fraction(&[]), 0.0);
        assert_eq!(missing_fraction(&[1.0, f64::NAN, f64::INFINITY, 2.0]), 0.5);
    }
}
