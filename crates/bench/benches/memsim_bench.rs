//! Simulator throughput benchmarks (simulated hours per wall second).

use aging_memsim::{simulate, Scenario};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_memsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("memsim");
    // One simulated hour = 3600 steps.
    group.throughput(Throughput::Elements(3600));
    group.bench_function("tiny-1h", |b| {
        let scenario = Scenario::tiny_aging(1, 16.0);
        b.iter(|| simulate(std::hint::black_box(&scenario), 3600.0).unwrap())
    });
    group.bench_function("nt4-web-server-1h", |b| {
        let scenario = Scenario::aging_web_server(1);
        b.iter(|| simulate(std::hint::black_box(&scenario), 3600.0).unwrap())
    });
    group.bench_function("multi-process-1h", |b| {
        let scenario = aging_memsim::MultiScenario::leaky_app_with_neighbours(1, 16.0);
        b.iter(|| {
            let mut m = aging_memsim::MultiMachine::boot(std::hint::black_box(&scenario)).unwrap();
            m.run_for(3600.0);
            m.log().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_memsim);
criterion_main!(benches);
