//! Mid-run snapshot/restore parity for [`MachinePipeline`] — the
//! pipeline-level half of the ISSUE 5 crash-safety contract (the serve
//! kill-and-recover differential is the end-to-end half).
//!
//! A pipeline snapshotted mid-stream and restored into a *freshly
//! constructed* pipeline must be indistinguishable from the original:
//! re-encoding the restored state reproduces the snapshot byte for byte,
//! and feeding the remainder of the trace to both produces identical
//! event sequences, stage counters and fusion outcomes.

use aging_core::baseline::TrendPredictorConfig;
use aging_core::detector::DetectorConfig;
use aging_core::fusion::FusionRule;
use aging_memsim::{Counter, Scenario};
use aging_stream::detector::DetectorSpec;
use aging_stream::pipeline::{CounterDetector, MachinePipeline, PipelineEvent};
use aging_stream::source::{MachineSource, SampleSource, StreamSample};
use aging_stream::GateConfig;
use aging_timeseries::persist::Reader;

const COUNTER: Counter = Counter::AvailableBytes;
const HORIZON_SECS: f64 = 8.0 * 3600.0;

fn trend_spec() -> DetectorSpec {
    DetectorSpec::Trend(TrendPredictorConfig {
        window: 120,
        refit_every: 8,
        alarm_horizon_secs: 900.0,
        ..TrendPredictorConfig::depleting(5.0)
    })
}

fn holder_spec() -> DetectorSpec {
    DetectorSpec::Holder(DetectorConfig::default())
}

fn gate() -> GateConfig {
    GateConfig {
        nominal_period_secs: 5.0,
        ..GateConfig::default()
    }
}

fn build(spec: &DetectorSpec) -> MachinePipeline {
    let detectors = vec![CounterDetector {
        counter: COUNTER,
        spec: spec.clone(),
    }];
    MachinePipeline::new(&detectors, FusionRule::Majority, gate()).expect("pipeline builds")
}

/// One leaky machine's AvailableBytes trace.
fn trace(seed: u64) -> Vec<StreamSample> {
    let scenario = Scenario::tiny_aging(seed, 192.0);
    let mut source = MachineSource::new(&scenario, COUNTER, HORIZON_SECS).expect("source");
    let mut out = Vec::new();
    while let Some(s) = source.next_sample().expect("infallible source") {
        out.push(s);
    }
    assert!(out.len() > 300, "trace too short to split meaningfully");
    out
}

fn feed(p: &mut MachinePipeline, samples: &[StreamSample]) -> Vec<PipelineEvent> {
    let mut events = Vec::new();
    for s in samples {
        p.ingest(COUNTER, *s, &mut events);
    }
    events
}

#[test]
fn snapshot_restore_resumes_bit_identically() {
    // On this trace the trend alarm fires around sample 120, so the two
    // split points cover both interesting snapshots: one *before* the
    // alarm (the restored pipeline must raise it) and one *after* (the
    // latched alarm and fused vote must survive the snapshot).
    for (name, spec, cut_div) in [
        ("trend-prealarm", trend_spec(), 8),
        ("trend-postalarm", trend_spec(), 2),
        ("holder", holder_spec(), 3),
    ] {
        let samples = trace(0xA5);
        let cut = samples.len() / cut_div;

        // Reference: one uninterrupted pipeline over the whole trace.
        let mut full = build(&spec);
        let mut full_events = feed(&mut full, &samples);
        full.finish(&mut full_events);

        // Interrupted: feed a prefix, snapshot, restore into a fresh
        // pipeline built from the same config.
        let mut original = build(&spec);
        let prefix_events = feed(&mut original, &samples[..cut]);
        let mut blob = Vec::new();
        original.encode_state(&mut blob);

        let mut restored = build(&spec);
        restored
            .restore_state(&mut Reader::new(&blob))
            .expect("restore succeeds");

        // The restored pipeline re-encodes to the identical snapshot.
        let mut blob2 = Vec::new();
        restored.encode_state(&mut blob2);
        assert_eq!(blob, blob2, "{name}: snapshot round trip not byte-stable");

        // Both continuations see the rest of the trace.
        let mut tail_original = feed(&mut original, &samples[cut..]);
        original.finish(&mut tail_original);
        let mut tail_restored = feed(&mut restored, &samples[cut..]);
        restored.finish(&mut tail_restored);

        assert_eq!(
            tail_original, tail_restored,
            "{name}: restored pipeline diverged from the original"
        );
        assert_eq!(original.counters(), restored.counters(), "{name}: counters");
        assert_eq!(original.is_fused(), restored.is_fused(), "{name}: fused");
        assert_eq!(
            original.completed_time_secs(),
            restored.completed_time_secs(),
            "{name}: watermark"
        );

        // Continuity: prefix + tail is exactly the uninterrupted history.
        let mut stitched = prefix_events;
        stitched.extend_from_slice(&tail_original);
        assert_eq!(stitched, full_events, "{name}: stitched history differs");

        match name {
            // Non-vacuous: the leaky trace must actually raise an alarm,
            // and with the early split it must land after the cut, so the
            // restored pipeline is the one raising it.
            "trend-prealarm" => assert!(
                tail_restored
                    .iter()
                    .any(|e| matches!(e.level, aging_stream::pipeline::AlertLevel::Alarm)),
                "expected an alarm in the continuation segment"
            ),
            // With the late split the alarm is already latched at
            // snapshot time; the restored pipeline must carry the fused
            // vote without re-raising it.
            "trend-postalarm" => {
                assert!(restored.is_fused(), "latched fusion vote lost in restore");
                assert!(tail_restored.is_empty(), "one-shot alarm fired twice");
            }
            _ => {}
        }
    }
}

#[test]
fn restore_rejects_mismatched_stream_count() {
    let mut one = build(&trend_spec());
    let mut events = Vec::new();
    for s in &trace(7)[..200] {
        one.ingest(COUNTER, *s, &mut events);
    }
    let mut blob = Vec::new();
    one.encode_state(&mut blob);

    let detectors = vec![
        CounterDetector {
            counter: COUNTER,
            spec: trend_spec(),
        },
        CounterDetector {
            counter: COUNTER,
            spec: holder_spec(),
        },
    ];
    let mut two =
        MachinePipeline::new(&detectors, FusionRule::Majority, gate()).expect("pipeline builds");
    assert!(
        two.restore_state(&mut Reader::new(&blob)).is_err(),
        "restoring a 1-stream snapshot into a 2-stream pipeline must fail"
    );
}

#[test]
fn restore_rejects_detector_family_mismatch() {
    let mut trend = build(&trend_spec());
    let mut events = Vec::new();
    for s in &trace(9)[..200] {
        trend.ingest(COUNTER, *s, &mut events);
    }
    let mut blob = Vec::new();
    trend.encode_state(&mut blob);

    let mut holder = build(&holder_spec());
    assert!(
        holder.restore_state(&mut Reader::new(&blob)).is_err(),
        "a trend snapshot must not restore into a holder detector"
    );
}
