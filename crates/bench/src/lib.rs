//! # aging-bench
//!
//! Benchmark harness and experiment-reproduction machinery for the
//! `holder-aging` workspace. The `repro` binary regenerates every table
//! and figure of the (reconstructed) evaluation of *"Software Aging and
//! Multifractality of Memory Resources"* (DSN 2003); see DESIGN.md for the
//! experiment index E1–E8 and EXPERIMENTS.md for the recorded results.

pub mod experiments;
pub mod scenarios;
pub mod trajectory;
pub mod util;
