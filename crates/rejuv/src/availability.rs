//! Availability accounting: the metric closed-loop rejuvenation is
//! judged on.
//!
//! A machine's availability over a horizon is the fraction of the
//! horizon it was serving: uptime divided by horizon, where downtime is
//! the sum of planned-restart windows and crash-repair windows. A
//! policy only wins if the small planned outages it spends buy back the
//! large unplanned outages crashes would have cost.

use aging_timeseries::{Error, Result};

/// Fraction of `horizon_secs` a machine was up given `downtime_secs` of
/// accumulated outage. Downtime is clamped to the horizon, so the
/// result is always in `[0, 1]`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on a non-positive or non-finite
/// horizon, or negative/non-finite downtime.
pub fn availability(horizon_secs: f64, downtime_secs: f64) -> Result<f64> {
    if !(horizon_secs > 0.0) || !horizon_secs.is_finite() {
        return Err(Error::invalid(
            "horizon_secs",
            "must be finite and positive",
        ));
    }
    if !(downtime_secs >= 0.0) || !downtime_secs.is_finite() {
        return Err(Error::invalid(
            "downtime_secs",
            "must be finite and non-negative",
        ));
    }
    Ok((horizon_secs - downtime_secs.min(horizon_secs)) / horizon_secs)
}

/// Fleet-level availability roll-up.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AvailabilitySummary {
    /// Machines aggregated.
    pub machines: usize,
    /// Granted planned restarts across the fleet.
    pub restarts: u64,
    /// Crashes (each forcing a repair reboot or ending the run).
    pub crashes: u64,
    /// Total downtime across the fleet, seconds.
    pub downtime_secs: f64,
    /// Mean per-machine availability in `[0, 1]`.
    pub mean_availability: f64,
    /// Worst single machine's availability in `[0, 1]`.
    pub min_availability: f64,
}

impl AvailabilitySummary {
    /// Aggregates per-machine `(restarts, crashes, downtime_secs)`
    /// triples over one shared horizon.
    ///
    /// # Errors
    ///
    /// Propagates [`availability`]'s parameter validation; rejects an
    /// empty fleet.
    pub fn from_machines(horizon_secs: f64, machines: &[(u64, u64, f64)]) -> Result<Self> {
        if machines.is_empty() {
            return Err(Error::invalid("machines", "need at least one machine"));
        }
        let mut summary = AvailabilitySummary {
            machines: machines.len(),
            min_availability: 1.0,
            ..AvailabilitySummary::default()
        };
        for &(restarts, crashes, downtime_secs) in machines {
            let a = availability(horizon_secs, downtime_secs)?;
            summary.restarts += restarts;
            summary.crashes += crashes;
            summary.downtime_secs += downtime_secs;
            summary.mean_availability += a;
            summary.min_availability = summary.min_availability.min(a);
        }
        summary.mean_availability /= machines.len() as f64;
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_is_uptime_fraction() {
        assert_eq!(availability(1000.0, 0.0).unwrap(), 1.0);
        assert_eq!(availability(1000.0, 250.0).unwrap(), 0.75);
        // Downtime beyond the horizon clamps to zero availability.
        assert_eq!(availability(1000.0, 5000.0).unwrap(), 0.0);
    }

    #[test]
    fn availability_guards() {
        assert!(availability(0.0, 0.0).is_err());
        assert!(availability(f64::NAN, 0.0).is_err());
        assert!(availability(100.0, -1.0).is_err());
        assert!(availability(100.0, f64::NAN).is_err());
    }

    #[test]
    fn summary_aggregates() {
        let s = AvailabilitySummary::from_machines(
            1000.0,
            &[(2, 0, 100.0), (0, 1, 500.0), (1, 0, 0.0)],
        )
        .unwrap();
        assert_eq!(s.machines, 3);
        assert_eq!(s.restarts, 3);
        assert_eq!(s.crashes, 1);
        assert_eq!(s.downtime_secs, 600.0);
        assert!((s.mean_availability - (0.9 + 0.5 + 1.0) / 3.0).abs() < 1e-12);
        assert_eq!(s.min_availability, 0.5);
    }

    #[test]
    fn summary_rejects_empty_fleet() {
        assert!(AvailabilitySummary::from_machines(100.0, &[]).is_err());
    }
}
