//! Multifractal spectrum estimation.
//!
//! The target paper's second headline observation is that memory-resource
//! signals are **multifractal** — their singularity spectrum `f(α)` has
//! positive width — and that multifractality intensifies as the system
//! ages. This module estimates the spectrum three ways:
//!
//! - [`partition_function`] — box-measure partition function (exact tool
//!   for cascade measures),
//! - [`structure_function`] — moment scaling of increments, `ζ(q)`,
//! - [`mfdfa`] — multifractal detrended fluctuation analysis, `h(q)`,
//! - [`leader_cumulants`] — wavelet-leader log-cumulants `c₁, c₂`
//!   (`c₂ < 0` ⇔ multifractality).
//!
//! All scaling exponents convert to an `(α, f(α))` spectrum through the
//! numerical [`legendre`] transform.
//!
//! The paper's *fourth* claim — the spectrum **widens** as the system
//! ages — is served by the rolling estimators at the bottom of this
//! module: [`spectrum`] computes one window's `ζ(q) → τ(q) → f(α)` chain
//! and its width `Δα = α_max − α_min`, [`spectrum_trace`] slides that
//! window over a whole series, and [`StreamingSpectrum`] is the
//! bounded-memory online form. Both rolling estimators run one shared
//! incremental structure-function kernel that slides the per-`(q, scale)`
//! moment accumulators by `stride` instead of recomputing the full
//! window (O(stride) work per emission, with a periodic exact rebuild
//! bounding accumulated float residue), so streaming emissions are
//! bit-identical to the batch trace by construction. The q-sweep is
//! embarrassingly parallel and runs on the [`aging_par::Pool`] with
//! pool-size bit-parity.

use aging_par::Pool;
use aging_timeseries::regression::ols;
use aging_timeseries::ring::RingBuffer;
use aging_timeseries::window::dyadic_scales;
use aging_timeseries::{detrend, stats, Error, Result};
use aging_wavelet::{Wavelet, WaveletLeaders};

/// One point of a singularity spectrum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumPoint {
    /// Moment order that produced this point.
    pub q: f64,
    /// Singularity strength (Hölder exponent).
    pub alpha: f64,
    /// Spectrum value `f(α)` (dimension of the set with exponent `α`).
    pub f: f64,
}

/// The default grid of moment orders.
pub fn default_qs() -> Vec<f64> {
    vec![
        -5.0, -4.0, -3.0, -2.0, -1.0, -0.5, 0.5, 1.0, 2.0, 3.0, 4.0, 5.0,
    ]
}

/// The default moment grid for *rolling* Δα estimation (positive branch
/// only).
///
/// Negative-q structure functions are dominated by the smallest
/// increments and are wildly unstable on the O(100)-sample windows a
/// bounded-memory detector can afford — measured on a stationary random
/// walk, window-to-window Δα under [`default_qs`] swings over [0.1, 2.2]
/// while this grid stays under 0.15. The positive branch is also the one
/// that captures burst intermittency, which is exactly how the spectrum
/// widens as a system ages.
pub fn detection_qs() -> Vec<f64> {
    vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0]
}

/// Scaling exponents `τ(q)` (or `ζ(q)`, or `h(q)` — whichever the producer
/// computed), with per-q fit quality.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingExponents {
    /// Moment orders.
    pub qs: Vec<f64>,
    /// Exponent per moment order.
    pub exponents: Vec<f64>,
    /// R² of each log–log fit.
    pub r_squared: Vec<f64>,
}

impl ScalingExponents {
    /// Width of the spectrum implied by interpreting `exponents` as `τ(q)`
    /// and Legendre-transforming: `max α − min α`.
    ///
    /// # Errors
    ///
    /// Propagates [`legendre`] failures.
    pub fn legendre_width(&self) -> Result<f64> {
        let spec = legendre(&self.qs, &self.exponents)?;
        let alphas: Vec<f64> = spec.iter().map(|p| p.alpha).collect();
        Ok(stats::max(&alphas)? - stats::min(&alphas)?)
    }
}

/// Numerical Legendre transform: `α(q) = dτ/dq` (central differences),
/// `f(α) = q·α − τ(q)`. Endpoint derivatives use one-sided differences.
///
/// # Errors
///
/// Returns [`Error::LengthMismatch`] or [`Error::TooShort`] (< 3 points).
pub fn legendre(qs: &[f64], tau: &[f64]) -> Result<Vec<SpectrumPoint>> {
    if qs.len() != tau.len() {
        return Err(Error::LengthMismatch {
            left: qs.len(),
            right: tau.len(),
        });
    }
    Error::require_len(qs, 3)?;
    let n = qs.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let alpha = if i == 0 {
            (tau[1] - tau[0]) / (qs[1] - qs[0])
        } else if i == n - 1 {
            (tau[n - 1] - tau[n - 2]) / (qs[n - 1] - qs[n - 2])
        } else {
            (tau[i + 1] - tau[i - 1]) / (qs[i + 1] - qs[i - 1])
        };
        out.push(SpectrumPoint {
            q: qs[i],
            alpha,
            f: qs[i] * alpha - tau[i],
        });
    }
    Ok(out)
}

/// Box partition function of a (non-negative) **measure** on `2^L` cells:
/// `τ(q)` is the scaling exponent of `Σ_boxes μ(box)^q` against box size
/// over dyadic aggregations.
///
/// For a binomial cascade this matches
/// [`crate::generate::binomial_cascade_tau`] exactly.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for non-power-of-two input or
/// negative mass, [`Error::TooShort`] below 8 cells.
pub fn partition_function(measure: &[f64], qs: &[f64]) -> Result<ScalingExponents> {
    Error::require_len(measure, 8)?;
    Error::require_finite(measure)?;
    if !measure.len().is_power_of_two() {
        return Err(Error::invalid("measure", "length must be a power of two"));
    }
    if measure.iter().any(|&v| v < 0.0) {
        return Err(Error::invalid("measure", "mass must be non-negative"));
    }
    if qs.is_empty() {
        return Err(Error::invalid("qs", "must not be empty"));
    }
    let levels = measure.len().trailing_zeros() as usize;

    // Aggregate the measure at every dyadic box size 2^k cells,
    // k = 0..levels (box size fraction 2^{k - levels}).
    let mut aggregates: Vec<Vec<f64>> = vec![measure.to_vec()];
    for _ in 0..levels {
        let prev = aggregates.last().expect("non-empty");
        let next: Vec<f64> = prev.chunks_exact(2).map(|c| c[0] + c[1]).collect();
        aggregates.push(next);
    }

    let mut exponents = Vec::with_capacity(qs.len());
    let mut r2 = Vec::with_capacity(qs.len());
    for &q in qs {
        // log2 Σ μ^q  versus  log2(box size); τ(q) = −slope w.r.t. −log2 ε.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (k, agg) in aggregates.iter().enumerate() {
            if agg.len() < 2 {
                continue; // skip the single-box top level (Σ μ^q = 1 trivially)
            }
            let s: f64 = agg.iter().filter(|&&m| m > 0.0).map(|&m| m.powf(q)).sum();
            if s > 0.0 && s.is_finite() {
                // Box size ε = 2^{k - levels}; use log2 ε.
                xs.push((k as f64) - (levels as f64));
                ys.push(s.log2());
            }
        }
        if xs.len() < 3 {
            return Err(Error::Numerical(format!(
                "not enough valid partition sums for q={q}"
            )));
        }
        let fit = ols(&xs, &ys)?;
        exponents.push(fit.slope); // Σ μ^q ~ ε^{τ(q)}
        r2.push(fit.r_squared);
    }
    Ok(ScalingExponents {
        qs: qs.to_vec(),
        exponents,
        r_squared: r2,
    })
}

/// Structure-function scaling exponents `ζ(q)`:
/// `S_q(s) = ⟨|x(t+s) − x(t)|^q⟩ ∝ s^{ζ(q)}`.
///
/// For monofractal fBm, `ζ(q) = qH` is linear; concavity in `q` indicates
/// multifractality. Note `τ(q) = ζ(q) − 1` links this to the partition
/// formalism.
///
/// The q-sweep runs on the global [`Pool`] (each moment order is an
/// independent log–log fit); use [`structure_function_in`] for explicit
/// pool control. Output is bit-identical at every pool size.
///
/// # Errors
///
/// Returns [`Error::TooShort`] below 128 samples, plus parameter and fit
/// failures.
pub fn structure_function(data: &[f64], qs: &[f64]) -> Result<ScalingExponents> {
    structure_function_in(data, qs, Pool::global())
}

/// [`structure_function`] on an explicit [`Pool`].
///
/// # Errors
///
/// Same as [`structure_function`].
pub fn structure_function_in(data: &[f64], qs: &[f64], pool: &Pool) -> Result<ScalingExponents> {
    Error::require_len(data, 128)?;
    Error::require_finite(data)?;
    if qs.is_empty() {
        return Err(Error::invalid("qs", "must not be empty"));
    }
    let scales: Vec<usize> = dyadic_scales(data.len(), 8)?;
    // One task per moment order: each per-q fit is self-contained, so the
    // pool's in-order merge (and lowest-index error selection) keeps the
    // output bit-identical to the sequential loop at any thread count.
    let fits = pool.try_map_indexed(qs.len(), |i| structure_fit_q(data, &scales, qs[i]))?;
    let mut exponents = Vec::with_capacity(qs.len());
    let mut r2 = Vec::with_capacity(qs.len());
    for (slope, r_squared) in fits {
        exponents.push(slope);
        r2.push(r_squared);
    }
    Ok(ScalingExponents {
        qs: qs.to_vec(),
        exponents,
        r_squared: r2,
    })
}

/// `d^q` with exact multiply ladders for the common small moment orders.
///
/// `powf` dominated the per-emission profile of the rolling estimators;
/// the ladders are pure multiplies (plus one correctly-rounded `sqrt`)
/// the compiler keeps in registers. Every structure-function path — the
/// batch fit and the incremental kernel — computes moments through this
/// one helper, so streaming==batch bit-parity is unaffected by the
/// substitution. Callers guarantee `d > 0`.
#[inline]
fn moment_pow(d: f64, q: f64) -> f64 {
    if q == 1.0 {
        d
    } else if q == 2.0 {
        d * d
    } else if q == 3.0 {
        (d * d) * d
    } else if q == 4.0 {
        let d2 = d * d;
        d2 * d2
    } else if q == 5.0 {
        let d2 = d * d;
        (d2 * d2) * d
    } else if q == 0.5 {
        d.sqrt()
    } else if q == -1.0 {
        1.0 / d
    } else if q == -2.0 {
        1.0 / (d * d)
    } else {
        d.powf(q)
    }
}

/// Runs `$with(args…, pow)` with `pow` resolved from `$q` — the same
/// ladder as [`moment_pow`], expression for expression, but dispatched
/// once per call instead of once per element, so the kernel inner loops
/// monomorphize into tight branch-free multiply loops. Any edit here must
/// mirror [`moment_pow`] exactly or bit-parity breaks.
/// The `GUARD = false` cases drop the per-element `d > 0` test entirely:
/// for those moment orders `pow(0) == +0.0` exactly, and adding or
/// subtracting `+0.0` never changes the accumulator's bits (the sums
/// never hold `-0.0`: they start at `+0.0` and fold non-negative terms,
/// and `x − x` rounds to `+0.0`). Division-based and `powf` orders keep
/// the guard, since `d = 0` would inject an infinity.
macro_rules! q_dispatch {
    ($q:ident, $with:ident($($args:expr),*)) => {
        if $q == 1.0 {
            $with::<false, _>($($args,)* |d: f64| d)
        } else if $q == 2.0 {
            $with::<false, _>($($args,)* |d: f64| d * d)
        } else if $q == 3.0 {
            $with::<false, _>($($args,)* |d: f64| (d * d) * d)
        } else if $q == 4.0 {
            $with::<false, _>($($args,)* |d: f64| {
                let d2 = d * d;
                d2 * d2
            })
        } else if $q == 5.0 {
            $with::<false, _>($($args,)* |d: f64| {
                let d2 = d * d;
                (d2 * d2) * d
            })
        } else if $q == 0.5 {
            $with::<false, _>($($args,)* |d: f64| d.sqrt())
        } else if $q == -1.0 {
            $with::<true, _>($($args,)* |d: f64| 1.0 / d)
        } else if $q == -2.0 {
            $with::<true, _>($($args,)* |d: f64| 1.0 / (d * d))
        } else {
            $with::<true, _>($($args,)* |d: f64| d.powf($q))
        }
    };
}

/// `Σ_t pow(|x[t+s] − x[t]|)` over pairs with `d > 0`, ascending `t` —
/// the accumulation order of [`structure_fit_q`].
#[inline]
fn moment_sum_with<const GUARD: bool, F: Fn(f64) -> f64>(window: &[f64], s: usize, pow: F) -> f64 {
    let mut acc = 0.0;
    for t in 0..window.len() - s {
        let d = (window[t + s] - window[t]).abs();
        if !GUARD || d > 0.0 {
            acc += pow(d);
        }
    }
    acc
}

/// [`moment_sum_with`] with the q ladder hoisted out of the loop;
/// bit-identical to summing [`moment_pow`] per element.
#[inline]
fn moment_sum(window: &[f64], s: usize, q: f64) -> f64 {
    q_dispatch!(q, moment_sum_with(window, s))
}

/// Subtracts the departing moments then adds the arriving ones onto `a`
/// (pairs with `d > 0`, ascending within each span).
#[inline]
fn slide_row_with<const GUARD: bool, F: Fn(f64) -> f64>(
    a: f64,
    dep: &[f64],
    arr: &[f64],
    pow: F,
) -> f64 {
    let mut a = a;
    for &d in dep {
        if !GUARD || d > 0.0 {
            a -= pow(d);
        }
    }
    for &d in arr {
        if !GUARD || d > 0.0 {
            a += pow(d);
        }
    }
    a
}

/// [`slide_row_with`] with the q ladder hoisted out of the loops;
/// bit-identical to applying [`moment_pow`] per element.
#[inline]
fn slide_row(a: f64, dep: &[f64], arr: &[f64], q: f64) -> f64 {
    q_dispatch!(q, slide_row_with(a, dep, arr))
}

/// One moment order's log–log structure-function fit: `(ζ(q), R²)`.
fn structure_fit_q(data: &[f64], scales: &[usize], q: f64) -> Result<(f64, f64)> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &s in scales {
        let mut acc = 0.0;
        let mut count = 0usize;
        for t in 0..data.len() - s {
            let d = (data[t + s] - data[t]).abs();
            if d > 0.0 {
                acc += moment_pow(d, q);
                count += 1;
            }
        }
        if count > 0 {
            let m = acc / count as f64;
            if m > 0.0 && m.is_finite() {
                xs.push((s as f64).ln());
                ys.push(m.ln());
            }
        }
    }
    if xs.len() < 3 {
        return Err(Error::Numerical(format!(
            "not enough valid structure-function points for q={q}"
        )));
    }
    let fit = ols(&xs, &ys)?;
    Ok((fit.slope, fit.r_squared))
}

/// Configuration of the rolling spectrum estimators ([`spectrum_trace`]
/// offline, [`StreamingSpectrum`] online).
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumConfig {
    /// Trailing-window length in samples (the structure-function input).
    pub window: usize,
    /// Pushes between emissions once the window has filled.
    pub stride: usize,
    /// Moment orders of the q-sweep (strictly increasing, at least 3).
    pub qs: Vec<f64>,
}

impl Default for SpectrumConfig {
    fn default() -> Self {
        SpectrumConfig {
            window: 256,
            stride: 64,
            qs: detection_qs(),
        }
    }
}

impl SpectrumConfig {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the window is below the
    /// structure-function floor (128), the stride is zero or exceeds the
    /// window, or the q grid is shorter than 3, non-finite, or not
    /// strictly increasing.
    pub fn validate(&self) -> Result<()> {
        if self.window < 128 {
            return Err(Error::invalid("window", "must be at least 128 samples"));
        }
        if self.stride == 0 {
            return Err(Error::invalid("stride", "must be positive"));
        }
        if self.stride > self.window {
            return Err(Error::invalid("stride", "must not exceed the window"));
        }
        if self.qs.len() < 3 {
            return Err(Error::invalid("qs", "need at least 3 moment orders"));
        }
        if self.qs.iter().any(|q| !q.is_finite()) {
            return Err(Error::invalid("qs", "must be finite"));
        }
        if self.qs.windows(2).any(|w| w[1] <= w[0]) {
            return Err(Error::invalid("qs", "must be strictly increasing"));
        }
        Ok(())
    }
}

/// One window's full spectrum estimate: `ζ(q)`, the Legendre spectrum of
/// `τ(q) = ζ(q) − 1`, and the width `Δα = α_max − α_min` — the paper's
/// aging indicator.
#[derive(Debug, Clone, PartialEq)]
pub struct SpectrumEstimate {
    /// Structure-function exponents `ζ(q)` with fit quality.
    pub zeta: ScalingExponents,
    /// Legendre spectrum of `τ(q) = ζ(q) − 1`.
    pub spectrum: Vec<SpectrumPoint>,
    /// Smallest singularity strength on the q grid.
    pub alpha_min: f64,
    /// Largest singularity strength on the q grid.
    pub alpha_max: f64,
    /// Spectrum width `α_max − α_min`.
    pub delta_alpha: f64,
}

/// One rolling-window emission: the spectrum width of the trailing window
/// that ends at `input_index`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectrumWindow {
    /// Zero-based index of the push that completed this window.
    pub input_index: u64,
    /// Smallest singularity strength of the window.
    pub alpha_min: f64,
    /// Largest singularity strength of the window.
    pub alpha_max: f64,
    /// Spectrum width `α_max − α_min`.
    pub delta_alpha: f64,
}

/// Batch reference estimator for one window: `ζ(q)` via
/// [`structure_function_in`], `τ(q) = ζ(q) − 1`, the [`legendre`]
/// transform, and `Δα`. The rolling estimators' *first* emission (and
/// every periodic exact rebuild) is bit-identical to this routine; their
/// intermediate emissions slide the moment accumulators incrementally,
/// identically in [`spectrum_trace`] and [`StreamingSpectrum`], so
/// streaming stays bit-identical to the batch trace while drifting only
/// in the low bits of this per-window recompute.
///
/// # Errors
///
/// Propagates [`structure_function`] and [`legendre`] failures.
pub fn spectrum(data: &[f64], qs: &[f64]) -> Result<SpectrumEstimate> {
    spectrum_in(data, qs, Pool::global())
}

/// [`spectrum`] on an explicit [`Pool`].
///
/// # Errors
///
/// Same as [`spectrum`].
pub fn spectrum_in(data: &[f64], qs: &[f64], pool: &Pool) -> Result<SpectrumEstimate> {
    let zeta = structure_function_in(data, qs, pool)?;
    let tau: Vec<f64> = zeta.exponents.iter().map(|&z| z - 1.0).collect();
    let points = legendre(qs, &tau)?;
    let alphas: Vec<f64> = points.iter().map(|p| p.alpha).collect();
    let alpha_min = stats::min(&alphas)?;
    let alpha_max = stats::max(&alphas)?;
    Ok(SpectrumEstimate {
        zeta,
        spectrum: points,
        alpha_min,
        alpha_max,
        delta_alpha: alpha_max - alpha_min,
    })
}

/// Slides between exact accumulator rebuilds in the incremental kernel.
///
/// Each incremental slide leaves O(ulp) residue in the per-`(q, scale)`
/// moment sums (a subtract does not perfectly cancel the add that
/// installed the pair); a periodic full O(window) pass rebounds that
/// drift. Both the batch trace and the streaming estimator rebuild on
/// the identical slide cadence, so bit-parity between them is unaffected.
const REBUILD_EVERY: u32 = 32;

/// Upper bound on the number of structure-function scales: scales are
/// distinct powers of two that fit in a `usize`, so 64 always suffices.
/// Bounding them lets the per-q kernel tasks carry their accumulator
/// rows by value on the stack instead of allocating per emission.
const MAX_SCALES: usize = 64;

/// Per-q scaling fit from the kernel's accumulator row — the exact
/// decision chain of [`structure_fit_q`]'s tail: per scale, mean moment
/// `m = acc / count` contributes `(ln s, ln m)` when `count > 0` and `m`
/// is positive finite; at least 3 surviving points feed [`ols`].
fn fit_row(q: f64, row: &[f64], counts: &[u64], log_scales: &[f64]) -> Result<(f64, f64)> {
    // Scales are distinct powers of two, so there are at most
    // [`MAX_SCALES`] of them: the fit points live on the emission path's
    // stack, never the heap.
    let mut xs = [0.0f64; MAX_SCALES];
    let mut ys = [0.0f64; MAX_SCALES];
    let mut len = 0usize;
    for (si, &acc) in row.iter().enumerate() {
        if counts[si] > 0 {
            let m = acc / counts[si] as f64;
            if m > 0.0 && m.is_finite() {
                xs[len] = log_scales[si];
                ys[len] = m.ln();
                len += 1;
            }
        }
    }
    if len < 3 {
        return Err(Error::Numerical(format!(
            "not enough valid structure-function points for q={q}"
        )));
    }
    let fit = ols(&xs[..len], &ys[..len])?;
    Ok((fit.slope, fit.r_squared))
}

/// Legendre tail shared with [`spectrum_in`]: `ζ(q)` fits → `τ = ζ − 1` →
/// [`legendre`] → `(α_min, α_max)`.
///
/// Inlines [`legendre`]'s central-difference `α(q)` and the NaN-skipping
/// fold of [`stats::min`]/[`stats::max`] — identical arithmetic and error
/// behaviour, with no per-emission Vec materialisation (this runs on the
/// streaming emission path).
fn alpha_range_from_fits(qs: &[f64], fits: &[(f64, f64)]) -> Result<(f64, f64)> {
    if qs.len() != fits.len() {
        return Err(Error::LengthMismatch {
            left: qs.len(),
            right: fits.len(),
        });
    }
    Error::require_len(qs, 3)?;
    let n = qs.len();
    let tau = |i: usize| fits[i].0 - 1.0;
    let mut mn: Option<f64> = None;
    let mut mx: Option<f64> = None;
    for i in 0..n {
        let alpha = if i == 0 {
            (tau(1) - tau(0)) / (qs[1] - qs[0])
        } else if i == n - 1 {
            (tau(n - 1) - tau(n - 2)) / (qs[n - 1] - qs[n - 2])
        } else {
            (tau(i + 1) - tau(i - 1)) / (qs[i + 1] - qs[i - 1])
        };
        if !alpha.is_nan() {
            mn = Some(mn.map_or(alpha, |a| a.min(alpha)));
            mx = Some(mx.map_or(alpha, |a| a.max(alpha)));
        }
    }
    match (mn, mx) {
        (Some(mn), Some(mx)) => Ok((mn, mx)),
        _ => Err(Error::Numerical("no non-NaN samples".into())),
    }
}

/// The incremental structure-function kernel shared by the offline
/// [`spectrum_trace_in`] and the online [`StreamingSpectrum`].
///
/// Holds one moment accumulator `acc[q][s] = Σ_t d(t,s)^q` (pairs with
/// `d > 0`) and one pair count per scale. A slide by `stride` samples
/// subtracts the departing pairs and adds the arriving ones — at most
/// `min(stride, window − s)` each per scale, ascending `t`, subtract
/// before add — instead of re-walking all `window − s` pairs. The
/// increment magnitudes are computed once into shared scratch and reused
/// by every q task, so the per-q pool work is pure ladder arithmetic.
/// Every [`REBUILD_EVERY`]-th slide runs the exact full pass instead.
///
/// Both consumers drive the identical call sequence (one `rebuild` on the
/// first full window, then one `slide` per grid step), which is what
/// makes streaming==batch bit-parity hold by construction.
#[derive(Debug, Clone)]
struct SlidingStructure {
    window: usize,
    stride: usize,
    qs: Vec<f64>,
    scales: Vec<usize>,
    log_scales: Vec<f64>,
    /// `Σ d^q` per `(q, scale)`, row-major by q; valid once `initialized`.
    acc: Vec<f64>,
    /// Pairs with `d > 0` per scale (q-independent).
    counts: Vec<u64>,
    slides_since_rebuild: u32,
    initialized: bool,
    /// Scratch: departing increment magnitudes, per-scale spans.
    dep: Vec<f64>,
    /// Scratch: arriving increment magnitudes, per-scale spans.
    arr: Vec<f64>,
    /// Per-scale `(offset, len)` spans into `dep`/`arr`.
    spans: Vec<(usize, usize)>,
}

impl SlidingStructure {
    fn new(config: &SpectrumConfig) -> Result<Self> {
        let scales = dyadic_scales(config.window, 8)?;
        let log_scales: Vec<f64> = scales.iter().map(|&s| (s as f64).ln()).collect();
        let ns = scales.len();
        Ok(SlidingStructure {
            window: config.window,
            stride: config.stride,
            qs: config.qs.clone(),
            acc: vec![0.0; config.qs.len() * ns],
            counts: vec![0; ns],
            slides_since_rebuild: 0,
            initialized: false,
            dep: Vec::new(),
            arr: Vec::new(),
            spans: Vec::with_capacity(ns),
            scales,
            log_scales,
        })
    }

    /// Exact full pass over one complete window — bit-identical to
    /// [`structure_fit_q`] per q. Resets the rebuild cadence.
    fn rebuild(&mut self, window: &[f64], pool: &Pool) -> Result<Vec<(f64, f64)>> {
        debug_assert_eq!(window.len(), self.window);
        for (si, &s) in self.scales.iter().enumerate() {
            let mut count = 0u64;
            for t in 0..window.len() - s {
                if (window[t + s] - window[t]).abs() > 0.0 {
                    count += 1;
                }
            }
            self.counts[si] = count;
        }
        let ns = self.scales.len();
        let (qs, scales, counts, log_scales) =
            (&self.qs, &self.scales, &self.counts, &self.log_scales);
        let rows = pool.try_map_indexed(qs.len(), |i| {
            let q = qs[i];
            let mut row = [0.0f64; MAX_SCALES];
            for (si, &s) in scales.iter().enumerate() {
                row[si] = moment_sum(window, s, q);
            }
            let fit = fit_row(q, &row[..ns], counts, log_scales);
            Ok::<_, Error>((row, fit))
        })?;
        self.initialized = true;
        self.slides_since_rebuild = 0;
        self.merge_rows(rows)
    }

    /// One incremental slide. `ext` is the outgoing window plus the
    /// `stride` samples that follow it (`window + stride` total): the
    /// outgoing window is `ext[..window]`, the incoming `ext[stride..]`.
    fn slide(&mut self, ext: &[f64], pool: &Pool) -> Result<Vec<(f64, f64)>> {
        debug_assert_eq!(ext.len(), self.window + self.stride);
        debug_assert!(self.initialized);
        if self.slides_since_rebuild + 1 >= REBUILD_EVERY {
            return self.rebuild(&ext[self.stride..], pool);
        }
        self.slides_since_rebuild += 1;

        // Increment magnitudes once, shared by every q task. Departing
        // pairs start at t ∈ [0, m); arriving ones end the new window,
        // u ∈ [stride + (window − s) − m, stride + (window − s)).
        self.dep.clear();
        self.arr.clear();
        self.spans.clear();
        let (window, stride) = (self.window, self.stride);
        for (si, &s) in self.scales.iter().enumerate() {
            let m = stride.min(window - s);
            let off = self.dep.len();
            self.dep.extend((0..m).map(|t| (ext[t + s] - ext[t]).abs()));
            let hi = stride + (window - s);
            self.arr
                .extend((hi - m..hi).map(|u| (ext[u + s] - ext[u]).abs()));
            // Net count change for this scale; the branchless form lets
            // the comparison loops vectorize.
            let mut delta = 0i64;
            for &d in &self.dep[off..off + m] {
                delta -= (d > 0.0) as i64;
            }
            for &d in &self.arr[off..off + m] {
                delta += (d > 0.0) as i64;
            }
            self.counts[si] = (self.counts[si] as i64 + delta) as u64;
            self.spans.push((off, m));
        }

        let ns = self.scales.len();
        let (qs, acc, counts, log_scales) = (&self.qs, &self.acc, &self.counts, &self.log_scales);
        let (dep, arr, spans) = (&self.dep, &self.arr, &self.spans);
        let rows = pool.try_map_indexed(qs.len(), |i| {
            let q = qs[i];
            let mut row = [0.0f64; MAX_SCALES];
            for (si, &(off, m)) in spans.iter().enumerate() {
                row[si] = slide_row(acc[i * ns + si], &dep[off..off + m], &arr[off..off + m], q);
            }
            let fit = fit_row(q, &row[..ns], counts, log_scales);
            Ok::<_, Error>((row, fit))
        })?;
        self.merge_rows(rows)
    }

    /// Commits the per-q accumulator rows in q order, then surfaces the
    /// lowest-q fit error (after the commit, so the kernel state stays
    /// consistent even when a fit degenerates).
    #[allow(clippy::type_complexity)]
    fn merge_rows(
        &mut self,
        rows: Vec<([f64; MAX_SCALES], Result<(f64, f64)>)>,
    ) -> Result<Vec<(f64, f64)>> {
        let ns = self.scales.len();
        let mut fits = Vec::with_capacity(rows.len());
        for (i, (row, fit)) in rows.into_iter().enumerate() {
            self.acc[i * ns..(i + 1) * ns].copy_from_slice(&row[..ns]);
            fits.push(fit);
        }
        fits.into_iter().collect()
    }

    fn encode_state(&self, out: &mut Vec<u8>) {
        use aging_timeseries::persist::{put_bool, put_f64, put_u32, put_u64, put_usize};
        put_bool(out, self.initialized);
        put_u32(out, self.slides_since_rebuild);
        put_usize(out, self.counts.len());
        for &c in &self.counts {
            put_u64(out, c);
        }
        put_usize(out, self.acc.len());
        for &a in &self.acc {
            put_f64(out, a);
        }
    }

    fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        let initialized = r.bool()?;
        let slides_since_rebuild = r.u32()?;
        let nc = r.usize_()?;
        if nc != self.counts.len() {
            return Err(Error::invalid(
                "persist",
                format!(
                    "spectrum scale count {} != snapshot {nc}",
                    self.counts.len()
                ),
            ));
        }
        let mut counts = Vec::with_capacity(nc);
        for _ in 0..nc {
            counts.push(r.u64()?);
        }
        let na = r.usize_()?;
        if na != self.acc.len() {
            return Err(Error::invalid(
                "persist",
                format!(
                    "spectrum accumulator count {} != snapshot {na}",
                    self.acc.len()
                ),
            ));
        }
        let mut acc = Vec::with_capacity(na);
        for _ in 0..na {
            acc.push(r.f64()?);
        }
        self.initialized = initialized;
        self.slides_since_rebuild = slides_since_rebuild;
        self.counts = counts;
        self.acc = acc;
        Ok(())
    }
}

/// Offline rolling-window `Δα(t)` trace: one [`SpectrumWindow`] per
/// window/stride grid position, on exactly the grid [`StreamingSpectrum`]
/// emits on, driven through the same incremental kernel. This is the
/// batch reference of E17's streaming-vs-batch parity gate.
///
/// # Errors
///
/// Returns config validation errors, [`Error::NonFinite`], and per-window
/// fit failures.
pub fn spectrum_trace(data: &[f64], config: &SpectrumConfig) -> Result<Vec<SpectrumWindow>> {
    spectrum_trace_in(data, config, Pool::global())
}

/// [`spectrum_trace`] on an explicit [`Pool`].
///
/// # Errors
///
/// Same as [`spectrum_trace`].
pub fn spectrum_trace_in(
    data: &[f64],
    config: &SpectrumConfig,
    pool: &Pool,
) -> Result<Vec<SpectrumWindow>> {
    config.validate()?;
    Error::require_finite(data)?;
    let mut out = Vec::new();
    if data.len() < config.window {
        return Ok(out);
    }
    let mut kernel = SlidingStructure::new(config)?;
    let mut emit = |start: usize, fits: &[(f64, f64)]| -> Result<()> {
        let (alpha_min, alpha_max) = alpha_range_from_fits(&config.qs, fits)?;
        out.push(SpectrumWindow {
            input_index: (start + config.window - 1) as u64,
            alpha_min,
            alpha_max,
            delta_alpha: alpha_max - alpha_min,
        });
        Ok(())
    };
    let fits = kernel.rebuild(&data[..config.window], pool)?;
    emit(0, &fits)?;
    let mut start = 0usize;
    while start + config.stride + config.window <= data.len() {
        let fits = kernel.slide(&data[start..start + config.window + config.stride], pool)?;
        start += config.stride;
        emit(start, &fits)?;
    }
    Ok(out)
}

/// Bounded-memory rolling spectrum estimator.
///
/// Holds the trailing `window + stride` samples in a [`RingBuffer`] (the
/// extra `stride` keeps the outgoing window's departing pairs
/// recomputable); once the window has filled, every `stride`-th push
/// advances the shared [`SlidingStructure`] kernel — an exact full pass
/// on the first emission, an O(stride) incremental slide afterwards — so
/// each emitted [`SpectrumWindow`] is bit-identical to the offline
/// [`spectrum_trace`] at the same grid position — parity by construction,
/// at any pool size and any push chunking.
#[derive(Debug, Clone)]
pub struct StreamingSpectrum {
    ring: RingBuffer,
    scratch: Vec<f64>,
    kernel: SlidingStructure,
}

impl StreamingSpectrum {
    /// Builds an estimator from a validated config.
    ///
    /// # Errors
    ///
    /// Propagates [`SpectrumConfig::validate`] failures.
    pub fn new(config: &SpectrumConfig) -> Result<Self> {
        config.validate()?;
        Ok(StreamingSpectrum {
            ring: RingBuffer::new(config.window + config.stride)?,
            scratch: Vec::with_capacity(config.window + config.stride),
            kernel: SlidingStructure::new(config)?,
        })
    }

    /// Window length in samples.
    pub fn window(&self) -> usize {
        self.kernel.window
    }

    /// Pushes between emissions.
    pub fn stride(&self) -> usize {
        self.kernel.stride
    }

    /// The moment-order grid.
    pub fn qs(&self) -> &[f64] {
        &self.kernel.qs
    }

    /// Total samples pushed over this estimator's lifetime.
    pub fn samples_seen(&self) -> u64 {
        self.ring.pushed()
    }

    /// Pushes one sample on the global [`Pool`]; returns an emission when
    /// the window/stride grid fires.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] for a non-finite sample (the sample is
    /// not absorbed), plus per-window [`spectrum`] failures.
    pub fn push(&mut self, value: f64) -> Result<Option<SpectrumWindow>> {
        self.push_in(value, Pool::global())
    }

    /// [`StreamingSpectrum::push`] on an explicit [`Pool`].
    ///
    /// # Errors
    ///
    /// Same as [`StreamingSpectrum::push`].
    pub fn push_in(&mut self, value: f64, pool: &Pool) -> Result<Option<SpectrumWindow>> {
        if !value.is_finite() {
            return Err(Error::NonFinite {
                index: self.ring.pushed() as usize,
            });
        }
        self.ring.push(value);
        let n = self.ring.pushed();
        let window = self.kernel.window as u64;
        if n < window || !(n - window).is_multiple_of(self.kernel.stride as u64) {
            return Ok(None);
        }
        self.ring.copy_to(&mut self.scratch);
        let fits = if self.kernel.initialized {
            // The ring holds window + stride samples: the outgoing window
            // is scratch[..window], the incoming one scratch[stride..].
            self.kernel.slide(&self.scratch, pool)?
        } else {
            // First emission: exactly `window` samples retained so far.
            self.kernel.rebuild(&self.scratch, pool)?
        };
        let (alpha_min, alpha_max) = alpha_range_from_fits(&self.kernel.qs, &fits)?;
        Ok(Some(SpectrumWindow {
            input_index: n - 1,
            alpha_min,
            alpha_max,
            delta_alpha: alpha_max - alpha_min,
        }))
    }

    /// Pushes a batch of samples, collecting emissions into `out`
    /// (cleared first). Chunking is irrelevant to the output: any split of
    /// a sample sequence across `push`/`push_slice` calls produces the
    /// same emissions.
    ///
    /// # Errors
    ///
    /// Stops at the first [`StreamingSpectrum::push`] error; emissions
    /// already collected remain in `out`.
    pub fn push_slice(&mut self, values: &[f64], out: &mut Vec<SpectrumWindow>) -> Result<()> {
        self.push_slice_in(values, out, Pool::global())
    }

    /// [`StreamingSpectrum::push_slice`] on an explicit [`Pool`].
    ///
    /// # Errors
    ///
    /// Same as [`StreamingSpectrum::push_slice`].
    pub fn push_slice_in(
        &mut self,
        values: &[f64],
        out: &mut Vec<SpectrumWindow>,
        pool: &Pool,
    ) -> Result<()> {
        out.clear();
        for &value in values {
            if let Some(w) = self.push_in(value, pool)? {
                out.push(w);
            }
        }
        Ok(())
    }

    /// Clears all samples and the emission phase, keeping the parameters.
    pub fn reset(&mut self) {
        let config = SpectrumConfig {
            window: self.kernel.window,
            stride: self.kernel.stride,
            qs: std::mem::take(&mut self.kernel.qs),
        };
        *self = StreamingSpectrum::new(&config).expect("parameters already valid");
    }

    /// Serialises the dynamic state (ring contents and push count plus
    /// the kernel's moment accumulators and rebuild cadence; the
    /// configuration is not persisted).
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        self.ring.encode_state(out);
        self.kernel.encode_state(out);
    }

    /// Restores dynamic state written by
    /// [`StreamingSpectrum::encode_state`] into an estimator built with
    /// the same configuration.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on truncated or inconsistent
    /// bytes.
    pub fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        self.ring.restore_state(r)?;
        self.kernel.restore_state(r)
    }
}

/// Configuration for [`mfdfa`].
#[derive(Debug, Clone, PartialEq)]
pub struct MfdfaConfig {
    /// Detrending polynomial order (1 = MF-DFA1).
    pub order: usize,
    /// Moment orders.
    pub qs: Vec<f64>,
}

impl Default for MfdfaConfig {
    fn default() -> Self {
        MfdfaConfig {
            order: 1,
            qs: default_qs(),
        }
    }
}

/// Result of an MF-DFA run.
#[derive(Debug, Clone, PartialEq)]
pub struct MfdfaResult {
    /// Generalised Hurst exponents `h(q)`, one per `q`.
    pub h_q: ScalingExponents,
    /// Mass exponents `τ(q) = q·h(q) − 1`.
    pub tau_q: Vec<f64>,
    /// Singularity spectrum from the Legendre transform of `τ(q)`.
    pub spectrum: Vec<SpectrumPoint>,
}

impl MfdfaResult {
    /// Spectrum width `max α − min α` — the paper's multifractality
    /// indicator (larger = more multifractal).
    pub fn width(&self) -> f64 {
        let alphas: Vec<f64> = self.spectrum.iter().map(|p| p.alpha).collect();
        let mx = alphas.iter().copied().fold(f64::MIN, f64::max);
        let mn = alphas.iter().copied().fold(f64::MAX, f64::min);
        mx - mn
    }

    /// `h(2)` — the classical Hurst exponent estimate embedded in the run.
    pub fn hurst(&self) -> Option<f64> {
        self.h_q
            .qs
            .iter()
            .position(|&q| (q - 2.0).abs() < 1e-9)
            .map(|i| self.h_q.exponents[i])
    }
}

/// Multifractal detrended fluctuation analysis (Kantelhardt et al. 2002).
///
/// The input is treated as noise-like; the profile is built internally.
///
/// # Errors
///
/// Returns [`Error::TooShort`] below 256 samples, parameter errors for a
/// bad config, and [`Error::Numerical`] when no valid scaling points
/// survive.
pub fn mfdfa(data: &[f64], config: &MfdfaConfig) -> Result<MfdfaResult> {
    if config.order == 0 || config.order > 4 {
        return Err(Error::invalid("order", "must lie in 1..=4"));
    }
    if config.qs.is_empty() {
        return Err(Error::invalid("qs", "must not be empty"));
    }
    Error::require_len(data, 256)?;
    Error::require_finite(data)?;

    // Profile.
    let mean = stats::mean(data)?;
    let mut acc = 0.0;
    let profile: Vec<f64> = data
        .iter()
        .map(|&v| {
            acc += v - mean;
            acc
        })
        .collect();
    let reversed: Vec<f64> = profile.iter().rev().copied().collect();

    let min_scale = (config.order + 3).max(8);
    let scales: Vec<usize> = dyadic_scales(profile.len(), 4)?
        .into_iter()
        .filter(|&s| s >= min_scale)
        .collect();
    if scales.len() < 3 {
        return Err(Error::TooShort {
            required: 256,
            actual: data.len(),
        });
    }

    // Per-scale squared fluctuations for every window (forward + reversed).
    let mut fluctuations: Vec<Vec<f64>> = Vec::with_capacity(scales.len());
    for &s in &scales {
        let mut sq = Vec::new();
        for block in profile.chunks_exact(s) {
            sq.push(detrend::fluctuation(block, config.order)?);
        }
        for block in reversed.chunks_exact(s) {
            sq.push(detrend::fluctuation(block, config.order)?);
        }
        fluctuations.push(sq);
    }

    let mut exponents = Vec::with_capacity(config.qs.len());
    let mut r2 = Vec::with_capacity(config.qs.len());
    for &q in &config.qs {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (si, sq) in fluctuations.iter().enumerate() {
            let positive: Vec<f64> = sq.iter().copied().filter(|&v| v > 0.0).collect();
            if positive.is_empty() {
                continue;
            }
            let fq = if q.abs() < 1e-9 {
                // q → 0 limit: geometric mean.
                (0.5 * positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
            } else {
                (positive.iter().map(|&v| v.powf(q / 2.0)).sum::<f64>() / positive.len() as f64)
                    .powf(1.0 / q)
            };
            if fq > 0.0 && fq.is_finite() {
                xs.push((scales[si] as f64).ln());
                ys.push(fq.ln());
            }
        }
        if xs.len() < 3 {
            return Err(Error::Numerical(format!(
                "not enough valid MF-DFA points for q={q}"
            )));
        }
        let fit = ols(&xs, &ys)?;
        exponents.push(fit.slope);
        r2.push(fit.r_squared);
    }

    let tau_q: Vec<f64> = config
        .qs
        .iter()
        .zip(&exponents)
        .map(|(&q, &h)| q * h - 1.0)
        .collect();
    let spectrum = legendre(&config.qs, &tau_q)?;
    Ok(MfdfaResult {
        h_q: ScalingExponents {
            qs: config.qs.clone(),
            exponents,
            r_squared: r2,
        },
        tau_q,
        spectrum,
    })
}

/// Wavelet-leader log-cumulants.
///
/// `C₁(j) = mean(ln ℓ_j)` and `C₂(j) = var(ln ℓ_j)` behave as
/// `C_m(j) ≈ c_m⁰ + c_m · j·ln2`; `c₁` estimates the typical Hölder
/// exponent and `c₂ ≤ 0` quantifies multifractality (`c₂ ≈ 0` for a
/// monofractal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogCumulants {
    /// First log-cumulant (typical Hölder exponent).
    pub c1: f64,
    /// Second log-cumulant (≈ 0 monofractal, < 0 multifractal).
    pub c2: f64,
}

/// Estimates wavelet-leader log-cumulants of `data`.
///
/// # Errors
///
/// Returns [`Error::TooShort`] when the dyadic prefix cannot support
/// `levels`, plus parameter and fit failures.
pub fn leader_cumulants(
    data: &[f64],
    wavelet: Wavelet,
    levels: usize,
    fit_min_level: usize,
) -> Result<LogCumulants> {
    if levels < 3 {
        return Err(Error::invalid("levels", "must be at least 3"));
    }
    if fit_min_level == 0 || fit_min_level + 2 > levels {
        return Err(Error::invalid(
            "fit_min_level",
            "must be >= 1 and leave at least 3 levels",
        ));
    }
    let leaders = WaveletLeaders::compute(data, wavelet, levels)?;
    let ln2 = std::f64::consts::LN_2;
    let mut xs = Vec::new();
    let mut c1_y = Vec::new();
    let mut c2_y = Vec::new();
    for j in fit_min_level..=levels {
        let band: Vec<f64> = leaders
            .band(j)
            .iter()
            .copied()
            .filter(|&l| l > 0.0)
            .collect();
        if band.len() < 4 {
            continue;
        }
        let logs: Vec<f64> = band.iter().map(|l| l.ln()).collect();
        xs.push(j as f64 * ln2);
        c1_y.push(stats::mean(&logs)?);
        c2_y.push(stats::population_variance(&logs)?);
    }
    if xs.len() < 3 {
        return Err(Error::Numerical(
            "not enough valid levels for log-cumulants".into(),
        ));
    }
    let c1 = ols(&xs, &c1_y)?.slope;
    let c2 = ols(&xs, &c2_y)?.slope;
    Ok(LogCumulants { c1, c2 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn legendre_of_linear_tau_is_single_point() {
        // τ(q) = qH − 1 → α ≡ H, f ≡ 1.
        let qs = default_qs();
        let tau: Vec<f64> = qs.iter().map(|&q| q * 0.6 - 1.0).collect();
        let spec = legendre(&qs, &tau).unwrap();
        for p in &spec {
            assert!((p.alpha - 0.6).abs() < 1e-9);
            assert!((p.f - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn legendre_guards() {
        assert!(legendre(&[1.0, 2.0], &[1.0]).is_err());
        assert!(legendre(&[1.0, 2.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn partition_function_matches_cascade_theory() {
        let m0 = 0.3;
        let measure = generate::binomial_cascade(12, m0, false, 0).unwrap();
        let qs = vec![-3.0, -2.0, -1.0, 0.5, 1.0, 2.0, 3.0, 4.0];
        let est = partition_function(&measure, &qs).unwrap();
        for (i, &q) in qs.iter().enumerate() {
            let theory = generate::binomial_cascade_tau(m0, q);
            assert!(
                (est.exponents[i] - theory).abs() < 0.05,
                "q={q}: {} vs {theory}",
                est.exponents[i]
            );
            assert!(est.r_squared[i] > 0.999, "q={q}");
        }
    }

    #[test]
    fn partition_function_guards() {
        let m = generate::binomial_cascade(6, 0.4, false, 0).unwrap();
        assert!(partition_function(&m[..48], &[1.0]).is_err()); // not pow2
        assert!(partition_function(&m, &[]).is_err());
        assert!(partition_function(&[-1.0; 16], &[1.0]).is_err());
    }

    #[test]
    fn structure_function_linear_for_fbm() {
        let x = generate::fbm(8192, 0.6, 1).unwrap();
        let qs = vec![1.0, 2.0, 3.0];
        let est = structure_function(&x, &qs).unwrap();
        // ζ(q) ≈ qH.
        for (i, &q) in qs.iter().enumerate() {
            assert!(
                (est.exponents[i] - q * 0.6).abs() < 0.15 * q,
                "q={q}: {}",
                est.exponents[i]
            );
        }
    }

    #[test]
    fn mfdfa_recovers_hurst_of_fgn() {
        for &(h, seed) in &[(0.3, 2u64), (0.7, 3)] {
            let x = generate::fgn(8192, h, seed).unwrap();
            let res = mfdfa(&x, &MfdfaConfig::default()).unwrap();
            let h2 = res.hurst().expect("q=2 in default grid");
            assert!((h2 - h).abs() < 0.1, "H={h}: h(2) {h2}");
        }
    }

    #[test]
    fn mfdfa_monofractal_narrow_multifractal_wide() {
        let mono = generate::fgn(8192, 0.6, 4).unwrap();
        let mono_res = mfdfa(&mono, &MfdfaConfig::default()).unwrap();

        let cascade = generate::binomial_cascade(13, 0.3, true, 5).unwrap();
        let multi_res = mfdfa(&cascade, &MfdfaConfig::default()).unwrap();

        assert!(
            multi_res.width() > mono_res.width() + 0.3,
            "mono {} multi {}",
            mono_res.width(),
            multi_res.width()
        );
    }

    #[test]
    fn mfdfa_h_q_nonincreasing_for_cascade() {
        let cascade = generate::binomial_cascade(13, 0.25, true, 6).unwrap();
        let res = mfdfa(&cascade, &MfdfaConfig::default()).unwrap();
        // h(q) must (weakly) decrease with q for a multiplicative cascade.
        let h = &res.h_q.exponents;
        assert!(
            h.first().unwrap() > h.last().unwrap(),
            "h(-5)={} h(5)={}",
            h.first().unwrap(),
            h.last().unwrap()
        );
    }

    #[test]
    fn mfdfa_spectrum_roughly_concave() {
        let cascade = generate::binomial_cascade(13, 0.3, true, 7).unwrap();
        let res = mfdfa(&cascade, &MfdfaConfig::default()).unwrap();
        // The spectrum apex should exceed the endpoints.
        let fmax = res.spectrum.iter().map(|p| p.f).fold(f64::MIN, f64::max);
        let f_first = res.spectrum.first().unwrap().f;
        let f_last = res.spectrum.last().unwrap().f;
        assert!(fmax >= f_first && fmax >= f_last);
        assert!(fmax <= 1.05, "f_max {fmax}");
    }

    #[test]
    fn mfdfa_guards() {
        let x = generate::white_noise(512, 8).unwrap();
        assert!(mfdfa(&x[..100], &MfdfaConfig::default()).is_err());
        assert!(mfdfa(
            &x,
            &MfdfaConfig {
                order: 0,
                qs: default_qs()
            }
        )
        .is_err());
        assert!(mfdfa(
            &x,
            &MfdfaConfig {
                order: 1,
                qs: vec![]
            }
        )
        .is_err());
    }

    #[test]
    fn cumulants_monofractal_vs_multifractal() {
        let mono = generate::fbm(8192, 0.5, 16).unwrap();
        let lc_mono = leader_cumulants(&mono, Wavelet::Daubechies6, 9, 3).unwrap();
        assert!((lc_mono.c1 - 0.5).abs() < 0.2, "c1 {}", lc_mono.c1);
        assert!(lc_mono.c2.abs() < 0.08, "c2 {}", lc_mono.c2);

        // Multifractal cascade "noise": analyse its profile (random walk
        // with cascade-sized steps).
        let cascade = generate::binomial_cascade(13, 0.25, true, 10).unwrap();
        let mut acc = 0.0;
        let walk: Vec<f64> = cascade
            .iter()
            .map(|&m| {
                acc += m;
                acc
            })
            .collect();
        let lc_multi = leader_cumulants(&walk, Wavelet::Daubechies6, 9, 3).unwrap();
        assert!(
            lc_multi.c2 < lc_mono.c2 - 0.02,
            "mono c2 {} multi c2 {}",
            lc_mono.c2,
            lc_multi.c2
        );
    }

    #[test]
    fn cumulants_guards() {
        let x = generate::white_noise(1024, 11).unwrap();
        assert!(leader_cumulants(&x, Wavelet::Haar, 2, 1).is_err());
        assert!(leader_cumulants(&x, Wavelet::Haar, 6, 5).is_err());
        assert!(leader_cumulants(&x[..16], Wavelet::Haar, 6, 2).is_err());
    }

    fn spectrum_test_config() -> SpectrumConfig {
        SpectrumConfig {
            window: 128,
            stride: 32,
            qs: vec![-2.0, -1.0, 1.0, 2.0, 3.0],
        }
    }

    #[test]
    fn spectrum_config_guards() {
        let base = spectrum_test_config();
        assert!(base.validate().is_ok());
        for bad in [
            SpectrumConfig {
                window: 64,
                ..base.clone()
            },
            SpectrumConfig {
                stride: 0,
                ..base.clone()
            },
            SpectrumConfig {
                stride: 200,
                ..base.clone()
            },
            SpectrumConfig {
                qs: vec![1.0, 2.0],
                ..base.clone()
            },
            SpectrumConfig {
                qs: vec![1.0, f64::NAN, 3.0],
                ..base.clone()
            },
            SpectrumConfig {
                qs: vec![1.0, 3.0, 2.0],
                ..base.clone()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn spectrum_width_matches_legendre_width() {
        let x = generate::fbm(512, 0.6, 21).unwrap();
        let est = spectrum(&x, &default_qs()).unwrap();
        assert!((est.delta_alpha - (est.alpha_max - est.alpha_min)).abs() < 1e-15);
        // Same chain as ScalingExponents::legendre_width on τ(q) = ζ(q) − 1.
        let tau = ScalingExponents {
            qs: est.zeta.qs.clone(),
            exponents: est.zeta.exponents.iter().map(|&z| z - 1.0).collect(),
            r_squared: est.zeta.r_squared.clone(),
        };
        assert_eq!(
            est.delta_alpha.to_bits(),
            tau.legendre_width().unwrap().to_bits()
        );
    }

    #[test]
    fn streaming_spectrum_matches_batch_trace_bitwise() {
        let cfg = spectrum_test_config();
        let x = generate::fbm(400, 0.7, 22).unwrap();
        let batch = spectrum_trace(&x, &cfg).unwrap();
        assert!(batch.len() > 3, "expected several emissions");

        let mut stream = StreamingSpectrum::new(&cfg).unwrap();
        let mut emitted = Vec::new();
        for &v in &x {
            if let Some(w) = stream.push(v).unwrap() {
                emitted.push(w);
            }
        }
        assert_eq!(emitted.len(), batch.len());
        for (s, b) in emitted.iter().zip(&batch) {
            assert_eq!(s.input_index, b.input_index);
            assert_eq!(s.delta_alpha.to_bits(), b.delta_alpha.to_bits());
            assert_eq!(s.alpha_min.to_bits(), b.alpha_min.to_bits());
            assert_eq!(s.alpha_max.to_bits(), b.alpha_max.to_bits());
        }
    }

    #[test]
    fn streaming_spectrum_pool_sizes_are_bit_identical() {
        let cfg = spectrum_test_config();
        let x = generate::fbm(300, 0.55, 23).unwrap();
        let p1 = Pool::new(1);
        let p4 = Pool::new(4);
        let a = spectrum_trace_in(&x, &cfg, &p1).unwrap();
        let b = spectrum_trace_in(&x, &cfg, &p4).unwrap();
        assert_eq!(a.len(), b.len());
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.delta_alpha.to_bits(), wb.delta_alpha.to_bits());
        }
    }

    #[test]
    fn streaming_spectrum_push_slice_matches_scalar_and_persists() {
        let cfg = spectrum_test_config();
        let x = generate::fbm(350, 0.6, 24).unwrap();

        let mut scalar = StreamingSpectrum::new(&cfg).unwrap();
        let mut scalar_out = Vec::new();
        for &v in &x {
            if let Some(w) = scalar.push(v).unwrap() {
                scalar_out.push(w);
            }
        }

        let mut chunked = StreamingSpectrum::new(&cfg).unwrap();
        let mut chunked_out = Vec::new();
        let mut buf = Vec::new();
        for chunk in x.chunks(7) {
            chunked.push_slice(chunk, &mut buf).unwrap();
            chunked_out.extend_from_slice(&buf);
        }
        assert_eq!(scalar_out.len(), chunked_out.len());
        for (a, b) in scalar_out.iter().zip(&chunked_out) {
            assert_eq!(a.input_index, b.input_index);
            assert_eq!(a.delta_alpha.to_bits(), b.delta_alpha.to_bits());
        }

        // Persist round-trip mid-stream: the restored estimator continues
        // exactly where the original would.
        let mut blob = Vec::new();
        chunked.encode_state(&mut blob);
        let mut restored = StreamingSpectrum::new(&cfg).unwrap();
        let mut r = aging_timeseries::persist::Reader::new(&blob);
        restored.restore_state(&mut r).unwrap();
        let tail = generate::fbm(160, 0.6, 25).unwrap();
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        chunked.push_slice(&tail, &mut out_a).unwrap();
        restored.push_slice(&tail, &mut out_b).unwrap();
        assert_eq!(out_a.len(), out_b.len());
        for (a, b) in out_a.iter().zip(&out_b) {
            assert_eq!(a.input_index, b.input_index);
            assert_eq!(a.delta_alpha.to_bits(), b.delta_alpha.to_bits());
        }
    }

    #[test]
    fn streaming_spectrum_rejects_non_finite_and_resets() {
        let cfg = spectrum_test_config();
        let mut stream = StreamingSpectrum::new(&cfg).unwrap();
        assert!(stream.push(f64::NAN).is_err());
        assert_eq!(stream.samples_seen(), 0, "bad sample must not be absorbed");
        stream.push(1.0).unwrap();
        assert_eq!(stream.samples_seen(), 1);
        stream.reset();
        assert_eq!(stream.samples_seen(), 0);
        assert_eq!(stream.window(), cfg.window);
        assert_eq!(stream.stride(), cfg.stride);
        assert_eq!(stream.qs(), cfg.qs.as_slice());
    }

    #[test]
    fn scaling_exponents_width_helper() {
        let qs = default_qs();
        let tau: Vec<f64> = qs.iter().map(|&q| q * 0.5 - 1.0).collect();
        let se = ScalingExponents {
            qs,
            exponents: tau,
            r_squared: vec![1.0; 12],
        };
        assert!(se.legendre_width().unwrap() < 1e-9);
    }
}
