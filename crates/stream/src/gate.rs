//! Per-source sample sanitation: the gate between a raw feed and a
//! detector.
//!
//! Real monitor feeds misbehave in three ways the offline pipeline never
//! sees: values go non-finite (exporter hiccups, parse gaps), timestamps
//! arrive out of order (retransmits, clock steps), and the feed stalls
//! (agent restarts). A [`SampleGate`] applies one documented policy per
//! defect and counts everything it does, so a fleet operator can audit the
//! stream quality from the telemetry snapshot:
//!
//! | Defect | Policy |
//! |---|---|
//! | non-finite value | **drop** the sample (`dropped_non_finite`) |
//! | `time ≤` last accepted time | **drop** the sample (`dropped_out_of_order`) |
//! | gap `> max_gap_factor ×` nominal period | **reset** downstream detector, then accept (`gaps_detected`) |
//! | ≥ `quarantine_after` consecutive drops | **degrade** the stream; reset the detector at the next accept (`quarantines`) |
//!
//! Dropping (rather than interpolating) non-finite values keeps the gate
//! allocation-free and unbiased; a long run of drops then surfaces as a
//! gap, which resets the detector instead of feeding it fabricated data.
//!
//! # Degradation state (quarantine)
//!
//! A drop *burst* whose wall-clock footprint is short — a flood of
//! retransmitted stale samples, or interleaved NaN readings — never trips
//! the gap rule, because dropped samples do not advance the gate's clock.
//! When `quarantine_after > 0`, the gate additionally tracks consecutive
//! drops: once the run reaches the threshold the stream is **degraded**
//! ([`GateHealth::Degraded`]), and the first sample accepted afterwards is
//! returned as [`GateAction::AcceptAfterGap`] so the downstream detector
//! restarts from a clean state instead of stitching the pre- and
//! post-burst regimes together. Recoveries are counted in
//! [`StageCounters::quarantines`]. The default (`0`) disables the policy,
//! preserving the original gate behaviour.

use aging_timeseries::{Error, Result};

use crate::source::StreamSample;
use crate::telemetry::StageCounters;

/// Gate policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Nominal sampling period of the feed, seconds.
    pub nominal_period_secs: f64,
    /// A gap longer than `max_gap_factor × nominal_period_secs` is a
    /// discontinuity: the downstream detector must be reset rather than
    /// shown two samples that pretend to be adjacent.
    pub max_gap_factor: f64,
    /// After this many *consecutive* dropped samples the stream is
    /// degraded and the next accepted sample forces a detector reset
    /// (see the module docs). `0` disables quarantine.
    pub quarantine_after: u64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            nominal_period_secs: 30.0,
            max_gap_factor: 4.0,
            quarantine_after: 0,
        }
    }
}

impl GateConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for non-positive period or a
    /// gap factor below 1.
    pub fn validate(&self) -> Result<()> {
        if !(self.nominal_period_secs > 0.0) {
            return Err(Error::invalid("nominal_period_secs", "must be positive"));
        }
        if !(self.max_gap_factor >= 1.0) {
            return Err(Error::invalid("max_gap_factor", "must be at least 1"));
        }
        Ok(())
    }
}

/// What the gate decided about one raw sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GateAction {
    /// Feed the sample to the detector.
    Accept(StreamSample),
    /// Discard the sample (non-finite value).
    DropNonFinite,
    /// Discard the sample (timestamp not after the last accepted one).
    DropOutOfOrder,
    /// A feed discontinuity: reset the downstream detector, then feed the
    /// sample (it starts the new segment).
    AcceptAfterGap(StreamSample),
}

/// Health of the gated stream, from the gate's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateHealth {
    /// The feed is behaving (no active drop burst).
    Healthy,
    /// A run of ≥ `quarantine_after` consecutive drops is in progress;
    /// the next accepted sample will force a detector reset.
    Degraded,
}

/// Stateful defect gate for one stream.
#[derive(Debug, Clone)]
pub struct SampleGate {
    config: GateConfig,
    last_time: Option<f64>,
    counters: StageCounters,
    consecutive_drops: u64,
    degraded: bool,
}

impl SampleGate {
    /// Creates a gate.
    ///
    /// # Errors
    ///
    /// Propagates [`GateConfig::validate`] failures.
    pub fn new(config: GateConfig) -> Result<Self> {
        config.validate()?;
        Ok(SampleGate {
            config,
            last_time: None,
            counters: StageCounters::default(),
            consecutive_drops: 0,
            degraded: false,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &GateConfig {
        &self.config
    }

    /// Ingestion counters accumulated so far.
    pub fn counters(&self) -> &StageCounters {
        &self.counters
    }

    /// Current health of the stream (see [`GateHealth`]).
    pub fn health(&self) -> GateHealth {
        if self.degraded {
            GateHealth::Degraded
        } else {
            GateHealth::Healthy
        }
    }

    /// Length of the current run of consecutive drops.
    pub fn consecutive_drops(&self) -> u64 {
        self.consecutive_drops
    }

    /// Records one dropped sample and updates the degradation state.
    fn note_drop(&mut self) {
        self.consecutive_drops += 1;
        if self.config.quarantine_after > 0
            && self.consecutive_drops >= self.config.quarantine_after
        {
            self.degraded = true;
        }
    }

    /// Judges one raw sample.
    pub fn push(&mut self, raw: StreamSample) -> GateAction {
        self.counters.ingested += 1;
        if !raw.value.is_finite() || !raw.time_secs.is_finite() {
            self.counters.dropped_non_finite += 1;
            self.note_drop();
            return GateAction::DropNonFinite;
        }
        if let Some(last) = self.last_time {
            if raw.time_secs <= last {
                self.counters.dropped_out_of_order += 1;
                self.note_drop();
                return GateAction::DropOutOfOrder;
            }
        }
        // Accepted from here on.
        let gap = self.last_time.map(|last| raw.time_secs - last);
        self.last_time = Some(raw.time_secs);
        self.counters.accepted += 1;
        self.consecutive_drops = 0;
        let long_gap =
            gap.is_some_and(|g| g > self.config.max_gap_factor * self.config.nominal_period_secs);
        if long_gap {
            self.counters.gaps_detected += 1;
        }
        let quarantined = std::mem::take(&mut self.degraded);
        if quarantined {
            self.counters.quarantines += 1;
        }
        if long_gap || quarantined {
            GateAction::AcceptAfterGap(raw)
        } else {
            GateAction::Accept(raw)
        }
    }

    /// Forgets the stream position and degradation state (the counters
    /// are retained — they are lifetime totals).
    pub fn reset(&mut self) {
        self.last_time = None;
        self.consecutive_drops = 0;
        self.degraded = false;
    }

    /// Serializes the dynamic state (stream position, lifetime counters,
    /// drop-run length and degradation flag) via
    /// [`aging_timeseries::persist`]; the config is re-supplied at
    /// construction time.
    pub fn encode_state(&self, out: &mut Vec<u8>) {
        use aging_timeseries::persist::{put_bool, put_opt_f64, put_u64};
        put_opt_f64(out, self.last_time);
        self.counters.encode_state(out);
        put_u64(out, self.consecutive_drops);
        put_bool(out, self.degraded);
    }

    /// Restores state written by [`SampleGate::encode_state`] into a gate
    /// constructed with the same config.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] on a truncated or corrupt blob.
    pub fn restore_state(&mut self, r: &mut aging_timeseries::persist::Reader<'_>) -> Result<()> {
        self.last_time = r.opt_f64()?;
        self.counters.restore_state(r)?;
        self.consecutive_drops = r.u64()?;
        self.degraded = r.bool()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> SampleGate {
        SampleGate::new(GateConfig {
            nominal_period_secs: 30.0,
            max_gap_factor: 4.0,
            ..GateConfig::default()
        })
        .unwrap()
    }

    fn s(t: f64, v: f64) -> StreamSample {
        StreamSample {
            time_secs: t,
            value: v,
        }
    }

    #[test]
    fn config_guards() {
        assert!(GateConfig {
            nominal_period_secs: 0.0,
            ..GateConfig::default()
        }
        .validate()
        .is_err());
        assert!(GateConfig {
            max_gap_factor: 0.5,
            ..GateConfig::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn accepts_clean_sequence() {
        let mut g = gate();
        for i in 0..5 {
            let a = g.push(s(i as f64 * 30.0, 100.0 - i as f64));
            assert!(matches!(a, GateAction::Accept(_)), "{a:?}");
        }
        assert_eq!(g.counters().accepted, 5);
        assert_eq!(g.counters().ingested, 5);
    }

    #[test]
    fn drops_non_finite_and_out_of_order() {
        let mut g = gate();
        assert!(matches!(g.push(s(0.0, 1.0)), GateAction::Accept(_)));
        assert_eq!(g.push(s(30.0, f64::NAN)), GateAction::DropNonFinite);
        assert_eq!(g.push(s(f64::INFINITY, 1.0)), GateAction::DropNonFinite);
        assert_eq!(g.push(s(0.0, 2.0)), GateAction::DropOutOfOrder);
        assert_eq!(g.push(s(-5.0, 2.0)), GateAction::DropOutOfOrder);
        // The clock did not advance on dropped samples.
        assert!(matches!(g.push(s(30.0, 2.0)), GateAction::Accept(_)));
        let c = g.counters();
        assert_eq!(c.dropped_non_finite, 2);
        assert_eq!(c.dropped_out_of_order, 2);
        assert_eq!(c.accepted, 2);
    }

    #[test]
    fn long_gap_flags_discontinuity() {
        let mut g = gate();
        g.push(s(0.0, 1.0));
        g.push(s(30.0, 1.0));
        // 121 s > 4 × 30 s: discontinuity.
        let a = g.push(s(151.0, 1.0));
        assert!(matches!(a, GateAction::AcceptAfterGap(_)), "{a:?}");
        // Exactly at the limit: accepted normally.
        let b = g.push(s(151.0 + 120.0, 1.0));
        assert!(matches!(b, GateAction::Accept(_)), "{b:?}");
        assert_eq!(g.counters().gaps_detected, 1);
    }

    #[test]
    fn reset_forgets_position_keeps_totals() {
        let mut g = gate();
        g.push(s(100.0, 1.0));
        g.reset();
        // An "earlier" timestamp is fine after reset (new segment).
        assert!(matches!(g.push(s(0.0, 1.0)), GateAction::Accept(_)));
        assert_eq!(g.counters().accepted, 2);
    }

    #[test]
    fn drop_burst_quarantines_and_recovers_with_reset() {
        let mut g = SampleGate::new(GateConfig {
            nominal_period_secs: 30.0,
            max_gap_factor: 1e12, // the gap rule can never fire
            quarantine_after: 3,
        })
        .unwrap();
        assert!(matches!(g.push(s(0.0, 1.0)), GateAction::Accept(_)));
        // A stale-retransmit flood: timestamps never advance, so the gap
        // rule is blind to it — quarantine is the only protection.
        for _ in 0..2 {
            assert_eq!(g.push(s(0.0, 1.0)), GateAction::DropOutOfOrder);
            assert_eq!(g.health(), GateHealth::Healthy);
        }
        assert_eq!(g.push(s(0.0, 1.0)), GateAction::DropOutOfOrder);
        assert_eq!(g.health(), GateHealth::Degraded);
        assert_eq!(g.consecutive_drops(), 3);
        // First good sample after the burst: forced detector reset.
        let a = g.push(s(30.0, 2.0));
        assert!(matches!(a, GateAction::AcceptAfterGap(_)), "{a:?}");
        assert_eq!(g.health(), GateHealth::Healthy);
        let c = g.counters();
        assert_eq!(c.quarantines, 1);
        assert_eq!(c.gaps_detected, 0);
        assert_eq!(c.ingested, c.accepted + c.dropped());
        // Subsequent clean samples flow normally.
        assert!(matches!(g.push(s(60.0, 2.0)), GateAction::Accept(_)));
    }

    #[test]
    fn short_drop_runs_do_not_quarantine() {
        let mut g = SampleGate::new(GateConfig {
            quarantine_after: 3,
            ..GateConfig::default()
        })
        .unwrap();
        g.push(s(0.0, 1.0));
        // Runs of 2 drops, each broken by an accept: never degraded.
        for i in 1..6 {
            let t = i as f64 * 30.0;
            assert_eq!(g.push(s(t, f64::NAN)), GateAction::DropNonFinite);
            assert_eq!(g.push(s(0.0, 1.0)), GateAction::DropOutOfOrder);
            assert!(matches!(g.push(s(t, 1.0)), GateAction::Accept(_)), "{i}");
        }
        assert_eq!(g.counters().quarantines, 0);
        assert_eq!(g.health(), GateHealth::Healthy);
    }

    #[test]
    fn quarantine_disabled_by_default() {
        let mut g = gate();
        g.push(s(0.0, 1.0));
        for _ in 0..100 {
            g.push(s(0.0, f64::NAN));
        }
        assert_eq!(g.health(), GateHealth::Healthy);
        assert!(matches!(g.push(s(30.0, 1.0)), GateAction::Accept(_)));
        assert_eq!(g.counters().quarantines, 0);
    }
}
