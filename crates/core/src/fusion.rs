//! Multi-resource fusion: monitor several counters at once (the paper
//! analysed both available memory *and* used swap) and combine the
//! per-resource predictors' votes into one machine-level alarm.

use crate::baseline::AgingPredictor;
use crate::eval::{PredictorSpec, SegmentOutcome};
use aging_memsim::{Counter, SimReport};
use aging_timeseries::{Error, Result};

/// How member votes combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FusionRule {
    /// Alarm when any member alarms (most sensitive).
    #[default]
    Any,
    /// Alarm only when every member has alarmed (most specific).
    All,
    /// Alarm when a strict majority of members has alarmed.
    Majority,
}

impl FusionRule {
    /// Whether `votes` alarmed members out of `members` total fire the
    /// fused alarm under this rule. This is the single vote-combination
    /// point shared by [`FusionPredictor`] and the streaming fleet
    /// supervisor (`aging-stream`).
    pub fn fires(&self, votes: usize, members: usize) -> bool {
        match self {
            FusionRule::Any => votes >= 1,
            FusionRule::All => members > 0 && votes == members,
            FusionRule::Majority => 2 * votes > members,
        }
    }
}

/// A fused predictor over several counters of the same machine.
pub struct FusionPredictor {
    members: Vec<(Counter, Box<dyn AgingPredictor>)>,
    rule: FusionRule,
    alarmed: bool,
}

impl std::fmt::Debug for FusionPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusionPredictor")
            .field("rule", &self.rule)
            .field(
                "members",
                &self
                    .members
                    .iter()
                    .map(|(c, p)| format!("{c}:{}", p.name()))
                    .collect::<Vec<_>>(),
            )
            .field("alarmed", &self.alarmed)
            .finish()
    }
}

impl FusionPredictor {
    /// Builds a fused predictor from `(counter, spec)` members.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for an empty member list and
    /// propagates member construction failures.
    pub fn new(members: &[(Counter, PredictorSpec)], rule: FusionRule) -> Result<Self> {
        if members.is_empty() {
            return Err(Error::invalid("members", "must not be empty"));
        }
        let members = members
            .iter()
            .map(|(c, spec)| Ok((*c, spec.build()?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(FusionPredictor {
            members,
            rule,
            alarmed: false,
        })
    }

    /// The monitored counters, in member order.
    pub fn counters(&self) -> Vec<Counter> {
        self.members.iter().map(|(c, _)| *c).collect()
    }

    /// Feeds one sample row (one value per member, in member order).
    /// Returns `true` when the fused alarm fires on this row.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LengthMismatch`] for a wrong-width row and
    /// propagates member failures.
    pub fn push_row(&mut self, row: &[f64]) -> Result<bool> {
        if row.len() != self.members.len() {
            return Err(Error::LengthMismatch {
                left: row.len(),
                right: self.members.len(),
            });
        }
        for ((_, member), &value) in self.members.iter_mut().zip(row) {
            let _ = member.push(value)?;
        }
        if self.alarmed {
            return Ok(false);
        }
        let votes = self.members.iter().filter(|(_, m)| m.is_alarmed()).count();
        let fire = self.rule.fires(votes, self.members.len());
        if fire {
            self.alarmed = true;
            return Ok(true);
        }
        Ok(false)
    }

    /// Whether the fused alarm has fired.
    pub fn is_alarmed(&self) -> bool {
        self.alarmed
    }

    /// Resets every member and the fused state.
    pub fn reset(&mut self) {
        for (_, m) in &mut self.members {
            m.reset();
        }
        self.alarmed = false;
    }
}

/// Scores a fused predictor over every crash-delimited segment of a
/// report, mirroring [`crate::eval::evaluate`] semantics.
///
/// # Errors
///
/// Returns [`Error::Empty`] for an empty log and propagates member
/// failures.
pub fn evaluate_fusion(
    members: &[(Counter, PredictorSpec)],
    rule: FusionRule,
    report: &SimReport,
) -> Result<Vec<SegmentOutcome>> {
    if members.is_empty() {
        return Err(Error::invalid("members", "must not be empty"));
    }
    let series: Vec<_> = members
        .iter()
        .map(|(c, _)| report.log.series(*c))
        .collect::<Result<Vec<_>>>()?;
    let dt = series[0].dt();
    let len = series.iter().map(|s| s.len()).min().unwrap_or(0);

    let mut boundaries = Vec::new();
    let mut crash_times = Vec::new();
    for crash in report.log.crashes() {
        let t = crash.time.as_secs();
        boundaries.push(((t / dt).ceil() as usize).min(len));
        crash_times.push(t);
    }
    boundaries.push(len);

    let mut outcomes = Vec::new();
    let mut start = 0usize;
    for (segment, &end) in boundaries.iter().enumerate() {
        if end <= start {
            start = end;
            continue;
        }
        let crash_secs = crash_times.get(segment).copied();
        let mut fused = FusionPredictor::new(members, rule)?;
        let mut alarm_secs = None;
        for i in start..end {
            let row: Vec<f64> = series.iter().map(|s| s.values()[i]).collect();
            if fused.push_row(&row)? && alarm_secs.is_none() {
                alarm_secs = Some(series[0].time_at(i));
            }
        }
        let lead_secs = match (crash_secs, alarm_secs) {
            (Some(c), Some(a)) if a <= c => Some(c - a),
            _ => None,
        };
        outcomes.push(SegmentOutcome {
            scenario: report.scenario_name.clone(),
            segment,
            duration_secs: (end - start) as f64 * dt,
            crash_secs,
            alarm_secs,
            lead_secs,
        });
        start = end;
    }
    if outcomes.is_empty() {
        return Err(Error::Empty);
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::ResourceDirection;
    use crate::detector::DetectorConfig;
    use aging_memsim::{simulate, Scenario};

    fn members() -> Vec<(Counter, PredictorSpec)> {
        let det = DetectorConfig {
            holder_radius: 16,
            holder_max_lag: 4,
            dimension_window: 64,
            dimension_stride: 16,
            baseline_windows: 8,
            ..DetectorConfig::default()
        };
        vec![
            (Counter::AvailableBytes, PredictorSpec::HolderDimension(det)),
            (
                Counter::UsedSwapBytes,
                PredictorSpec::Threshold {
                    level: 8.0 * 1024.0 * 1024.0,
                    direction: ResourceDirection::Filling,
                },
            ),
        ]
    }

    #[test]
    fn construction_and_shape() {
        let f = FusionPredictor::new(&members(), FusionRule::Any).unwrap();
        assert_eq!(
            f.counters(),
            vec![Counter::AvailableBytes, Counter::UsedSwapBytes]
        );
        assert!(FusionPredictor::new(&[], FusionRule::Any).is_err());
        let mut f = FusionPredictor::new(&members(), FusionRule::Any).unwrap();
        assert!(f.push_row(&[1.0]).is_err());
    }

    #[test]
    fn any_detects_crashing_machine() {
        let report = simulate(&Scenario::tiny_aging(31, 192.0), 6.0 * 3600.0).unwrap();
        assert!(report.first_crash().is_some());
        let outcomes = evaluate_fusion(&members(), FusionRule::Any, &report).unwrap();
        assert!(outcomes[0].detected(), "{:?}", outcomes[0]);
    }

    #[test]
    fn rule_strictness_ordering() {
        // Any fires no later than Majority, which fires no later than All.
        let report = simulate(&Scenario::tiny_aging(32, 192.0), 6.0 * 3600.0).unwrap();
        let alarm = |rule| {
            evaluate_fusion(&members(), rule, &report).unwrap()[0]
                .alarm_secs
                .unwrap_or(f64::INFINITY)
        };
        let any = alarm(FusionRule::Any);
        let majority = alarm(FusionRule::Majority);
        let all = alarm(FusionRule::All);
        assert!(any <= majority);
        assert!(majority <= all);
    }

    #[test]
    fn all_rule_needs_every_member() {
        // Healthy machine: swap threshold never crosses, so `All` cannot
        // fire even if the holder member would.
        let report = simulate(&Scenario::tiny_aging(33, 0.0), 4.0 * 3600.0).unwrap();
        let outcomes = evaluate_fusion(&members(), FusionRule::All, &report).unwrap();
        assert!(!outcomes[0].false_alarm(), "{:?}", outcomes[0]);
    }

    #[test]
    fn reset_revives_members() {
        let mut f = FusionPredictor::new(&members(), FusionRule::Any).unwrap();
        for i in 0..100 {
            let v = 1e8 - 1e5 * i as f64;
            f.push_row(&[v, 0.0]).unwrap();
        }
        f.reset();
        assert!(!f.is_alarmed());
    }

    #[test]
    fn fused_alarm_fires_once() {
        let report = simulate(&Scenario::tiny_aging(34, 256.0), 5.0 * 3600.0).unwrap();
        let series_a = report.log.series(Counter::AvailableBytes).unwrap();
        let series_b = report.log.series(Counter::UsedSwapBytes).unwrap();
        let mut f = FusionPredictor::new(&members(), FusionRule::Any).unwrap();
        let mut fires = 0;
        for i in 0..series_a.len() {
            if f.push_row(&[series_a.values()[i], series_b.values()[i]])
                .unwrap()
            {
                fires += 1;
            }
        }
        assert!(fires <= 1);
    }
}
