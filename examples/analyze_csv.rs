//! Bring-your-own-data workflow: export a monitor log as CSV (here:
//! produced by the simulator — in production, your collector), read it
//! back, repair gaps, and run the full aging analysis on it.
//!
//! Run with: `cargo run --release --example analyze_csv`

use aging_core::detector::analyze;
use aging_timeseries::{csv, interp};
use holder_aging::prelude::*;
use std::io::Write;

fn main() -> Result<()> {
    // ── 1. Produce a counter log (stand-in for a real perfmon export). ──
    let scenario = Scenario::aging_web_server(808);
    let report = simulate(&scenario, 48.0 * 3600.0)?;
    let series = report.log.series(Counter::AvailableBytes)?;

    let path = std::env::temp_dir().join("holder_aging_demo.csv");
    {
        let mut file = std::fs::File::create(&path)?;
        csv::write_csv(&series, "available_bytes", &mut file)?;
        file.flush()?;
    }
    println!("wrote {} samples to {}", series.len(), path.display());

    // ── 2. Read it back as a stranger would. ──
    let file = std::fs::File::open(&path)?;
    let table = csv::read_csv(file)?;
    println!("columns: {:?}", table.headers);
    let mut imported = table.series("time", "available_bytes")?;

    // Real logs have holes; repair them before analysis.
    let missing = interp::missing_fraction(imported.values());
    if missing > 0.0 {
        println!("repairing {:.1}% missing samples", missing * 100.0);
        interp::fill_gaps(imported.values_mut(), interp::FillMethod::Linear)?;
    }

    // ── 3. Full aging analysis. ──
    let sen = SenSlope::estimate(imported.values(), imported.dt())?;
    println!(
        "trend: {:.1} KiB/hour ({})",
        sen.slope * 3600.0 / 1024.0,
        if sen.slope < 0.0 {
            "depleting"
        } else {
            "stable/growing"
        },
    );
    if let Some(eta) = sen.time_to_level(0.0) {
        println!("naive linear exhaustion in {:.1} h", eta / 3600.0);
    }

    // One-call structured assessment…
    let assessment = assess(&imported, &AssessmentConfig::default())?;
    println!("\n{assessment}");

    // …or the detector alone, for alarm timing.
    let analysis = analyze(imported.values(), &DetectorConfig::default())?;
    match analysis.first_alarm() {
        Some(alarm) => {
            let t = alarm.sample_index as f64 * imported.dt() / 3600.0;
            println!(
                "holder-dimension ALARM at t = {t:.2} h (trigger {:?}, D_h {:.3}, mean h {:.3})",
                alarm.trigger, alarm.dimension, alarm.mean_holder
            );
        }
        None => println!("no aging alarm in this log"),
    }
    if let Some(crash) = report.first_crash() {
        println!(
            "(ground truth: the machine crashed at {} — {})",
            crash.time, crash.cause
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
