//! Offline vendored subset of the [`serde`](https://docs.rs/serde) API,
//! implemented from scratch so the workspace builds without network access.
//!
//! Instead of upstream serde's visitor architecture, this vendored version
//! uses a simple self-describing [`Value`] tree as the data model:
//!
//! - [`Serialize`] converts a type **to** a [`Value`],
//! - [`Deserialize`] reconstructs a type **from** a [`Value`],
//! - `#[derive(Serialize, Deserialize)]` (from the vendored
//!   `serde_derive`) generates both for plain structs and enums,
//! - the vendored `serde_json` renders/parses the [`Value`] tree as JSON.
//!
//! The supported shapes are exactly what the workspace derives: structs
//! with named fields, tuple/newtype structs, and enums with unit, newtype,
//! tuple or struct variants (externally tagged, like upstream serde).

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every type serializes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for `Option::None` and non-finite floats).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Value>),
    /// Key/value map with preserved insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view (integers widen losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            Value::Null => Some(f64::NAN), // non-finite floats round-trip via null
            _ => None,
        }
    }

    /// Unsigned integer view.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Looks up a key in map entries (first match wins).
pub fn map_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserializer-side re-exports, mirroring `serde::de`.
pub mod de {
    pub use super::DeError;

    /// Marker for types deserializable without borrowing — with the
    /// vendored owned [`super::Value`] model, every [`super::Deserialize`]
    /// qualifies.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Serializer-side re-exports, mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

/// Resolves a missing struct field: `Option` fields default to `None`
/// (encoded as [`Value::Null`]); anything else is an error.
///
/// # Errors
///
/// Returns [`DeError`] when `T` cannot be built from null.
pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, DeError> {
    T::from_value(&Value::Null).map_err(|_| DeError::custom(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| {
                    DeError::custom(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| {
                    DeError::custom(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_unsigned!(u8, u16, u32, u64, usize);
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-char string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {v:?}")))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::custom(format!("expected sequence, got {v:?}")))?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected {N}-element sequence, got {}",
                items.len()
            )));
        }
        let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        vec.try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = [$($idx),+].len();
                let seq = v
                    .as_seq()
                    .ok_or_else(|| DeError::custom("expected tuple sequence"))?;
                if seq.len() != ARITY {
                    return Err(DeError::custom(format!(
                        "expected {ARITY}-element sequence, got {}",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Renders a serialized value as a map key (maps serialize enum/string
/// keys as strings, numeric keys as their decimal form — like serde_json).
fn key_string(v: Value) -> Result<String, DeError> {
    match v {
        Value::Str(s) => Ok(s),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(DeError::custom(format!("unsupported map key {other:?}"))),
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = key_string(k.to_value()).expect("map key must be scalar");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::custom(format!("expected map, got {v:?}")))?;
        entries
            .iter()
            .map(|(k, val)| {
                let key = K::from_value(&Value::Str(k.clone()))?;
                Ok((key, V::from_value(val)?))
            })
            .collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| {
                    let key = key_string(k.to_value()).expect("map key must be scalar");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = String::from("hi");
        assert_eq!(String::from_value(&s.to_value()).unwrap(), "hi");
    }

    #[test]
    fn option_none_is_null_and_back() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u64>::from_value(&Value::U64(3)).unwrap(), Some(3));
    }

    #[test]
    fn map_round_trips_with_string_keys() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), vec![1.0f64, 2.0]);
        let v = m.to_value();
        let back = BTreeMap::<String, Vec<f64>>::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(Vec::<f64>::from_value(&Value::Bool(true)).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
    }
}
