//! Small output helpers shared by the experiment harness: aligned text
//! tables and CSV export.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV (headers + rows).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Writes `(x, y…)` series columns as CSV.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_series_csv(path: &Path, headers: &[&str], columns: &[&[f64]]) -> std::io::Result<()> {
    assert_eq!(headers.len(), columns.len());
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let n = columns.iter().map(|c| c.len()).min().unwrap_or(0);
    let mut f = fs::File::create(path)?;
    writeln!(f, "{}", headers.join(","))?;
    for i in 0..n {
        let row: Vec<String> = columns.iter().map(|c| format!("{}", c[i])).collect();
        writeln!(f, "{}", row.join(","))?;
    }
    Ok(())
}

/// The default output directory for experiment CSVs.
pub fn results_dir() -> PathBuf {
    PathBuf::from("bench_results")
}

/// Formats seconds as `H.HH h`.
pub fn hours(secs: f64) -> String {
    format!("{:.2}", secs / 3600.0)
}

/// Formats an `Option<f64>` with the given formatter, `-` when absent.
pub fn opt_fmt(v: Option<f64>, f: impl Fn(f64) -> String) -> String {
    v.map_or_else(|| "-".to_string(), f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["longer-name", "2.5"]);
        let s = t.render();
        assert!(s.contains("longer-name"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("holder-aging-test");
        let path = dir.join("t.csv");
        let mut t = Table::new(vec!["x", "y"]);
        t.row(vec!["1", "2"]);
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "x,y\n1,2\n");
        let spath = dir.join("s.csv");
        write_series_csv(&spath, &["t", "v"], &[&[0.0, 1.0], &[5.0, 6.0]]).unwrap();
        let content = std::fs::read_to_string(&spath).unwrap();
        assert!(content.starts_with("t,v\n0,5\n"));
    }

    #[test]
    fn helpers() {
        assert_eq!(hours(7200.0), "2.00");
        assert_eq!(opt_fmt(None, |v| format!("{v}")), "-");
        assert_eq!(opt_fmt(Some(1.5), |v| format!("{v:.1}")), "1.5");
    }
}
