//! Wrapping any [`SampleSource`] in a chaos plan.

use std::collections::VecDeque;

use aging_stream::{Result, SampleSource, StreamSample};

use crate::inject::{ChaosEngine, InjectionCounters};
use crate::plan::ChaosPlan;

/// A [`SampleSource`] adaptor that feeds every sample of an inner source
/// through a [`ChaosEngine`] — the drop-in way to make any ingestion
/// path hostile.
///
/// The stream key defaults to a hash of the inner source's name, so two
/// differently-named sources under the same plan draw independent fault
/// sequences; use [`ChaosSource::with_key`] to pin it explicitly.
pub struct ChaosSource<S: SampleSource> {
    name: String,
    inner: S,
    engine: ChaosEngine,
    pending: VecDeque<StreamSample>,
    scratch: Vec<StreamSample>,
}

impl<S: SampleSource> std::fmt::Debug for ChaosSource<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosSource")
            .field("name", &self.name)
            .field("pending", &self.pending.len())
            .finish()
    }
}

/// FNV-1a — a stable, dependency-free string hash for default stream keys.
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl<S: SampleSource> ChaosSource<S> {
    /// Wraps `inner`, deriving the stream key from its name.
    pub fn new(inner: S, plan: &ChaosPlan) -> Self {
        let key = fnv1a(inner.name());
        ChaosSource::with_key(inner, plan, key)
    }

    /// Wraps `inner` with an explicit stream key.
    pub fn with_key(inner: S, plan: &ChaosPlan, stream_key: u64) -> Self {
        ChaosSource {
            name: format!("chaos:{}", inner.name()),
            engine: ChaosEngine::new(plan, stream_key),
            inner,
            pending: VecDeque::new(),
            scratch: Vec::new(),
        }
    }

    /// What the engine has injected so far.
    pub fn counters(&self) -> &InjectionCounters {
        self.engine.counters()
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: SampleSource> SampleSource for ChaosSource<S> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_sample(&mut self) -> Result<Option<StreamSample>> {
        loop {
            if let Some(s) = self.pending.pop_front() {
                return Ok(Some(s));
            }
            // A stall may swallow several raw samples in a row; keep
            // pulling until something comes out or the source ends.
            match self.inner.next_sample()? {
                None => return Ok(None),
                Some(raw) => {
                    self.scratch.clear();
                    self.engine.feed(raw, &mut self.scratch);
                    self.pending.extend(self.scratch.drain(..));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aging_stream::source::CsvReplaySource;
    use std::fmt::Write as _;

    fn csv(n: usize) -> String {
        let mut text = String::from("time,free\n");
        for i in 0..n {
            writeln!(text, "{},{}", i * 5, 1_000_000 - i).unwrap();
        }
        text
    }

    fn drain(plan: &ChaosPlan, n: usize) -> (Vec<StreamSample>, InjectionCounters) {
        let inner = CsvReplaySource::from_csv_str(&csv(n), "time", "free").unwrap();
        let mut src = ChaosSource::new(inner, plan);
        assert_eq!(src.name(), "chaos:csv:free");
        let mut out = Vec::new();
        while let Some(s) = src.next_sample().unwrap() {
            out.push(s);
        }
        (out, *src.counters())
    }

    /// Bit-pattern view, so injected NaNs compare equal to themselves.
    fn bits(samples: &[StreamSample]) -> Vec<(u64, u64)> {
        samples
            .iter()
            .map(|s| (s.time_secs.to_bits(), s.value.to_bits()))
            .collect()
    }

    #[test]
    fn wrapped_replay_is_reproducible() {
        let plan = ChaosPlan::nasty(99);
        let (a, ca) = drain(&plan, 3000);
        let (b, cb) = drain(&plan, 3000);
        assert_eq!(bits(&a), bits(&b), "same plan must replay identically");
        assert_eq!(ca, cb);
        assert_eq!(ca.offered, 3000);
        assert_eq!(ca.emitted as usize, a.len());
        assert!(ca.injected() > 0);
        // A different seed perturbs differently.
        let (c, _) = drain(&ChaosPlan::nasty(100), 3000);
        assert_ne!(bits(&a), bits(&c));
    }

    #[test]
    fn empty_plan_passes_through() {
        let (out, counters) = drain(&ChaosPlan::new(0), 50);
        assert_eq!(out.len(), 50);
        assert_eq!(counters.injected(), 0);
        assert_eq!(out[0].value, 1_000_000.0);
    }

    #[test]
    fn exhaustion_is_stable_under_stalls() {
        // A stall-heavy plan: the source must still terminate cleanly.
        let plan = ChaosPlan::new(1).with(crate::plan::InjectorSpec::stalls(0.3, 4));
        let inner = CsvReplaySource::from_csv_str(&csv(500), "time", "free").unwrap();
        let mut src = ChaosSource::new(inner, &plan);
        let mut n = 0usize;
        while src.next_sample().unwrap().is_some() {
            n += 1;
        }
        assert!(src.next_sample().unwrap().is_none());
        assert_eq!(n as u64, 500 - src.counters().stalled);
        assert!(src.counters().stalled > 0);
    }
}
