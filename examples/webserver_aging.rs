//! The paper's scenario at full scale: an NT4-class workstation running a
//! bursty web-server workload with slow aging faults, monitored for two
//! simulated days with reboots after every crash. Each crash-terminated
//! segment is analysed offline, mirroring the paper's per-crash figures.
//!
//! Run with: `cargo run --release --example webserver_aging`

use aging_core::detector::analyze;
use holder_aging::prelude::*;

fn main() -> Result<()> {
    let mut scenario = Scenario::aging_web_server(2026);
    // 3× the canonical leak so several crashes fit into two days.
    scenario.faults = FaultPlan::aging(72.0);
    println!(
        "simulating {} for 48 h (reboots after crashes)…",
        scenario.name
    );
    let report = simulate_with_reboots(&scenario, 48.0 * 3600.0)?;
    println!(
        "observed {} crash(es) over {} samples\n",
        report.log.crashes().len(),
        report.log.len()
    );

    let series = report.log.series(Counter::AvailableBytes)?;
    let dt = series.dt();
    let spec = PredictorSpec::HolderDimension(DetectorConfig::default());

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12}",
        "segment", "crash[h]", "cause", "alarm[h]", "lead[min]"
    );
    let outcomes = evaluate(&spec, &report, Counter::AvailableBytes)?;
    for (outcome, crash) in outcomes
        .iter()
        .filter(|o| o.crash_secs.is_some())
        .zip(report.log.crashes())
    {
        println!(
            "{:<8} {:>10.2} {:>12} {:>12} {:>12}",
            outcome.segment,
            crash.time.as_hours(),
            crash.cause.to_string(),
            outcome
                .alarm_secs
                .map_or("-".into(), |t| format!("{:.2}", t / 3600.0)),
            outcome
                .lead_secs
                .map_or("-".into(), |l| format!("{:.1}", l / 60.0)),
        );
    }

    // Zoom into the first segment: print the detector's internal traces
    // around the first crash (the paper's headline figure).
    if let Some(first_crash) = report.first_crash() {
        let end = series
            .index_of_time(first_crash.time.as_secs())
            .unwrap_or(series.len() - 1);
        let segment = series.slice(0, end + 1)?;
        let analysis = analyze(segment.values(), &DetectorConfig::default())?;
        println!(
            "\nfirst segment: {} samples, baseline {:?}",
            segment.len(),
            analysis.baseline
        );
        println!("Hölder-dimension trace (last 10 windows before the crash):");
        let tail_start = analysis.dimension_trace.len().saturating_sub(10);
        for &(idx, d) in &analysis.dimension_trace[tail_start..] {
            let t_hours = idx as f64 * dt / 3600.0;
            println!("  t={t_hours:>6.2} h  D_h={d:.3}");
        }
    }
    Ok(())
}
