//! `QueryRejuv` end-to-end suite: the serve tier's shadow rejuvenation
//! advisory. The server never restarts anything — it replays its
//! configured policy over a machine's released alarm history through a
//! real [`RejuvController`] — so the contract under test is that the
//! reply is exactly what a local controller replay of the same history
//! produces:
//!
//! 1. an unknown machine id draws `known = false` (client `None`);
//! 2. a server with no rejuv config answers the `none` policy;
//! 3. with an alarm-triggered policy, the advisory's grant/deny counts
//!    and last-restart time match an independent client-side replay of
//!    the fetched alarm history, bit for bit;
//! 4. the query is v2-gated: on a v1 session it strikes, then
//!    quarantines — same discipline as `QuerySpectrum`.

use std::io::Write;

use aging_memsim::Counter;
use aging_rejuv::{RejuvConfig, RejuvController, RejuvPolicy, RestartReason, RestartRequest};
use aging_serve::codec::FrameDecoder;
use aging_serve::protocol::{
    counter_code, encode_frame, Frame, Record, DEFAULT_MAX_FRAME, ERR_MALFORMED, ERR_QUARANTINED,
    PROTOCOL_VERSION,
};
use aging_serve::{ServeClient, ServeConfig, Server};
use aging_stream::supervisor::AlarmKind;

const DT: f64 = 5.0;

fn rejuv_config() -> RejuvConfig {
    RejuvConfig {
        policy: RejuvPolicy::AlarmTriggered,
        cooldown_secs: 120.0,
        restart_downtime_secs: 30.0,
        crash_repair_secs: 900.0,
        max_concurrent_restarts: 1,
    }
}

fn serve_config(rejuv: Option<RejuvConfig>) -> ServeConfig {
    let mut cfg = ServeConfig::new(aging_serve::test_detectors());
    cfg.rejuv = rejuv;
    cfg
}

/// Feeds a linear depletion: the trend detector projects exhaustion and
/// fuses a machine alarm well inside the feed.
fn feed_depleting(client: &mut ServeClient, machine_id: u64, n: usize) {
    let records: Vec<Record> = (0..n)
        .map(|i| Record {
            machine_id,
            counter: counter_code(Counter::AvailableBytes),
            time_secs: i as f64 * DT,
            value: 1e6 - i as f64 * 100.0,
        })
        .collect();
    for chunk in records.chunks(32) {
        client.send_batch(chunk).expect("send batch");
    }
    client.machine_done(machine_id).expect("machine done");
    client.flush().expect("flush");
}

#[test]
fn unknown_machine_draws_known_false() {
    let server = Server::bind("127.0.0.1:0", serve_config(Some(rejuv_config()))).expect("bind");
    let mut client = ServeClient::connect(server.local_addr(), "rejuv-prober").expect("connect");
    assert_eq!(
        client.query_rejuv(404).expect("query"),
        None,
        "an unregistered machine must not be invented"
    );
    client.bye().expect("bye");
    let outcome = server.shutdown();
    assert_eq!(outcome.wire.session_panics, 0);
    assert_eq!(outcome.wire.quarantined, 0);
}

#[test]
fn server_without_rejuv_config_answers_the_none_policy() {
    let server = Server::bind("127.0.0.1:0", serve_config(None)).expect("bind");
    let mut client = ServeClient::connect(server.local_addr(), "no-policy").expect("connect");
    feed_depleting(&mut client, 3, 200);
    let advice = client
        .query_rejuv(3)
        .expect("query")
        .expect("machine is known");
    assert_eq!(advice.policy, RejuvPolicy::None.code());
    assert_eq!(advice.restarts, 0);
    assert_eq!(advice.denied, 0);
    assert_eq!(advice.last_restart_secs, None);
    client.bye().expect("bye");
    let outcome = server.shutdown();
    assert_eq!(outcome.wire.session_panics, 0);
}

#[test]
fn advisory_matches_an_independent_replay_of_the_alarm_history() {
    let cfg = rejuv_config();
    let server = Server::bind("127.0.0.1:0", serve_config(Some(cfg))).expect("bind");
    let mut client = ServeClient::connect(server.local_addr(), "rejuv-feeder").expect("connect");
    feed_depleting(&mut client, 7, 200);

    // The one true answer: replay the machine's released alarm history
    // through a local controller with the identical config.
    let (total, events) = client.query_alarms(0).expect("alarm history");
    assert_eq!(total as usize, events.len(), "single chunk expected");
    let mut controller = RejuvController::new(cfg, 1).expect("valid config");
    let mut machine_alarms = 0u64;
    for event in &events {
        if event.machine_id == 7 && matches!(event.kind, AlarmKind::MachineAlarm { .. }) {
            machine_alarms += 1;
            let _ = controller.decide(&RestartRequest {
                machine_index: 0,
                time_secs: event.time_secs,
                reason: RestartReason::Alarm,
            });
        }
    }
    assert!(machine_alarms >= 1, "the depleting feed must alarm");

    let advice = client
        .query_rejuv(7)
        .expect("query")
        .expect("machine is known");
    assert_eq!(advice.policy, RejuvPolicy::AlarmTriggered.code());
    assert_eq!(advice.restarts, controller.granted());
    assert!(advice.restarts >= 1, "at least the first alarm is granted");
    assert_eq!(
        advice.denied,
        controller.denied_cooldown() + controller.denied_budget()
    );
    assert_eq!(advice.last_restart_secs, controller.last_restart_secs(0));

    client.bye().expect("bye");
    let outcome = server.shutdown();
    assert_eq!(outcome.wire.session_panics, 0);
    assert_eq!(outcome.wire.quarantined, 0);
    assert_eq!(outcome.wire.malformed_frames, 0);
}

#[test]
fn rejuv_query_on_v1_session_strikes_then_quarantines() {
    let server = Server::bind("127.0.0.1:0", serve_config(Some(rejuv_config()))).expect("bind");
    let mut stream = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .expect("read timeout");
    let mut dec = FrameDecoder::new(DEFAULT_MAX_FRAME);
    let read_frame = |stream: &mut std::net::TcpStream, dec: &mut FrameDecoder| loop {
        match dec.next_payload() {
            Ok(Some(payload)) => {
                return Some(Frame::decode_payload(&payload).expect("server frames decode"))
            }
            Ok(None) => {}
            Err(_) => return None,
        }
        let mut buf = [0u8; 4096];
        match std::io::Read::read(stream, &mut buf) {
            Ok(0) => return None,
            Ok(n) => dec.feed(&buf[..n]),
            Err(_) => return None,
        }
    };

    stream
        .write_all(&encode_frame(&Frame::Hello {
            version: PROTOCOL_VERSION,
            name: "v1-but-curious".into(),
        }))
        .expect("send hello");
    let ack = read_frame(&mut stream, &mut dec).expect("hello ack");
    assert!(matches!(
        ack,
        Frame::HelloAck {
            version: PROTOCOL_VERSION,
            ..
        }
    ));

    // A perfectly well-formed rejuv query — just illegal on a v1
    // session. Each draws ERR_MALFORMED; the third quarantines.
    let mut saw_quarantine = false;
    for attempt in 1..=3u32 {
        stream
            .write_all(&encode_frame(&Frame::QueryRejuv { machine_id: 1 }))
            .expect("send rejuv query");
        let reply = read_frame(&mut stream, &mut dec).expect("strike reply");
        let Frame::Error { code, message } = reply else {
            panic!("expected an error frame, got {reply:?}");
        };
        assert_eq!(code, ERR_MALFORMED, "strike {attempt}: {message}");
        assert!(
            message.contains("protocol v2"),
            "the strike names the version gate: {message}"
        );
        if attempt == 3 {
            let last = read_frame(&mut stream, &mut dec).expect("quarantine notice");
            let Frame::Error { code, .. } = last else {
                panic!("expected the quarantine error, got {last:?}");
            };
            assert_eq!(code, ERR_QUARANTINED);
            saw_quarantine = true;
        }
    }
    assert!(saw_quarantine);

    let outcome = server.shutdown();
    assert_eq!(outcome.wire.quarantined, 1, "exactly this session");
    assert_eq!(outcome.wire.malformed_frames, 3);
    assert_eq!(outcome.wire.session_panics, 0);
}
