//! Machine (hardware + OS) configuration.

use crate::units::Bytes;
use aging_timeseries::{Error, Result};
use serde::{Deserialize, Serialize};

/// Static description of a simulated machine.
///
/// The presets mirror the class of hardware the target paper's testbed
/// used (1999–2003 era Windows NT 4.0 / Windows 2000 workstations).
///
/// # Examples
///
/// ```
/// use aging_memsim::MachineConfig;
///
/// let cfg = MachineConfig::workstation_nt4();
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable machine name (used in experiment reports).
    pub name: String,
    /// Physical RAM.
    pub ram: Bytes,
    /// Swap (page file) capacity.
    pub swap: Bytes,
    /// Memory held by the OS itself (never reclaimed).
    pub os_overhead: Bytes,
    /// Monitor sampling period in seconds (the paper's collector sampled
    /// on a fixed period; 30 s is the default here).
    pub sample_period_secs: f64,
    /// Simulation step in seconds (must divide the sampling period).
    pub step_secs: f64,
    /// Fraction of the commit limit above which the pager thrashes.
    pub thrash_threshold: f64,
    /// Seconds of sustained thrashing that count as a hang/crash.
    pub thrash_crash_secs: f64,
}

impl MachineConfig {
    /// A late-1990s NT 4.0 workstation: 256 MiB RAM, 384 MiB swap.
    pub fn workstation_nt4() -> Self {
        MachineConfig {
            name: "nt4-workstation".into(),
            ram: Bytes::mib(256),
            swap: Bytes::mib(384),
            os_overhead: Bytes::mib(48),
            sample_period_secs: 30.0,
            step_secs: 1.0,
            thrash_threshold: 0.96,
            thrash_crash_secs: 600.0,
        }
    }

    /// A Windows 2000 server: 512 MiB RAM, 768 MiB swap.
    pub fn server_w2k() -> Self {
        MachineConfig {
            name: "w2k-server".into(),
            ram: Bytes::mib(512),
            swap: Bytes::mib(768),
            os_overhead: Bytes::mib(80),
            sample_period_secs: 30.0,
            step_secs: 1.0,
            thrash_threshold: 0.96,
            thrash_crash_secs: 600.0,
        }
    }

    /// A deliberately small machine for fast tests: 64 MiB RAM,
    /// 64 MiB swap, 5 s sampling.
    pub fn tiny_test() -> Self {
        MachineConfig {
            name: "tiny-test".into(),
            ram: Bytes::mib(64),
            swap: Bytes::mib(64),
            os_overhead: Bytes::mib(8),
            sample_period_secs: 5.0,
            step_secs: 1.0,
            thrash_threshold: 0.96,
            thrash_crash_secs: 120.0,
        }
    }

    /// The commit limit: RAM + swap.
    pub fn commit_limit(&self) -> Bytes {
        self.ram + self.swap
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.ram == Bytes::ZERO {
            return Err(Error::invalid("ram", "must be positive"));
        }
        if self.os_overhead >= self.ram {
            return Err(Error::invalid("os_overhead", "must be below ram"));
        }
        if !(self.step_secs > 0.0 && self.step_secs.is_finite()) {
            return Err(Error::invalid("step_secs", "must be finite and positive"));
        }
        if self.sample_period_secs < self.step_secs {
            return Err(Error::invalid(
                "sample_period_secs",
                "must be at least step_secs",
            ));
        }
        let ratio = self.sample_period_secs / self.step_secs;
        if (ratio - ratio.round()).abs() > 1e-9 {
            return Err(Error::invalid(
                "sample_period_secs",
                "must be an integer multiple of step_secs",
            ));
        }
        if !(0.5..=1.0).contains(&self.thrash_threshold) {
            return Err(Error::invalid("thrash_threshold", "must lie in [0.5, 1.0]"));
        }
        if self.thrash_crash_secs <= 0.0 {
            return Err(Error::invalid("thrash_crash_secs", "must be positive"));
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::workstation_nt4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::workstation_nt4().validate().unwrap();
        MachineConfig::server_w2k().validate().unwrap();
        MachineConfig::tiny_test().validate().unwrap();
    }

    #[test]
    fn commit_limit_is_ram_plus_swap() {
        let cfg = MachineConfig::workstation_nt4();
        assert_eq!(cfg.commit_limit(), Bytes::mib(640));
    }

    #[test]
    fn validation_catches_bad_fields() {
        let good = MachineConfig::tiny_test();

        let mut c = good.clone();
        c.ram = Bytes::ZERO;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.os_overhead = c.ram;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.step_secs = 0.0;
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.sample_period_secs = 0.5; // below step
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.sample_period_secs = 2.5; // not a multiple of 1.0
        assert!(c.validate().is_err());

        let mut c = good.clone();
        c.thrash_threshold = 0.2;
        assert!(c.validate().is_err());

        let mut c = good;
        c.thrash_crash_secs = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn default_is_nt4() {
        assert_eq!(MachineConfig::default().name, "nt4-workstation");
    }
}
