//! Live fleet monitoring with the `aging-stream` subsystem: 50 simulated
//! machines — a mix of leaking (aging) and healthy boxes — multiplexed
//! through bounded-memory streaming detectors on a thread-per-shard
//! supervisor. Alarms arrive as one time-ordered stream; the run ends
//! with the crash/lead-time scoreboard and the final telemetry snapshot.
//!
//! Run with: `cargo run --release --example streaming_fleet`

use aging_core::baseline::{ResourceDirection, TrendPredictorConfig};
use aging_stream::supervisor::AlarmKind;
use holder_aging::prelude::*;

fn main() -> Result<()> {
    // The fleet: 30 aging machines with leak rates from mild to savage,
    // 20 healthy controls. All are the 64 MiB "tiny" box sampled at 5 s.
    let mut fleet = Vec::new();
    for i in 0..30u64 {
        let mib_per_hour = 96.0 + 8.0 * i as f64;
        fleet.push(Scenario::tiny_aging(1000 + i, mib_per_hour));
    }
    for i in 0..20u64 {
        fleet.push(Scenario::tiny_aging(2000 + i, 0.0));
    }

    // Two votes per machine: free memory depleting, swap filling. The
    // majority rule needs both, which keeps healthy-box noise quiet.
    let dt = 5.0;
    let swap_bytes = 64.0 * 1024.0 * 1024.0;
    let detectors = vec![
        CounterDetector {
            counter: Counter::AvailableBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                window: 120,
                refit_every: 8,
                alarm_horizon_secs: 1800.0,
                ..TrendPredictorConfig::depleting(dt)
            }),
        },
        CounterDetector {
            counter: Counter::UsedSwapBytes,
            spec: DetectorSpec::Trend(TrendPredictorConfig {
                sample_period_secs: dt,
                window: 120,
                refit_every: 8,
                alpha: 0.05,
                exhaustion_level: 0.9 * swap_bytes,
                direction: ResourceDirection::Filling,
                alarm_horizon_secs: 1800.0,
            }),
        },
    ];

    let mut config = FleetConfig::new(detectors, 6.0 * 3600.0);
    config.gate.nominal_period_secs = dt;
    config.status_every_secs = 1800.0;

    println!(
        "monitoring {} machines x {} counters for {} simulated hours…\n",
        fleet.len(),
        config.detectors.len(),
        config.horizon_secs / 3600.0
    );

    let supervisor = FleetSupervisor::new(config)?;
    let report = supervisor.run_with(
        &fleet,
        |event| {
            if let AlarmKind::MachineAlarm { votes, members } = event.kind {
                println!(
                    "[t={:>8.0}s] ALARM  {:<20} ({votes}/{members} detectors agree)",
                    event.time_secs, event.machine
                );
            }
        },
        |status| println!("{}", status.status_line()),
    )?;

    // Scoreboard: every crashed machine, its alarm and the lead time.
    println!(
        "\n{:<22} {:>9} {:>9} {:>10}",
        "machine", "crash[h]", "alarm[h]", "lead[min]"
    );
    let mut detected = 0usize;
    let mut crashes = 0usize;
    let mut false_alarms = 0usize;
    for outcome in &report.outcomes {
        let alarm = report
            .machine_alarms()
            .find(|e| e.machine_index == outcome.machine_index)
            .map(|e| e.time_secs);
        match outcome.crash_time_secs {
            Some(crash) => {
                crashes += 1;
                if alarm.is_some() {
                    detected += 1;
                }
                println!(
                    "{:<22} {:>9.2} {:>9} {:>10}",
                    outcome.machine,
                    crash / 3600.0,
                    alarm.map_or("-".into(), |a| format!("{:.2}", a / 3600.0)),
                    report
                        .lead_time_secs(outcome.machine_index)
                        .map_or("-".into(), |l| format!("{:.1}", l / 60.0)),
                );
            }
            None => {
                if alarm.is_some() {
                    false_alarms += 1;
                }
            }
        }
    }
    println!(
        "\ndetected {detected}/{crashes} crashes, {false_alarms} false alarm(s) on {} healthy machines",
        report.outcomes.len() - crashes
    );
    println!("final status: {}", report.status.status_line());
    println!("status JSON:  {}", report.status.to_json()?);
    Ok(())
}
