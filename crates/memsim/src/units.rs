//! Unit newtypes for the simulator: byte quantities and simulation time.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte quantity (memory sizes, counters).
///
/// # Examples
///
/// ```
/// use aging_memsim::Bytes;
///
/// let ram = Bytes::mib(256);
/// assert_eq!(ram.as_u64(), 256 * 1024 * 1024);
/// assert_eq!((ram + Bytes::mib(256)).as_mib(), 512.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a quantity from raw bytes.
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// Creates a quantity from kibibytes.
    pub const fn kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a quantity from mebibytes.
    pub const fn mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Creates a quantity from gibibytes.
    pub const fn gib(gib: u64) -> Self {
        Bytes(gib * 1024 * 1024 * 1024)
    }

    /// Raw byte count.
    pub const fn as_u64(&self) -> u64 {
        self.0
    }

    /// As `f64` bytes (for analysis pipelines).
    pub fn as_f64(&self) -> f64 {
        self.0 as f64
    }

    /// As mebibytes.
    pub fn as_mib(&self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_add(rhs.0))
    }

    /// Minimum of two quantities.
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }

    /// Maximum of two quantities.
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }

    /// Creates a quantity from an `f64`, clamping negatives to zero.
    pub fn from_f64(bytes: f64) -> Bytes {
        if bytes.is_finite() && bytes > 0.0 {
            Bytes(bytes as u64)
        } else {
            Bytes(0)
        }
    }
}

impl std::ops::Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 - rhs.0)
    }
}

impl std::iter::Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        Bytes(iter.map(|b| b.0).sum())
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

/// Simulation time in seconds from the start of the run.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(secs)
    }

    /// Creates a time from hours.
    pub fn from_hours(hours: f64) -> Self {
        SimTime(hours * 3600.0)
    }

    /// Seconds since simulation start.
    pub fn as_secs(&self) -> f64 {
        self.0
    }

    /// Hours since simulation start.
    pub fn as_hours(&self) -> f64 {
        self.0 / 3600.0
    }
}

impl std::ops::Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, secs: f64) -> SimTime {
        SimTime(self.0 + secs)
    }
}

impl std::ops::Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let h = (total / 3600.0).floor();
        let m = ((total - h * 3600.0) / 60.0).floor();
        let s = total - h * 3600.0 - m * 60.0;
        write!(f, "{h:02.0}:{m:02.0}:{s:04.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(Bytes::kib(1).as_u64(), 1024);
        assert_eq!(Bytes::mib(1).as_u64(), 1024 * 1024);
        assert_eq!(Bytes::gib(1).as_u64(), 1024 * 1024 * 1024);
    }

    #[test]
    fn arithmetic() {
        let a = Bytes::mib(10);
        let b = Bytes::mib(4);
        assert_eq!(a + b, Bytes::mib(14));
        assert_eq!(a - b, Bytes::mib(6));
        assert_eq!(b.saturating_sub(a), Bytes::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, Bytes::mib(14));
    }

    #[test]
    fn from_f64_clamps() {
        assert_eq!(Bytes::from_f64(-5.0), Bytes::ZERO);
        assert_eq!(Bytes::from_f64(f64::NAN), Bytes::ZERO);
        assert_eq!(Bytes::from_f64(1024.9), Bytes::new(1024));
    }

    #[test]
    fn sum_iterator() {
        let total: Bytes = vec![Bytes::new(1), Bytes::new(2), Bytes::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Bytes::new(6));
    }

    #[test]
    fn display_units() {
        assert_eq!(Bytes::new(512).to_string(), "512 B");
        assert_eq!(Bytes::kib(2).to_string(), "2.00 KiB");
        assert_eq!(Bytes::mib(3).to_string(), "3.00 MiB");
        assert_eq!(Bytes::gib(1).to_string(), "1.00 GiB");
    }

    #[test]
    fn sim_time_units() {
        let t = SimTime::from_hours(1.5);
        assert_eq!(t.as_secs(), 5400.0);
        assert_eq!(t.as_hours(), 1.5);
        let t2 = t + 60.0;
        assert!((t2 - t - 60.0).abs() < 1e-12);
        assert_eq!(SimTime::from_secs(3723.5).to_string(), "01:02:03.5");
    }
}
