//! Closed-loop software-rejuvenation control plane.
//!
//! Everything below the alarm stream *predicts*; this crate *acts*. It
//! turns watermark-ordered fused alarms into restart actions under a
//! configurable [`RejuvPolicy`]:
//!
//! - [`RejuvPolicy::None`] — never restart proactively (crashes still
//!   force a repair reboot): the no-op baseline.
//! - [`RejuvPolicy::Periodic`] — fixed-interval restarts regardless of
//!   machine health: the classic cron-driven rejuvenation baseline.
//! - [`RejuvPolicy::AlarmTriggered`] — restart when the fused detector
//!   vote says the machine is aging: the closed loop the 2003 paper
//!   motivates.
//!
//! The [`RejuvController`] is the deterministic arbiter in the middle:
//! it consumes [`RestartRequest`]s in global `(time, machine)` order and
//! grants or denies each against a per-machine cooldown and a
//! fleet-wide concurrent-restart budget, producing an auditable
//! [`RestartDecision`] log. Determinism is a hard requirement — the
//! stream supervisor journals granted actions (acked ⇒ durable), and
//! crash recovery replays the same request sequence expecting
//! byte-identical decisions.
//!
//! The crate deliberately knows nothing about simulations, detectors or
//! wire protocols: `aging-memsim` provides the restart *seam*,
//! `aging-stream` provides the alarm *signal* and `aging-bench` scores
//! the result with the [`availability`] metric defined here.

pub mod availability;
pub mod controller;
pub mod policy;

pub use availability::{availability, AvailabilitySummary};
pub use controller::{DenyReason, RejuvController, RestartDecision, RestartReason, RestartRequest};
pub use policy::{RejuvConfig, RejuvPolicy};
