//! Byte-exact little-endian state codec primitives for the persistence
//! layer (`aging-store`).
//!
//! Every streaming kernel that participates in crash-safe
//! checkpointing serializes its *dynamic* state with these helpers —
//! configuration is never written, it is re-supplied on recovery and the
//! object is rebuilt fresh before [`Reader`]-driven restoration. Floats
//! travel as raw IEEE-754 bits ([`f64::to_bits`], little-endian), so a
//! restored kernel is bit-identical to the snapshotted one: feeding both
//! the same suffix of a stream produces the same outputs to the last ULP.
//!
//! The format is deliberately primitive (no tags, no self-description):
//! the schema is the code, and a version byte at the container level
//! (`aging-store`'s snapshot header) gates incompatible evolution.
//! Decoding is strict — every read is bounds-checked and
//! [`Reader::finish`] rejects trailing bytes — so corrupt snapshots fail
//! loudly instead of desynchronizing silently.
//!
//! # Examples
//!
//! ```
//! use aging_timeseries::persist::{self, Reader};
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! let mut buf = Vec::new();
//! persist::put_u64(&mut buf, 7);
//! persist::put_f64(&mut buf, -0.0); // sign bit survives
//! let mut r = Reader::new(&buf);
//! assert_eq!(r.u64()?, 7);
//! assert_eq!(r.f64()?.to_bits(), (-0.0f64).to_bits());
//! r.finish()?;
//! # Ok(())
//! # }
//! ```

use crate::error::{Error, Result};

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` as its two's-complement `u64` bit pattern.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    put_u64(out, v as u64);
}

/// Appends a `usize` widened to `u64` (the format is 64-bit everywhere,
/// independent of the host word size).
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends an `f64` as its raw IEEE-754 bits — NaN payloads, signed
/// zeros and infinities all round-trip exactly.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `bool` as one byte (`0`/`1`).
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends an `Option<f64>` as a presence byte followed by the bits.
pub fn put_opt_f64(out: &mut Vec<u8>, v: Option<f64>) {
    match v {
        Some(x) => {
            out.push(1);
            put_f64(out, x);
        }
        None => out.push(0),
    }
}

/// Appends a `u64`-length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_usize(out, v.len());
    out.extend_from_slice(v);
}

/// Appends a `u64`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

fn corrupt(reason: impl Into<String>) -> Error {
    Error::invalid("persist", reason)
}

/// A strict bounds-checked cursor over an encoded state blob.
///
/// Every accessor consumes from the front; any structural violation
/// (truncation, bad presence byte, absurd length) is an
/// [`Error::InvalidParameter`] tagged `persist`.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps a blob for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// Fails if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated: wanted {n} bytes, {} left",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads an `i64` (two's-complement `u64` bit pattern).
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    /// Reads a `u64` and narrows it to the host `usize`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or if the value does not fit a `usize`
    /// (possible on 32-bit hosts).
    pub fn usize_(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| corrupt(format!("length {v} exceeds host usize")))
    }

    /// Reads an `f64` from its raw bits.
    ///
    /// # Errors
    ///
    /// Fails on truncation.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting any byte other than `0`/`1`.
    ///
    /// # Errors
    ///
    /// Fails on truncation or a non-boolean byte.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(corrupt(format!("bad bool byte {b:#04x}"))),
        }
    }

    /// Reads an `Option<f64>` (presence byte + bits).
    ///
    /// # Errors
    ///
    /// Fails on truncation or a bad presence byte.
    pub fn opt_f64(&mut self) -> Result<Option<f64>> {
        if self.bool()? {
            Ok(Some(self.f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a `u64`-length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Fails on truncation (the declared length is checked against the
    /// remaining bytes before any allocation).
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.usize_()?;
        self.take(n)
    }

    /// Reads a `u64`-length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Fails on truncation or invalid UTF-8.
    pub fn str_(&mut self) -> Result<String> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| corrupt("invalid UTF-8 in string"))
    }

    /// Asserts the blob is fully consumed.
    ///
    /// # Errors
    ///
    /// Fails if any bytes remain — a schema drift or corruption signal.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xab);
        put_u32(&mut buf, 0xdead_beef);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_usize(&mut buf, 12345);
        put_f64(&mut buf, f64::NEG_INFINITY);
        put_bool(&mut buf, true);
        put_opt_f64(&mut buf, None);
        put_opt_f64(&mut buf, Some(-0.0));
        put_str(&mut buf, "m007:leaky");
        put_bytes(&mut buf, &[1, 2, 3]);

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.usize_().unwrap(), 12345);
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert!(r.bool().unwrap());
        assert_eq!(r.opt_f64().unwrap(), None);
        assert_eq!(r.opt_f64().unwrap().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.str_().unwrap(), "m007:leaky");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn nan_payload_survives() {
        let weird = f64::from_bits(0x7ff8_0000_c0ff_ee00);
        let mut buf = Vec::new();
        put_f64(&mut buf, weird);
        let mut r = Reader::new(&buf);
        assert_eq!(r.f64().unwrap().to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_and_garbage_fail_loudly() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert!(r.u64().is_err());

        let mut r = Reader::new(&[7]);
        assert!(r.bool().is_err(), "7 is not a bool");

        // Declared length far beyond the buffer must not allocate or panic.
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        let mut r = Reader::new(&buf);
        assert!(r.bytes().is_err());

        let mut buf = Vec::new();
        put_u8(&mut buf, 1);
        let r = Reader::new(&buf);
        assert!(r.finish().is_err(), "unconsumed bytes must be rejected");
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(r.str_().is_err());
    }
}
