#!/usr/bin/env bash
# Local CI gate: everything a PR must pass, in the order it fails fastest.
#   ./ci.sh          full gate (build, tests, clippy -D warnings, fmt check)
#   ./ci.sh quick    skip the release build (debug build + tests + lints)
set -euo pipefail
cd "$(dirname "$0")"

quick=${1:-}

echo "==> cargo build"
if [ "$quick" = "quick" ]; then
    cargo build --workspace --all-targets
else
    cargo build --workspace --all-targets --release
fi

# The parallel engine must behave identically at any thread count: run the
# suite once pinned to a single worker and once with a multi-thread pool.
echo "==> cargo test (AGING_THREADS=1)"
AGING_THREADS=1 cargo test --workspace --quiet

echo "==> cargo test (AGING_THREADS=4)"
AGING_THREADS=4 cargo test --workspace --quiet

# The streaming spectrum kernel: bounded-memory Δα(t) must be bit-identical
# to the offline batch estimator on every window — scalar pushes, chunked
# slices with post-slice state probes, and any pool size
# (crates/fractal/tests/spectrum_props.rs).
echo "==> spectrum streaming-vs-batch parity (AGING_THREADS=1)"
AGING_THREADS=1 cargo test -p aging-fractal --test spectrum_props --quiet

echo "==> spectrum streaming-vs-batch parity (AGING_THREADS=4)"
AGING_THREADS=4 cargo test -p aging-fractal --test spectrum_props --quiet

# The robustness contract: every memsim scenario through the fleet
# supervisor, clean vs. chaos-wrapped, at two fixed seeds (see
# crates/chaos/tests/differential.rs — no panic, exact reconciliation,
# ordered watermarks, bounded lead-time loss).
echo "==> chaos differential suite (two fixed seeds)"
cargo test -p aging-chaos --test differential --quiet

# The networked path: alarms ingested over loopback TCP — in both wire
# modes, v1 record-at-a-time batches and protocol-v2 columnar frames —
# must be byte-identical to the offline supervisor at two fixed seeds,
# at both thread settings (crates/serve/tests/loopback_differential.rs).
echo "==> serve loopback differential (AGING_THREADS=1)"
AGING_THREADS=1 cargo test -p aging-serve --test loopback_differential --quiet

echo "==> serve loopback differential (AGING_THREADS=4)"
AGING_THREADS=4 cargo test -p aging-serve --test loopback_differential --quiet

# Crash safety: a store-backed server killed at seed-deterministic points
# and recovered from its WAL + snapshot must match the uninterrupted
# offline supervisor byte for byte, duplicates deduped
# (crates/serve/tests/kill_recover.rs).
echo "==> serve kill-and-recover differential (AGING_THREADS=1)"
AGING_THREADS=1 cargo test -p aging-serve --test kill_recover --quiet

echo "==> serve kill-and-recover differential (AGING_THREADS=4)"
AGING_THREADS=4 cargo test -p aging-serve --test kill_recover --quiet

# The cluster tier: machine ids ring-partitioned across shard servers,
# each shard's watermark-ordered alarm stream k-way merged by the
# aggregator — the merged global history must be byte-identical to the
# offline whole-fleet supervisor, including a kill-and-recover run
# (crates/cluster/tests/cluster_parity.rs). This is the quick E16 gate:
# 2-shard topology, reduced machine count, both thread settings.
echo "==> cluster parity differential (AGING_THREADS=1)"
AGING_THREADS=1 cargo test -p aging-cluster --test cluster_parity --quiet

echo "==> cluster parity differential (AGING_THREADS=4)"
AGING_THREADS=4 cargo test -p aging-cluster --test cluster_parity --quiet

# The closed rejuvenation loop: restart decisions must be bit-identical
# across worker-pool sizes and scalar-vs-columnar ingestion
# (crates/stream/tests/rejuv_parity.rs), must match the committed golden
# decision fixtures (crates/stream/tests/golden_rejuv.rs), and the bare
# controller's safety envelope must hold on generated request streams
# (crates/rejuv/tests/controller_props.rs).
echo "==> rejuv decision-parity suite (AGING_THREADS=1)"
AGING_THREADS=1 cargo test -p aging-stream --test rejuv_parity --test golden_rejuv --quiet
AGING_THREADS=1 cargo test -p aging-rejuv --quiet

echo "==> rejuv decision-parity suite (AGING_THREADS=4)"
AGING_THREADS=4 cargo test -p aging-stream --test rejuv_parity --test golden_rejuv --quiet
AGING_THREADS=4 cargo test -p aging-rejuv --quiet

# The hot-path allocation contract: once warm, the steady-state ingest
# loops (columnar trend pipeline, streaming Hölder/dimension pushes,
# non-emitting spectrum pushes) must perform zero heap allocations,
# counted by a wrapping #[global_allocator]
# (crates/stream/tests/alloc_regression.rs).
echo "==> allocation-regression guard (AGING_THREADS=1)"
AGING_THREADS=1 cargo test -p aging-stream --test alloc_regression --quiet

echo "==> allocation-regression guard (AGING_THREADS=4)"
AGING_THREADS=4 cargo test -p aging-stream --test alloc_regression --quiet

# The E17 differential: Δα(t) drifts upward on aging memsim runs and stays
# flat on healthy controls, with streaming-vs-batch parity checked inside
# the experiment at pool sizes 1 and 4 (crates/bench/src/experiments.rs).
# --no-trajectory keeps CI probe runs out of the committed BENCH histories.
echo "==> repro e17 differential (quick)"
if [ "$quick" = "quick" ]; then
    cargo run -p aging-bench --bin repro -- --quick --no-csv --no-trajectory e17
else
    cargo run --release -p aging-bench --bin repro -- --quick --no-csv --no-trajectory e17
fi

# The E18 differential: the full closed loop over both scenario families —
# alarm-driven rejuvenation must strictly beat fixed-interval restarts and
# no-op on availability, with the false-alarm and lead-time budgets held
# and kill-and-recover replaying byte-identical restart decisions.
echo "==> repro e18 differential (quick)"
if [ "$quick" = "quick" ]; then
    cargo run -p aging-bench --bin repro -- --quick --no-csv --no-trajectory e18
else
    cargo run --release -p aging-bench --bin repro -- --quick --no-csv --no-trajectory e18
fi

# The E19 micro-gate: each StreamingSpectrum emission must cost ≥2× less
# than the honest batch recompute, stay bit-identical to the batch trace
# at pool sizes 1 and 4, and drift ≤1e-9 relative from a from-scratch
# recompute of every window (crates/bench/src/experiments.rs).
echo "==> repro e19 kernel micro-gate (quick)"
if [ "$quick" = "quick" ]; then
    cargo run -p aging-bench --bin repro -- --quick --no-csv --no-trajectory e19
else
    cargo run --release -p aging-bench --bin repro -- --quick --no-csv --no-trajectory e19
fi

echo "==> cargo test --doc"
cargo test --workspace --doc --quiet

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "CI gate passed."
