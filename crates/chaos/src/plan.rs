//! Declarative chaos plans: which injectors run, how hard, and when.
//!
//! A [`ChaosPlan`] is data, not code — it serialises, diffs and replays.
//! Together with its seed it pins the *entire* injected fault stream:
//! the same plan applied to the same source always produces the same
//! perturbed sample sequence, bit for bit, regardless of thread count.

use aging_timeseries::{Error, Result};
use serde::{Deserialize, Serialize};

/// How many primary emissions the replay buffer retains per stream —
/// the upper bound on [`InjectorSpec::Replay`]'s `max_age`.
pub const REPLAY_BUFFER: usize = 16;

/// The window duration meaning "for the rest of the run": 10¹⁸ seconds
/// (~30 billion years). A finite sentinel rather than `f64::INFINITY` so
/// plans stay JSON-serialisable.
pub const FOREVER_SECS: f64 = 1e18;

/// The stream-time interval during which an injector is armed.
///
/// Windows are evaluated against the *raw* (pre-perturbation) sample
/// clock, so an injected clock defect can never move another injector's
/// activation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveWindow {
    /// Stream time at which the injector arms, seconds.
    pub onset_secs: f64,
    /// How long it stays armed, seconds ([`FOREVER_SECS`] = forever).
    pub duration_secs: f64,
}

impl ActiveWindow {
    /// Armed for the whole run.
    pub fn always() -> Self {
        ActiveWindow {
            onset_secs: 0.0,
            duration_secs: FOREVER_SECS,
        }
    }

    /// Armed from `onset_secs` for `duration_secs`.
    pub fn new(onset_secs: f64, duration_secs: f64) -> Self {
        ActiveWindow {
            onset_secs,
            duration_secs,
        }
    }

    /// Whether `time_secs` falls inside the window.
    pub fn contains(&self, time_secs: f64) -> bool {
        time_secs >= self.onset_secs && time_secs - self.onset_secs < self.duration_secs
    }
}

impl Default for ActiveWindow {
    fn default() -> Self {
        ActiveWindow::always()
    }
}

/// One composable fault injector.
///
/// Each variant models a defect class observed in real monitor feeds;
/// [`crate::inject::ChaosEngine`] applies them per sample in plan order.
/// Probabilistic parameters (`rate`) are per-sample Bernoulli draws from
/// the plan's seeded generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum InjectorSpec {
    /// Bursts of NaN/±Inf values — an exporter reading freed memory or
    /// serialising garbage during collector restarts.
    NonFiniteBurst {
        /// Per-sample probability of starting a burst.
        rate: f64,
        /// Burst length is drawn uniformly from `1..=max_len`.
        max_len: u32,
        /// When the injector is armed.
        window: ActiveWindow,
    },
    /// Immediate duplicate deliveries of the current sample — at-least-
    /// once transports retrying an acked message.
    Duplicate {
        /// Per-sample probability of duplicating.
        rate: f64,
        /// Extra copies drawn uniformly from `1..=max_copies`.
        max_copies: u32,
        /// When the injector is armed.
        window: ActiveWindow,
    },
    /// Re-delivery of an *older* sample with its stale timestamp — a
    /// delayed queue flush or a restarted relay replaying its journal.
    Replay {
        /// Per-sample probability of replaying.
        rate: f64,
        /// Replayed sample age in emissions, drawn from `1..=max_age`
        /// (capped by [`REPLAY_BUFFER`]).
        max_age: u32,
        /// When the injector is armed.
        window: ActiveWindow,
    },
    /// A one-off step of the source clock — NTP slew, VM migration, or a
    /// timezone misconfiguration fixed mid-run. A negative offset makes
    /// subsequent timestamps regress until real time catches up.
    ClockStep {
        /// Raw stream time at which the step lands, seconds.
        at_secs: f64,
        /// Signed clock offset applied from then on, seconds.
        offset_secs: f64,
    },
    /// Multiplicative clock drift inside the window — a guest clock
    /// running fast or slow relative to the fleet.
    ClockSkew {
        /// Time dilation factor (`1.0` = no skew; must be positive).
        factor: f64,
        /// When the injector is armed.
        window: ActiveWindow,
    },
    /// Isolated value spikes: the sample is multiplied or divided by
    /// `magnitude` — unit-mixup glitches (KiB read as bytes) and
    /// single-scrape corruption.
    Spike {
        /// Per-sample probability of spiking.
        rate: f64,
        /// Spike factor (> 0); multiply or divide is a coin flip.
        magnitude: f64,
        /// When the injector is armed.
        window: ActiveWindow,
    },
    /// Values reduced modulo `modulus` — fixed-width counter wraparound
    /// in the exporter (the classic 32-bit byte-counter wrap).
    CounterWrap {
        /// Wrap modulus (> 0).
        modulus: f64,
        /// When the injector is armed.
        window: ActiveWindow,
    },
    /// Dropped samples: runs of readings that never arrive — scrape
    /// timeouts, packet loss, a wedged exporter.
    Stall {
        /// Per-sample probability of starting a dropout run.
        rate: f64,
        /// Run length drawn uniformly from `1..=max_len`.
        max_len: u32,
        /// When the injector is armed.
        window: ActiveWindow,
    },
}

impl InjectorSpec {
    /// NaN/±Inf bursts at `rate`, up to `max_len` samples long.
    pub fn nan_bursts(rate: f64, max_len: u32) -> Self {
        InjectorSpec::NonFiniteBurst {
            rate,
            max_len,
            window: ActiveWindow::always(),
        }
    }

    /// Duplicate deliveries at `rate`, up to `max_copies` extras.
    pub fn duplicates(rate: f64, max_copies: u32) -> Self {
        InjectorSpec::Duplicate {
            rate,
            max_copies,
            window: ActiveWindow::always(),
        }
    }

    /// Stale replays at `rate`, up to `max_age` emissions old.
    pub fn replays(rate: f64, max_age: u32) -> Self {
        InjectorSpec::Replay {
            rate,
            max_age,
            window: ActiveWindow::always(),
        }
    }

    /// A clock step of `offset_secs` at raw time `at_secs`.
    pub fn clock_step(at_secs: f64, offset_secs: f64) -> Self {
        InjectorSpec::ClockStep {
            at_secs,
            offset_secs,
        }
    }

    /// Multiplicative clock skew by `factor`.
    pub fn clock_skew(factor: f64) -> Self {
        InjectorSpec::ClockSkew {
            factor,
            window: ActiveWindow::always(),
        }
    }

    /// Value spikes at `rate`, multiplied/divided by `magnitude`.
    pub fn spikes(rate: f64, magnitude: f64) -> Self {
        InjectorSpec::Spike {
            rate,
            magnitude,
            window: ActiveWindow::always(),
        }
    }

    /// Counter wraparound at `modulus`.
    pub fn counter_wrap(modulus: f64) -> Self {
        InjectorSpec::CounterWrap {
            modulus,
            window: ActiveWindow::always(),
        }
    }

    /// Sample dropouts at `rate`, up to `max_len` samples long.
    pub fn stalls(rate: f64, max_len: u32) -> Self {
        InjectorSpec::Stall {
            rate,
            max_len,
            window: ActiveWindow::always(),
        }
    }

    /// Restricts the injector to `[onset_secs, onset_secs + duration_secs)`
    /// of raw stream time. No-op for [`InjectorSpec::ClockStep`], whose
    /// activation is its `at_secs`.
    #[must_use]
    pub fn with_window(mut self, onset_secs: f64, duration_secs: f64) -> Self {
        let w = ActiveWindow::new(onset_secs, duration_secs);
        match &mut self {
            InjectorSpec::NonFiniteBurst { window, .. }
            | InjectorSpec::Duplicate { window, .. }
            | InjectorSpec::Replay { window, .. }
            | InjectorSpec::ClockSkew { window, .. }
            | InjectorSpec::Spike { window, .. }
            | InjectorSpec::CounterWrap { window, .. }
            | InjectorSpec::Stall { window, .. } => *window = w,
            InjectorSpec::ClockStep { .. } => {}
        }
        self
    }

    /// Validates one injector's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let rate_ok = |r: f64| (0.0..=1.0).contains(&r);
        let window_ok = |w: &ActiveWindow| {
            w.onset_secs.is_finite() && w.onset_secs >= 0.0 && w.duration_secs > 0.0
        };
        match *self {
            InjectorSpec::NonFiniteBurst {
                rate,
                max_len,
                ref window,
            }
            | InjectorSpec::Stall {
                rate,
                max_len,
                ref window,
            } => {
                if !rate_ok(rate) {
                    return Err(Error::invalid("rate", "must be in [0, 1]"));
                }
                if max_len == 0 {
                    return Err(Error::invalid("max_len", "must be at least 1"));
                }
                if !window_ok(window) {
                    return Err(Error::invalid("window", "onset >= 0, duration > 0"));
                }
            }
            InjectorSpec::Duplicate {
                rate,
                max_copies,
                ref window,
            } => {
                if !rate_ok(rate) {
                    return Err(Error::invalid("rate", "must be in [0, 1]"));
                }
                if max_copies == 0 {
                    return Err(Error::invalid("max_copies", "must be at least 1"));
                }
                if !window_ok(window) {
                    return Err(Error::invalid("window", "onset >= 0, duration > 0"));
                }
            }
            InjectorSpec::Replay {
                rate,
                max_age,
                ref window,
            } => {
                if !rate_ok(rate) {
                    return Err(Error::invalid("rate", "must be in [0, 1]"));
                }
                if max_age == 0 || max_age as usize > REPLAY_BUFFER {
                    return Err(Error::invalid(
                        "max_age",
                        format!("must be in 1..={REPLAY_BUFFER}"),
                    ));
                }
                if !window_ok(window) {
                    return Err(Error::invalid("window", "onset >= 0, duration > 0"));
                }
            }
            InjectorSpec::ClockStep {
                at_secs,
                offset_secs,
            } => {
                if !at_secs.is_finite() || at_secs < 0.0 {
                    return Err(Error::invalid("at_secs", "must be finite and >= 0"));
                }
                if !offset_secs.is_finite() {
                    return Err(Error::invalid("offset_secs", "must be finite"));
                }
            }
            InjectorSpec::ClockSkew { factor, ref window } => {
                if !(factor > 0.0 && factor.is_finite()) {
                    return Err(Error::invalid("factor", "must be positive and finite"));
                }
                if !window_ok(window) {
                    return Err(Error::invalid("window", "onset >= 0, duration > 0"));
                }
            }
            InjectorSpec::Spike {
                rate,
                magnitude,
                ref window,
            } => {
                if !rate_ok(rate) {
                    return Err(Error::invalid("rate", "must be in [0, 1]"));
                }
                if !(magnitude > 0.0 && magnitude.is_finite()) {
                    return Err(Error::invalid("magnitude", "must be positive and finite"));
                }
                if !window_ok(window) {
                    return Err(Error::invalid("window", "onset >= 0, duration > 0"));
                }
            }
            InjectorSpec::CounterWrap {
                modulus,
                ref window,
            } => {
                if !(modulus > 0.0 && modulus.is_finite()) {
                    return Err(Error::invalid("modulus", "must be positive and finite"));
                }
                if !window_ok(window) {
                    return Err(Error::invalid("window", "onset >= 0, duration > 0"));
                }
            }
        }
        Ok(())
    }
}

/// The full declarative fault plan for a run: a seed plus an ordered
/// list of injectors.
///
/// Injectors are applied in list order to every stream the plan wraps;
/// each stream derives its own generator from `(seed, stream key)`, so
/// fleets stay reproducible per stream regardless of sharding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPlan {
    /// Master seed; combined with each stream's key.
    pub seed: u64,
    /// Injectors, applied per sample in order.
    pub injectors: Vec<InjectorSpec>,
}

impl ChaosPlan {
    /// An empty plan (no injectors — wrapped streams pass through).
    pub fn new(seed: u64) -> Self {
        ChaosPlan {
            seed,
            injectors: Vec::new(),
        }
    }

    /// Appends an injector (builder-style).
    #[must_use]
    pub fn with(mut self, spec: InjectorSpec) -> Self {
        self.injectors.push(spec);
        self
    }

    /// Validates every injector.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for the first bad injector.
    pub fn validate(&self) -> Result<()> {
        for spec in &self.injectors {
            spec.validate()?;
        }
        Ok(())
    }

    /// The kitchen-sink preset the robustness suite runs: every defect
    /// class the gate is documented to survive, at rates aggressive
    /// enough to exercise quarantine but not to sever the signal.
    pub fn nasty(seed: u64) -> Self {
        ChaosPlan::new(seed)
            .with(InjectorSpec::nan_bursts(0.01, 3))
            .with(InjectorSpec::duplicates(0.02, 2))
            .with(InjectorSpec::replays(0.02, 8))
            .with(InjectorSpec::spikes(0.005, 8.0))
            .with(InjectorSpec::stalls(0.01, 2))
            .with(InjectorSpec::clock_skew(1.001))
            .with(InjectorSpec::clock_step(3600.0, -60.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_contain_their_interval() {
        let w = ActiveWindow::new(100.0, 50.0);
        assert!(!w.contains(99.9));
        assert!(w.contains(100.0));
        assert!(w.contains(149.9));
        assert!(!w.contains(150.0));
        assert!(ActiveWindow::always().contains(1e15));
    }

    #[test]
    fn with_window_applies_except_clock_step() {
        let s = InjectorSpec::spikes(0.1, 4.0).with_window(60.0, 30.0);
        let InjectorSpec::Spike { window, .. } = s else {
            panic!("variant preserved")
        };
        assert_eq!(window, ActiveWindow::new(60.0, 30.0));
        let c = InjectorSpec::clock_step(10.0, 5.0).with_window(60.0, 30.0);
        assert_eq!(c, InjectorSpec::clock_step(10.0, 5.0));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(InjectorSpec::nan_bursts(1.5, 3).validate().is_err());
        assert!(InjectorSpec::nan_bursts(0.5, 0).validate().is_err());
        assert!(InjectorSpec::replays(0.1, 99).validate().is_err());
        assert!(InjectorSpec::spikes(0.1, 0.0).validate().is_err());
        assert!(InjectorSpec::clock_skew(-1.0).validate().is_err());
        assert!(InjectorSpec::counter_wrap(f64::NAN).validate().is_err());
        assert!(InjectorSpec::clock_step(f64::NAN, 1.0).validate().is_err());
        assert!(InjectorSpec::stalls(0.1, 1)
            .with_window(-1.0, 10.0)
            .validate()
            .is_err());
        assert!(ChaosPlan::nasty(7).validate().is_ok());
        assert!(ChaosPlan::new(7)
            .with(InjectorSpec::duplicates(2.0, 1))
            .validate()
            .is_err());
    }

    #[test]
    fn plans_serialise_round_trip() {
        let plan = ChaosPlan::nasty(1234);
        let json = serde_json::to_string(&plan).unwrap();
        let back: ChaosPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }
}
