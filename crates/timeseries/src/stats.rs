//! Descriptive statistics over sample slices.
//!
//! These free functions operate on `&[f64]` so they are usable both on raw
//! buffers and on [`crate::TimeSeries::values`]. All of them validate their
//! input and return [`crate::Error`] rather than silently producing NaN.

use crate::error::{Error, Result};

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// assert_eq!(aging_timeseries::stats::mean(&[1.0, 2.0, 3.0])?, 2.0);
/// # Ok(())
/// # }
/// ```
pub fn mean(data: &[f64]) -> Result<f64> {
    Error::require_len(data, 1)?;
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Unbiased sample variance (denominator `n - 1`).
///
/// # Errors
///
/// Returns [`Error::TooShort`] with fewer than two samples.
pub fn variance(data: &[f64]) -> Result<f64> {
    Error::require_len(data, 2)?;
    let m = mean(data)?;
    let ss = data.iter().map(|&v| (v - m) * (v - m)).sum::<f64>();
    Ok(ss / (data.len() - 1) as f64)
}

/// Population variance (denominator `n`).
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input.
pub fn population_variance(data: &[f64]) -> Result<f64> {
    Error::require_len(data, 1)?;
    let m = mean(data)?;
    let ss = data.iter().map(|&v| (v - m) * (v - m)).sum::<f64>();
    Ok(ss / data.len() as f64)
}

/// Unbiased sample standard deviation.
///
/// # Errors
///
/// Returns [`Error::TooShort`] with fewer than two samples.
pub fn std_dev(data: &[f64]) -> Result<f64> {
    Ok(variance(data)?.sqrt())
}

/// Minimum value (NaN samples are ignored; all-NaN input is an error).
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input and [`Error::Numerical`] when no
/// finite sample exists.
pub fn min(data: &[f64]) -> Result<f64> {
    Error::require_len(data, 1)?;
    data.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.min(v)))
        })
        .ok_or_else(|| Error::Numerical("no non-NaN samples".into()))
}

/// Maximum value (NaN samples are ignored; all-NaN input is an error).
///
/// # Errors
///
/// Same conditions as [`min`].
pub fn max(data: &[f64]) -> Result<f64> {
    Error::require_len(data, 1)?;
    data.iter()
        .copied()
        .filter(|v| !v.is_nan())
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
        .ok_or_else(|| Error::Numerical("no non-NaN samples".into()))
}

/// Quantile with linear interpolation between order statistics
/// (the "type 7" definition used by R and NumPy).
///
/// `q` must lie in `[0, 1]`.
///
/// # Errors
///
/// Returns [`Error::Empty`] for empty input, [`Error::InvalidParameter`] for
/// `q` outside `[0, 1]`, and [`Error::NonFinite`] when the data contain NaN.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    Error::require_len(data, 1)?;
    Error::require_finite(data)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(Error::invalid("q", "must lie in [0, 1]"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50 % quantile).
///
/// # Errors
///
/// Same conditions as [`quantile`].
pub fn median(data: &[f64]) -> Result<f64> {
    quantile(data, 0.5)
}

/// Median absolute deviation, scaled by 1.4826 so that it estimates the
/// standard deviation for Gaussian data.
///
/// # Errors
///
/// Same conditions as [`quantile`].
pub fn mad(data: &[f64]) -> Result<f64> {
    let med = median(data)?;
    let deviations: Vec<f64> = data.iter().map(|&v| (v - med).abs()).collect();
    Ok(1.4826 * median(&deviations)?)
}

/// Sample skewness (Fisher definition, biased).
///
/// # Errors
///
/// Returns [`Error::TooShort`] with fewer than three samples and
/// [`Error::Numerical`] for (near-)constant data.
pub fn skewness(data: &[f64]) -> Result<f64> {
    Error::require_len(data, 3)?;
    let m = mean(data)?;
    let n = data.len() as f64;
    let m2 = data.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / n;
    let m3 = data.iter().map(|&v| (v - m).powi(3)).sum::<f64>() / n;
    if m2 <= f64::EPSILON {
        return Err(Error::Numerical("skewness of constant data".into()));
    }
    Ok(m3 / m2.powf(1.5))
}

/// Sample excess kurtosis (biased; 0 for a Gaussian).
///
/// # Errors
///
/// Returns [`Error::TooShort`] with fewer than four samples and
/// [`Error::Numerical`] for (near-)constant data.
pub fn excess_kurtosis(data: &[f64]) -> Result<f64> {
    Error::require_len(data, 4)?;
    let m = mean(data)?;
    let n = data.len() as f64;
    let m2 = data.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / n;
    let m4 = data.iter().map(|&v| (v - m).powi(4)).sum::<f64>() / n;
    if m2 <= f64::EPSILON {
        return Err(Error::Numerical("kurtosis of constant data".into()));
    }
    Ok(m4 / (m2 * m2) - 3.0)
}

/// Biased autocovariance at lag `k`:
/// `(1/n) * Σ (x[i] - mean)(x[i+k] - mean)`.
///
/// # Errors
///
/// Returns [`Error::TooShort`] when `k + 1 > n`.
pub fn autocovariance(data: &[f64], k: usize) -> Result<f64> {
    Error::require_len(data, k + 1)?;
    let m = mean(data)?;
    let n = data.len();
    let s: f64 = (0..n - k).map(|i| (data[i] - m) * (data[i + k] - m)).sum();
    Ok(s / n as f64)
}

/// Autocorrelation at lag `k` (autocovariance normalised by lag-0).
///
/// # Errors
///
/// Returns [`Error::TooShort`] when `k + 1 > n` and [`Error::Numerical`] for
/// constant data.
pub fn autocorrelation(data: &[f64], k: usize) -> Result<f64> {
    let c0 = autocovariance(data, 0)?;
    if c0 <= f64::EPSILON {
        return Err(Error::Numerical("autocorrelation of constant data".into()));
    }
    Ok(autocovariance(data, k)? / c0)
}

/// Standardises the data to zero mean, unit (sample) standard deviation.
///
/// # Errors
///
/// Returns [`Error::TooShort`] with fewer than two samples and
/// [`Error::Numerical`] for constant data.
pub fn zscore(data: &[f64]) -> Result<Vec<f64>> {
    let m = mean(data)?;
    let s = std_dev(data)?;
    if s <= f64::EPSILON {
        return Err(Error::Numerical("z-score of constant data".into()));
    }
    Ok(data.iter().map(|&v| (v - m) / s).collect())
}

/// A summary of the usual descriptive statistics computed in one pass over
/// the data (plus one sort for the quantiles).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 when `n == 1`).
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// 25 % quantile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75 % quantile.
    pub q75: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Empty`] for empty input and [`Error::NonFinite`]
    /// when the data contain NaN or infinities.
    pub fn of(data: &[f64]) -> Result<Self> {
        Error::require_len(data, 1)?;
        Error::require_finite(data)?;
        Ok(Summary {
            n: data.len(),
            mean: mean(data)?,
            std_dev: if data.len() >= 2 { std_dev(data)? } else { 0.0 },
            min: min(data)?,
            q25: quantile(data, 0.25)?,
            median: median(data)?,
            q75: quantile(data, 0.75)?,
            max: max(data)?,
        })
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} q25={:.4} med={:.4} q75={:.4} max={:.4}",
            self.n, self.mean, self.std_dev, self.min, self.q25, self.median, self.q75, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: &[f64] = &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];

    #[test]
    fn mean_basic() {
        assert_eq!(mean(DATA).unwrap(), 5.0);
        assert_eq!(mean(&[]), Err(Error::Empty));
    }

    #[test]
    fn variance_and_std() {
        // Known example: population std = 2, population var = 4.
        assert!((population_variance(DATA).unwrap() - 4.0).abs() < 1e-12);
        assert!((variance(DATA).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!(variance(&[1.0]).is_err());
    }

    #[test]
    fn min_max_ignore_nan() {
        assert_eq!(min(&[3.0, f64::NAN, -1.0]).unwrap(), -1.0);
        assert_eq!(max(&[3.0, f64::NAN, -1.0]).unwrap(), 3.0);
        assert!(min(&[f64::NAN]).is_err());
    }

    #[test]
    fn quantile_interpolates() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&d, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&d, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&d, 0.5).unwrap(), 2.5);
        assert!((quantile(&d, 1.0 / 3.0).unwrap() - 2.0).abs() < 1e-12);
        assert!(quantile(&d, 1.5).is_err());
        assert!(quantile(&[1.0, f64::NAN], 0.5).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
    }

    #[test]
    fn mad_gaussian_scaling() {
        // For symmetric data around the median, MAD is the scaled median
        // of absolute deviations.
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((mad(&d).unwrap() - 1.4826).abs() < 1e-12);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data → positive skewness.
        let right = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right).unwrap() > 0.0);
        let left = [10.0, 10.0, 10.0, 9.0, 1.0];
        assert!(skewness(&left).unwrap() < 0.0);
        assert!(skewness(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn kurtosis_of_extremes() {
        // Heavy-tailed sample has positive excess kurtosis.
        let heavy = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 100.0];
        assert!(excess_kurtosis(&heavy).unwrap() > 0.0);
        assert!(excess_kurtosis(&[2.0, 2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn autocorrelation_lag0_is_one() {
        let d = [1.0, -2.0, 3.0, 0.5, -1.0];
        assert!((autocorrelation(&d, 0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_alternating() {
        let d = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(autocorrelation(&d, 1).unwrap() < -0.5);
        assert!(autocorrelation(&d, 2).unwrap() > 0.5);
    }

    #[test]
    fn zscore_standardises() {
        let z = zscore(DATA).unwrap();
        assert!((mean(&z).unwrap()).abs() < 1e-12);
        assert!((std_dev(&z).unwrap() - 1.0).abs() < 1e-12);
        assert!(zscore(&[5.0, 5.0]).is_err());
    }

    #[test]
    fn summary_matches_parts() {
        let s = Summary::of(DATA).unwrap();
        assert_eq!(s.n, 8);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.median, 4.5);
        assert!(!s.to_string().is_empty());
        assert!(Summary::of(&[]).is_err());
        assert!(Summary::of(&[f64::NAN]).is_err());
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.0);
    }
}
