//! Watermark-gated k-way merge: the release-hold discipline behind every
//! ordered alarm stream in the workspace, extracted so all three
//! consumers share one implementation:
//!
//! * [`supervisor::FleetSupervisor`](crate::supervisor::FleetSupervisor)
//!   merges its shard threads' event streams,
//! * `aging-serve`'s engine gates its pending heap on the fleet
//!   watermark (a single-source merger), and
//! * `aging-cluster`'s aggregator k-way merges per-shard alarm streams
//!   into one global history.
//!
//! # Model
//!
//! Events are buffered in a min-heap keyed
//! `(time_secs, lane, seq)` — [`MergeKey`] — where `lane` is the machine
//! identity and `seq` an emission sequence that breaks residual ties in
//! source order. Each of the merger's `sources` owns a *watermark*: a
//! promise that it will never again contribute an event at or below that
//! time. An event is *ready* once its time is at or below the
//! [`frontier`](WatermarkMerger::frontier) — the minimum watermark over
//! all sources — because no source can still be holding an earlier event.
//!
//! Watermarks are monotone by construction: [`advance`]
//! (WatermarkMerger::advance) rejects a regressing (late) watermark and
//! keeps the maximum seen, so a source that restarts and briefly
//! re-advertises an older promise (e.g. a recovered shard replaying its
//! journal) cannot un-release history.
//!
//! Popping ready events therefore yields a globally ordered,
//! deterministic sequence no matter how the sources interleave — the
//! property the E14/E16 byte-parity gates are built on.

use std::collections::BinaryHeap;

/// Ordering key of one buffered event: `(time, lane, seq)`, compared in
/// that priority. `lane` is the machine identity (fleet index or wire
/// machine id); `seq` breaks `(time, lane)` ties in emission order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MergeKey {
    /// Event timestamp, seconds.
    pub time_secs: f64,
    /// Machine identity (total order across the fleet).
    pub lane: u64,
    /// Emission sequence within the source, for residual tie-breaking.
    pub seq: u64,
}

impl MergeKey {
    fn cmp_key(&self, other: &MergeKey) -> std::cmp::Ordering {
        self.time_secs
            .total_cmp(&other.time_secs)
            .then_with(|| self.lane.cmp(&other.lane))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

struct Pending<T> {
    key: MergeKey,
    value: T,
}

impl<T> PartialEq for Pending<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key.cmp_key(&other.key) == std::cmp::Ordering::Equal
    }
}
impl<T> Eq for Pending<T> {}
impl<T> PartialOrd for Pending<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Pending<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap and the earliest key must
        // pop first.
        other.key.cmp_key(&self.key)
    }
}

/// A watermark-gated k-way merge buffer over `sources` ordered streams.
///
/// See the [module docs](self) for the model. Typical loop:
///
/// ```
/// use aging_stream::merge::{MergeKey, WatermarkMerger};
///
/// let mut m: WatermarkMerger<&str> = WatermarkMerger::new(2);
/// m.push(MergeKey { time_secs: 10.0, lane: 0, seq: 1 }, "a");
/// m.push(MergeKey { time_secs: 5.0, lane: 1, seq: 1 }, "b");
/// m.advance(0, 10.0);
/// assert!(m.pop_ready().is_none()); // source 1 still at -inf
/// m.advance(1, 7.0);
/// assert_eq!(m.pop_ready(), Some("b")); // 5.0 <= min(10.0, 7.0)
/// assert_eq!(m.pop_ready(), None); // 10.0 > 7.0: source 1 may emit earlier
/// m.finish(1);
/// assert_eq!(m.pop_ready(), Some("a"));
/// ```
pub struct WatermarkMerger<T> {
    heap: BinaryHeap<Pending<T>>,
    watermarks: Vec<f64>,
    frontier: f64,
}

impl<T> std::fmt::Debug for WatermarkMerger<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WatermarkMerger")
            .field("pending", &self.heap.len())
            .field("watermarks", &self.watermarks)
            .field("frontier", &self.frontier)
            .finish()
    }
}

impl<T> WatermarkMerger<T> {
    /// A merger over `sources` streams, every watermark starting at
    /// negative infinity (nothing is ready until every source promises).
    ///
    /// # Panics
    ///
    /// Panics when `sources` is zero — a merge over no streams has no
    /// meaningful frontier.
    pub fn new(sources: usize) -> WatermarkMerger<T> {
        assert!(sources > 0, "WatermarkMerger needs at least one source");
        WatermarkMerger {
            heap: BinaryHeap::new(),
            watermarks: vec![f64::NEG_INFINITY; sources],
            frontier: f64::NEG_INFINITY,
        }
    }

    /// Number of sources this merger was built over.
    pub fn sources(&self) -> usize {
        self.watermarks.len()
    }

    /// Buffers one event. Pushing an event at or below its source's
    /// already-passed watermark is a contract violation by the caller;
    /// the merger still accepts it (it will pop immediately) rather than
    /// panicking mid-stream.
    pub fn push(&mut self, key: MergeKey, value: T) {
        self.heap.push(Pending { key, value });
    }

    /// Raises `source`'s watermark to `watermark_secs`.
    ///
    /// Returns `false` — and leaves the stored watermark untouched — for
    /// a *late* watermark (one at or below the current promise, or NaN):
    /// watermarks are monotone, so a restarted source replaying an older
    /// promise cannot drag the frontier backwards. An equal re-promise is
    /// an idempotent no-op and also returns `false` (nothing advanced).
    ///
    /// # Panics
    ///
    /// Panics when `source` is out of range.
    pub fn advance(&mut self, source: usize, watermark_secs: f64) -> bool {
        if !(watermark_secs > self.watermarks[source]) {
            return false; // late, equal, or NaN: rejected
        }
        self.watermarks[source] = watermark_secs;
        self.frontier = self
            .watermarks
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min);
        true
    }

    /// Marks `source` complete: its watermark jumps to infinity and it
    /// can never hold the frontier again. Returns `false` if it was
    /// already finished.
    pub fn finish(&mut self, source: usize) -> bool {
        self.advance(source, f64::INFINITY)
    }

    /// The release frontier: the minimum watermark over all sources.
    /// Events at or below it are safe to pop in globally sorted order.
    pub fn frontier(&self) -> f64 {
        self.frontier
    }

    /// `source`'s current watermark.
    pub fn watermark(&self, source: usize) -> f64 {
        self.watermarks[source]
    }

    /// Pops the earliest buffered event if it is at or below the
    /// frontier; `None` when nothing is ready yet.
    pub fn pop_ready(&mut self) -> Option<T> {
        if self
            .heap
            .peek()
            .is_some_and(|p| p.key.time_secs <= self.frontier)
        {
            return self.heap.pop().map(|p| p.value);
        }
        None
    }

    /// Pops the earliest buffered event regardless of the frontier — the
    /// final flush once every source has hung up.
    pub fn pop_any(&mut self) -> Option<T> {
        self.heap.pop().map(|p| p.value)
    }

    /// The key of the earliest buffered event, ready or not — lets a
    /// caller interleave its own timestamped actions (e.g. restart
    /// arbitration) with the release stream without popping blind.
    pub fn peek_key(&self) -> Option<MergeKey> {
        self.heap.peek().map(|p| p.key)
    }

    /// Pops the earliest buffered event only if it is ready *and* at or
    /// below `limit_secs` — [`pop_ready`](Self::pop_ready) with an extra
    /// ceiling, for releasing history up to an arbitration point while
    /// holding everything after it.
    pub fn pop_ready_until(&mut self, limit_secs: f64) -> Option<T> {
        if self
            .heap
            .peek()
            .is_some_and(|p| p.key.time_secs <= self.frontier && p.key.time_secs <= limit_secs)
        {
            return self.heap.pop().map(|p| p.value);
        }
        None
    }

    /// Buffered (not yet released) event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Iterates the buffered events in unspecified order (with their
    /// keys) — for snapshot encoding, which sorts by key itself.
    pub fn iter(&self) -> impl Iterator<Item = (&MergeKey, &T)> {
        self.heap.iter().map(|p| (&p.key, &p.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time_secs: f64, lane: u64, seq: u64) -> MergeKey {
        MergeKey {
            time_secs,
            lane,
            seq,
        }
    }

    #[test]
    fn releases_in_time_order_across_sources() {
        let mut m: WatermarkMerger<u32> = WatermarkMerger::new(2);
        m.push(key(30.0, 0, 1), 30);
        m.push(key(10.0, 1, 1), 10);
        m.push(key(20.0, 0, 2), 20);
        assert!(m.pop_ready().is_none(), "nothing promised yet");
        assert!(m.advance(0, 35.0));
        assert!(m.pop_ready().is_none(), "source 1 still at -inf");
        assert!(m.advance(1, 25.0));
        assert_eq!(m.frontier(), 25.0);
        assert_eq!(m.pop_ready(), Some(10));
        assert_eq!(m.pop_ready(), Some(20));
        assert_eq!(m.pop_ready(), None, "30.0 above the 25.0 frontier");
        assert!(m.finish(1));
        assert_eq!(m.frontier(), 35.0);
        assert_eq!(m.pop_ready(), Some(30));
        assert!(m.is_empty());
    }

    #[test]
    fn ties_break_by_lane_then_seq() {
        let mut m: WatermarkMerger<&str> = WatermarkMerger::new(1);
        // Same timestamp everywhere: lane decides, then emission seq.
        m.push(key(5.0, 2, 1), "lane2");
        m.push(key(5.0, 1, 9), "lane1-late");
        m.push(key(5.0, 1, 3), "lane1-early");
        m.finish(0);
        assert_eq!(m.pop_ready(), Some("lane1-early"));
        assert_eq!(m.pop_ready(), Some("lane1-late"));
        assert_eq!(m.pop_ready(), Some("lane2"));
    }

    #[test]
    fn late_watermarks_are_rejected() {
        let mut m: WatermarkMerger<u32> = WatermarkMerger::new(2);
        assert!(m.advance(0, 50.0));
        assert!(m.advance(1, 40.0));
        assert_eq!(m.frontier(), 40.0);
        // A restarted source re-advertising an older promise must not
        // drag the frontier back.
        assert!(!m.advance(1, 10.0), "regression rejected");
        assert_eq!(m.watermark(1), 40.0);
        assert_eq!(m.frontier(), 40.0);
        assert!(!m.advance(1, 40.0), "equal re-promise is a no-op");
        assert!(!m.advance(1, f64::NAN), "NaN rejected");
        assert_eq!(m.frontier(), 40.0);
        // Events above the un-regressed frontier stay held.
        m.push(key(45.0, 0, 1), 45);
        assert!(m.pop_ready().is_none());
        assert!(m.advance(1, 60.0), "a genuine advance still works");
        assert_eq!(m.pop_ready(), Some(45));
    }

    #[test]
    fn finished_sources_never_hold_the_frontier() {
        let mut m: WatermarkMerger<u32> = WatermarkMerger::new(3);
        assert!(m.finish(0));
        assert!(!m.finish(0), "double-finish is a no-op");
        assert!(m.finish(1));
        m.push(key(100.0, 7, 1), 1);
        assert!(m.pop_ready().is_none(), "source 2 still open");
        assert!(m.advance(2, 99.0));
        assert!(m.pop_ready().is_none());
        assert!(m.finish(2));
        assert_eq!(m.frontier(), f64::INFINITY);
        assert_eq!(m.pop_ready(), Some(1));
    }

    #[test]
    fn pop_ready_until_holds_events_past_the_ceiling() {
        let mut m: WatermarkMerger<u32> = WatermarkMerger::new(1);
        m.push(key(10.0, 0, 1), 10);
        m.push(key(20.0, 0, 2), 20);
        m.push(key(30.0, 0, 3), 30);
        assert_eq!(m.peek_key(), Some(key(10.0, 0, 1)));
        assert!(
            m.pop_ready_until(f64::INFINITY).is_none(),
            "not ready: watermark still at -inf"
        );
        assert!(m.advance(0, 25.0));
        assert_eq!(m.pop_ready_until(15.0), Some(10));
        assert_eq!(m.pop_ready_until(15.0), None, "20.0 above the ceiling");
        assert_eq!(m.pop_ready_until(20.0), Some(20));
        assert_eq!(
            m.pop_ready_until(f64::INFINITY),
            None,
            "30.0 above the 25.0 frontier even with no ceiling"
        );
        assert_eq!(m.peek_key(), Some(key(30.0, 0, 3)));
    }

    #[test]
    fn pop_any_drains_in_key_order() {
        let mut m: WatermarkMerger<u32> = WatermarkMerger::new(2);
        m.push(key(3.0, 0, 1), 3);
        m.push(key(1.0, 1, 1), 1);
        m.push(key(2.0, 0, 2), 2);
        assert_eq!(m.len(), 3);
        assert_eq!(m.pop_any(), Some(1));
        assert_eq!(m.pop_any(), Some(2));
        assert_eq!(m.pop_any(), Some(3));
        assert_eq!(m.pop_any(), None);
    }
}
