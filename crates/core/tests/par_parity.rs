//! Parallel/sequential parity for the evaluation layer: `compare_in` and
//! `sweep_detector_in` must aggregate identically for any pool size. The
//! pool merges per-report outcomes in fleet order, so every count and every
//! lead-time statistic is exactly equal — not approximately.

use aging_core::baseline::ResourceDirection;
use aging_core::detector::DetectorConfig;
use aging_core::eval::{compare_in, PredictorSpec};
use aging_core::roc::{sweep_detector_in, SweepParameter};
use aging_memsim::{simulate, Counter, Scenario, SimReport};
use aging_par::Pool;

const POOL_SIZES: [usize; 3] = [1, 2, 7];

fn fleet(n: u64) -> Vec<SimReport> {
    let mut reports: Vec<SimReport> = (0..n)
        .map(|s| {
            simulate(
                &Scenario::tiny_aging(s, 256.0 + 64.0 * s as f64),
                4.0 * 3600.0,
            )
            .unwrap()
        })
        .collect();
    // One healthy control so false-alarm counting is exercised too.
    reports.push(simulate(&Scenario::tiny_aging(99, 0.0), 4.0 * 3600.0).unwrap());
    reports
}

fn fast_detector() -> DetectorConfig {
    DetectorConfig::builder()
        .holder_radius(16)
        .holder_max_lag(4)
        .dimension_window(64)
        .dimension_stride(16)
        .baseline_windows(6)
        .build()
        .unwrap()
}

#[test]
fn compare_parity_across_pool_sizes() {
    let reports = fleet(3);
    let specs = [
        PredictorSpec::HolderDimension(fast_detector()),
        PredictorSpec::Threshold {
            level: 8.0 * 1024.0 * 1024.0,
            direction: ResourceDirection::Depleting,
        },
    ];
    for spec in &specs {
        let reference =
            compare_in(spec, &reports, Counter::AvailableBytes, &Pool::sequential()).unwrap();
        for threads in POOL_SIZES {
            let par =
                compare_in(spec, &reports, Counter::AvailableBytes, &Pool::new(threads)).unwrap();
            assert_eq!(par, reference, "{}: {threads} threads", spec.name());
        }
    }
}

#[test]
fn sweep_parity_across_pool_sizes() {
    let reports = fleet(2);
    let base = fast_detector();
    let values = [0.2, 0.4, 0.8];
    let reference = sweep_detector_in(
        &base,
        SweepParameter::HolderDrop,
        &values,
        &reports,
        Counter::AvailableBytes,
        &Pool::sequential(),
    )
    .unwrap();
    for threads in POOL_SIZES {
        let par = sweep_detector_in(
            &base,
            SweepParameter::HolderDrop,
            &values,
            &reports,
            Counter::AvailableBytes,
            &Pool::new(threads),
        )
        .unwrap();
        assert_eq!(par, reference, "{threads} threads");
    }
}

#[test]
fn compare_error_is_deterministic() {
    // An empty fleet must fail identically (not nondeterministically)
    // regardless of parallelism: compare aggregates zero outcomes.
    let reports: Vec<SimReport> = Vec::new();
    for threads in POOL_SIZES {
        let row = compare_in(
            &PredictorSpec::HolderDimension(fast_detector()),
            &reports,
            Counter::AvailableBytes,
            &Pool::new(threads),
        )
        .unwrap();
        assert_eq!(row.crashes, 0);
        assert_eq!(row.healthy_segments, 0);
    }
}
