//! Property-based tests for wavelet transform invariants.

use aging_wavelet::variance::WaveletVariance;
use aging_wavelet::{dwt, modwt, Wavelet, WaveletLeaders};
use proptest::prelude::*;

fn signal_strategy(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, len..=len)
}

fn any_wavelet() -> impl Strategy<Value = Wavelet> {
    prop::sample::select(Wavelet::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dwt_perfect_reconstruction(signal in signal_strategy(64), w in any_wavelet()) {
        let dec = dwt(&signal, w, 3).unwrap();
        let back = dec.reconstruct().unwrap();
        let scale = signal.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in signal.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn dwt_parseval(signal in signal_strategy(64), w in any_wavelet()) {
        let e0: f64 = signal.iter().map(|v| v * v).sum();
        let dec = dwt(&signal, w, 3).unwrap();
        prop_assert!((dec.energy() - e0).abs() < 1e-8 * e0.max(1.0));
    }

    #[test]
    fn dwt_linearity(a in signal_strategy(32), b in signal_strategy(32), w in any_wavelet()) {
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let da = dwt(&a, w, 2).unwrap();
        let db = dwt(&b, w, 2).unwrap();
        let ds = dwt(&sum, w, 2).unwrap();
        let scale = sum.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for level in 1..=2 {
            for ((x, y), z) in da.detail(level).iter().zip(db.detail(level)).zip(ds.detail(level)) {
                prop_assert!((x + y - z).abs() < 1e-9 * scale);
            }
        }
    }

    #[test]
    fn modwt_perfect_reconstruction(signal in prop::collection::vec(-100.0f64..100.0, 8..120), w in any_wavelet()) {
        // Keep the filter span valid for this length.
        let span_ok = |lv: usize| ((1usize << lv) - 1) * (w.filter_len() - 1) < signal.len();
        let levels = (1..=3).rev().find(|&lv| span_ok(lv));
        prop_assume!(levels.is_some());
        let dec = modwt(&signal, w, levels.unwrap()).unwrap();
        let back = dec.reconstruct();
        let scale = signal.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (a, b) in signal.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8 * scale);
        }
    }

    #[test]
    fn modwt_energy_preserved(signal in signal_strategy(80), w in any_wavelet()) {
        let e0: f64 = signal.iter().map(|v| v * v).sum();
        let dec = modwt(&signal, w, 2).unwrap();
        prop_assert!((dec.energy() - e0).abs() < 1e-8 * e0.max(1.0));
    }

    #[test]
    fn modwt_shift_equivariance(signal in signal_strategy(64), shift in 0usize..64) {
        let mut shifted = signal.clone();
        shifted.rotate_right(shift);
        let a = modwt(&signal, Wavelet::Daubechies4, 2).unwrap();
        let b = modwt(&shifted, Wavelet::Daubechies4, 2).unwrap();
        let mut expect = a.detail(1).to_vec();
        expect.rotate_right(shift);
        let scale = signal.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for (x, y) in expect.iter().zip(b.detail(1)) {
            prop_assert!((x - y).abs() < 1e-9 * scale);
        }
    }

    #[test]
    fn leaders_nonnegative_and_monotone(signal in signal_strategy(64), w in any_wavelet()) {
        let lead = WaveletLeaders::compute(&signal, w, 4).unwrap();
        for t in 0..64 {
            let mut prev = -1.0;
            for j in 1..=lead.levels() {
                let l = lead.at_time(j, t);
                prop_assert!(l >= 0.0);
                prop_assert!(l >= prev - 1e-12, "leader shrank at t={t} j={j}");
                prev = l;
            }
        }
    }

    #[test]
    fn wavelet_variance_scale_equivariance(signal in signal_strategy(256), k in 0.1f64..50.0) {
        // Scaling the signal by k scales every per-scale variance by k².
        let scaled: Vec<f64> = signal.iter().map(|v| k * v).collect();
        let a = WaveletVariance::compute(&signal, Wavelet::Daubechies4, 4).unwrap();
        let b = WaveletVariance::compute(&scaled, Wavelet::Daubechies4, 4).unwrap();
        for (va, vb) in a.variances.iter().zip(&b.variances) {
            prop_assert!((k * k * va - vb).abs() < 1e-6 * (1.0 + vb.abs()));
        }
    }

    #[test]
    fn wavelet_variance_positive_and_counts_consistent(signal in signal_strategy(200)) {
        let wv = WaveletVariance::compute(&signal, Wavelet::Haar, 3).unwrap();
        prop_assert_eq!(wv.variances.len(), 3);
        for (v, &c) in wv.variances.iter().zip(&wv.counts) {
            prop_assert!(*v >= 0.0);
            prop_assert!(c > 0);
        }
        prop_assert!(wv.total() >= 0.0);
    }

    #[test]
    fn denoise_output_length_matches_prefix(signal in signal_strategy(300)) {
        // 300 → prefix 296 for 3 levels.
        match aging_wavelet::denoise::denoise(
            &signal,
            Wavelet::Haar,
            3,
            aging_wavelet::denoise::Shrinkage::Soft,
        ) {
            Ok(out) => {
                prop_assert_eq!(out.signal.len(), 296);
                prop_assert!(out.noise_sigma > 0.0);
                prop_assert!((0.0..=1.0).contains(&out.kill_fraction));
            }
            Err(_) => {
                // Constant-ish finest band: legitimate failure.
            }
        }
    }

    #[test]
    fn leaders_scale_equivariant(signal in signal_strategy(64), k in 0.1f64..50.0) {
        // Scaling the signal by k scales every leader by |k|.
        let scaled: Vec<f64> = signal.iter().map(|v| k * v).collect();
        let a = WaveletLeaders::compute(&signal, Wavelet::Haar, 3).unwrap();
        let b = WaveletLeaders::compute(&scaled, Wavelet::Haar, 3).unwrap();
        for j in 1..=3 {
            for (x, y) in a.band(j).iter().zip(b.band(j)) {
                prop_assert!((k * x - y).abs() < 1e-9 * (1.0 + k * x.abs()));
            }
        }
    }
}
