//! Change-point detection: two-sided CUSUM on a studentised stream.
//!
//! The detector crate's jump logic is domain-specific; this module offers
//! the generic building block — Page's cumulative-sum test against a
//! reference mean — for validating detected regime changes and for use as
//! an additional baseline.

// `!(x > 0)`-style comparisons below are deliberate: unlike `x <= 0`,
// they also reject NaN, which is exactly what parameter validation wants.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
use crate::error::{Error, Result};
use crate::stats;

/// Configuration of the CUSUM detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CusumConfig {
    /// Samples used to estimate the in-control mean and scale.
    pub reference_len: usize,
    /// Slack per sample, in standard deviations (`k` in CUSUM terms; 0.5
    /// targets ≈1σ shifts).
    pub slack: f64,
    /// Decision threshold, in standard deviations (`h`; typically 4–6).
    pub threshold: f64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        CusumConfig {
            reference_len: 100,
            slack: 0.5,
            threshold: 5.0,
        }
    }
}

impl CusumConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if self.reference_len < 8 {
            return Err(Error::invalid("reference_len", "must be at least 8"));
        }
        if !(self.slack >= 0.0 && self.slack.is_finite()) {
            return Err(Error::invalid("slack", "must be finite and >= 0"));
        }
        if !(self.threshold > 0.0) {
            return Err(Error::invalid("threshold", "must be positive"));
        }
        Ok(())
    }
}

/// Direction of a detected shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShiftDirection {
    /// Mean shifted upward.
    Up,
    /// Mean shifted downward.
    Down,
}

/// A detected change point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangePoint {
    /// Sample index at which the decision threshold was crossed.
    pub index: usize,
    /// Direction of the shift.
    pub direction: ShiftDirection,
    /// CUSUM statistic value at detection (in σ units).
    pub score: f64,
}

/// Streaming two-sided CUSUM detector.
#[derive(Debug, Clone)]
pub struct Cusum {
    config: CusumConfig,
    reference: Vec<f64>,
    mean: f64,
    sd: f64,
    ready: bool,
    pos: f64,
    neg: f64,
    count: usize,
}

impl Cusum {
    /// Creates a detector.
    ///
    /// # Errors
    ///
    /// Propagates [`CusumConfig::validate`] failures.
    pub fn new(config: CusumConfig) -> Result<Self> {
        config.validate()?;
        Ok(Cusum {
            config,
            reference: Vec::new(),
            mean: 0.0,
            sd: 1.0,
            ready: false,
            pos: 0.0,
            neg: 0.0,
            count: 0,
        })
    }

    /// Whether the reference window is complete.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Feeds one sample; returns a change point when the threshold is
    /// crossed. After a detection the detector re-learns its reference
    /// from subsequent samples, so successive shifts (including a return
    /// to the original level) are each reported once.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NonFinite`] for NaN samples and
    /// [`Error::Numerical`] if the reference window is constant.
    pub fn push(&mut self, value: f64) -> Result<Option<ChangePoint>> {
        if !value.is_finite() {
            return Err(Error::NonFinite { index: self.count });
        }
        let index = self.count;
        self.count += 1;

        if !self.ready {
            self.reference.push(value);
            if self.reference.len() >= self.config.reference_len {
                self.mean = stats::mean(&self.reference)?;
                let sd = stats::std_dev(&self.reference)?;
                if sd <= f64::EPSILON {
                    return Err(Error::Numerical(
                        "constant reference window in CUSUM".into(),
                    ));
                }
                self.sd = sd;
                self.ready = true;
            }
            return Ok(None);
        }

        let z = (value - self.mean) / self.sd;
        self.pos = (self.pos + z - self.config.slack).max(0.0);
        self.neg = (self.neg - z - self.config.slack).max(0.0);
        if self.pos > self.config.threshold {
            let cp = ChangePoint {
                index,
                direction: ShiftDirection::Up,
                score: self.pos,
            };
            self.relearn();
            return Ok(Some(cp));
        }
        if self.neg > self.config.threshold {
            let cp = ChangePoint {
                index,
                direction: ShiftDirection::Down,
                score: self.neg,
            };
            self.relearn();
            return Ok(Some(cp));
        }
        Ok(None)
    }

    /// Drops the reference so it is re-estimated from upcoming samples
    /// (used after each detection).
    fn relearn(&mut self) {
        self.reference.clear();
        self.ready = false;
        self.pos = 0.0;
        self.neg = 0.0;
    }

    /// Resets all state (reference is re-learned).
    pub fn reset(&mut self) {
        self.reference.clear();
        self.ready = false;
        self.pos = 0.0;
        self.neg = 0.0;
        self.count = 0;
    }
}

/// Offline convenience: all change points of `data`.
///
/// # Errors
///
/// Propagates [`Cusum`] failures.
pub fn change_points(data: &[f64], config: CusumConfig) -> Result<Vec<ChangePoint>> {
    let mut detector = Cusum::new(config)?;
    let mut out = Vec::new();
    for &v in data {
        if let Some(cp) = detector.push(v)? {
            out.push(cp);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiggle(i: usize) -> f64 {
        ((i * 37 + 11) % 13) as f64 / 13.0 - 0.5
    }

    #[test]
    fn detects_upward_step() {
        let mut data: Vec<f64> = (0..200).map(|i| 10.0 + wiggle(i)).collect();
        data.extend((200..300).map(|i| 12.0 + wiggle(i)));
        let cps = change_points(&data, CusumConfig::default()).unwrap();
        assert!(!cps.is_empty());
        let first = cps[0];
        assert_eq!(first.direction, ShiftDirection::Up);
        assert!(
            (200..225).contains(&first.index),
            "detected at {}",
            first.index
        );
    }

    #[test]
    fn detects_downward_step() {
        let mut data: Vec<f64> = (0..200).map(|i| 5.0 + wiggle(i)).collect();
        data.extend((200..300).map(|i| 3.5 + wiggle(i)));
        let cps = change_points(&data, CusumConfig::default()).unwrap();
        assert_eq!(cps[0].direction, ShiftDirection::Down);
    }

    #[test]
    fn quiet_on_stationary_data() {
        let data: Vec<f64> = (0..2000).map(|i| 1.0 + wiggle(i)).collect();
        let cps = change_points(&data, CusumConfig::default()).unwrap();
        assert!(cps.is_empty(), "{cps:?}");
    }

    #[test]
    fn detects_slow_drift_eventually() {
        let data: Vec<f64> = (0..600)
            .map(|i| {
                wiggle(i)
                    + if i > 200 {
                        (i - 200) as f64 * 0.01
                    } else {
                        0.0
                    }
            })
            .collect();
        let cps = change_points(&data, CusumConfig::default()).unwrap();
        assert!(!cps.is_empty());
        assert!(cps[0].index > 200 && cps[0].index < 350, "{}", cps[0].index);
    }

    #[test]
    fn multiple_shifts_all_reported() {
        let mut data: Vec<f64> = (0..150).map(wiggle).collect();
        data.extend((0..150).map(|i| 3.0 + wiggle(i)));
        data.extend((0..150).map(wiggle));
        let cps = change_points(&data, CusumConfig::default()).unwrap();
        assert!(cps.len() >= 2, "{cps:?}");
        assert_eq!(cps[0].direction, ShiftDirection::Up);
        assert!(cps.iter().any(|c| c.direction == ShiftDirection::Down));
    }

    #[test]
    fn constant_reference_is_error() {
        let data = vec![1.0; 150];
        assert!(change_points(&data, CusumConfig::default()).is_err());
    }

    #[test]
    fn reset_and_guards() {
        let mut c = Cusum::new(CusumConfig::default()).unwrap();
        assert!(!c.is_ready());
        for i in 0..120 {
            c.push(wiggle(i)).unwrap();
        }
        assert!(c.is_ready());
        c.reset();
        assert!(!c.is_ready());
        assert!(c.push(f64::NAN).is_err());
        assert!(Cusum::new(CusumConfig {
            reference_len: 4,
            ..CusumConfig::default()
        })
        .is_err());
        assert!(Cusum::new(CusumConfig {
            threshold: 0.0,
            ..CusumConfig::default()
        })
        .is_err());
    }
}
