//! Wavelet shrinkage denoising (Donoho & Johnstone).
//!
//! Monitor logs are contaminated by sampling jitter; shrinkage denoising
//! separates the (sparse-in-wavelet-domain) structure from broadband
//! noise. The noise level is estimated robustly from the finest detail
//! band (`σ̂ = MAD / 0.6745`) and coefficients are shrunk with the
//! universal threshold `σ̂·√(2 ln n)`.

use crate::dwt::{dwt, dyadic_prefix};
use crate::filters::Wavelet;
use aging_timeseries::{stats, Error, Result};

/// Shrinkage rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Shrinkage {
    /// Kill coefficients below the threshold, keep the rest (minimax-ish,
    /// keeps amplitude, noisier result).
    Hard,
    /// Shrink every coefficient toward zero by the threshold (smoother
    /// result, slight amplitude loss).
    #[default]
    Soft,
}

/// Result of a denoising pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Denoised {
    /// The denoised signal (same length as the analysed prefix).
    pub signal: Vec<f64>,
    /// Estimated noise standard deviation.
    pub noise_sigma: f64,
    /// The threshold applied.
    pub threshold: f64,
    /// Fraction of detail coefficients zeroed/shrunk to zero.
    pub kill_fraction: f64,
}

/// Denoises `data` with `levels` of DWT shrinkage. The signal is truncated
/// to the largest dyadic-compatible prefix (callers needing full length
/// can re-append the tail).
///
/// # Errors
///
/// Propagates DWT failures and returns [`Error::Numerical`] when the noise
/// level cannot be estimated (constant finest band).
///
/// # Examples
///
/// ```
/// use aging_wavelet::denoise::{denoise, Shrinkage};
/// use aging_wavelet::Wavelet;
///
/// # fn main() -> Result<(), aging_timeseries::Error> {
/// let clean: Vec<f64> = (0..256).map(|i| (i as f64 * 0.05).sin() * 10.0).collect();
/// let noisy: Vec<f64> = clean.iter().enumerate()
///     .map(|(i, &v)| v + if i % 2 == 0 { 0.4 } else { -0.4 })
///     .collect();
/// let out = denoise(&noisy, Wavelet::Daubechies8, 4, Shrinkage::Soft)?;
/// assert_eq!(out.signal.len(), 256);
/// # Ok(())
/// # }
/// ```
pub fn denoise(data: &[f64], wavelet: Wavelet, levels: usize, rule: Shrinkage) -> Result<Denoised> {
    let prefix = dyadic_prefix(data, levels)?;
    let mut dec = dwt(prefix, wavelet, levels)?;

    // Robust noise estimate from the finest band.
    let finest: Vec<f64> = dec.detail(1).to_vec();
    let sigma = stats::mad(&finest)?;
    if sigma <= 0.0 {
        return Err(Error::Numerical(
            "cannot estimate noise level from constant finest band".into(),
        ));
    }
    let n = prefix.len() as f64;
    let threshold = sigma * (2.0 * n.ln()).sqrt();

    let mut killed = 0usize;
    let mut total = 0usize;
    for level in 1..=levels {
        // Work on a copy then write back through the public API surface.
        let band: Vec<f64> = dec.detail(level).to_vec();
        let shrunk: Vec<f64> = band
            .iter()
            .map(|&c| {
                total += 1;
                let out = match rule {
                    Shrinkage::Hard => {
                        if c.abs() <= threshold {
                            0.0
                        } else {
                            c
                        }
                    }
                    Shrinkage::Soft => {
                        if c.abs() <= threshold {
                            0.0
                        } else {
                            c.signum() * (c.abs() - threshold)
                        }
                    }
                };
                if out == 0.0 {
                    killed += 1;
                }
                out
            })
            .collect();
        dec.set_detail(level, shrunk)?;
    }
    let signal = dec.reconstruct()?;
    Ok(Denoised {
        signal,
        noise_sigma: sigma,
        threshold,
        kill_fraction: killed as f64 / total.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deterministic_noise(n: usize, amp: f64, seed: u64) -> Vec<f64> {
        let mut state = seed.max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                amp * ((state as f64 / u64::MAX as f64) - 0.5) * 2.0
            })
            .collect()
    }

    fn mse(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64
    }

    #[test]
    fn denoising_reduces_error_against_clean_signal() {
        let n = 1024;
        let clean: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).sin() * 5.0).collect();
        let noise = deterministic_noise(n, 0.8, 1);
        let noisy: Vec<f64> = clean.iter().zip(&noise).map(|(c, e)| c + e).collect();
        for rule in [Shrinkage::Soft, Shrinkage::Hard] {
            let out = denoise(&noisy, Wavelet::Daubechies8, 5, rule).unwrap();
            let before = mse(&noisy, &clean);
            let after = mse(&out.signal, &clean);
            assert!(
                after < 0.5 * before,
                "{rule:?}: before {before} after {after}"
            );
        }
    }

    #[test]
    fn clean_smooth_signal_mostly_survives() {
        let n = 512;
        let clean: Vec<f64> = (0..n).map(|i| (i as f64 * 0.03).cos() * 3.0).collect();
        let noisy: Vec<f64> = clean
            .iter()
            .zip(deterministic_noise(n, 0.2, 2).iter())
            .map(|(c, e)| c + e)
            .collect();
        let out = denoise(&noisy, Wavelet::Daubechies6, 4, Shrinkage::Soft).unwrap();
        // Error vs clean smaller than the injected noise power.
        assert!(mse(&out.signal, &clean) < 0.04);
        // Most detail coefficients are noise and get killed.
        assert!(out.kill_fraction > 0.8, "kill {}", out.kill_fraction);
    }

    #[test]
    fn noise_sigma_estimate_tracks_injected_noise() {
        let n = 2048;
        // Pure noise: uniform ±amp has sd = amp/√3.
        let amp = 0.9;
        let noise = deterministic_noise(n, amp, 3);
        let out = denoise(&noise, Wavelet::Haar, 4, Shrinkage::Soft).unwrap();
        let true_sd = amp / 3.0_f64.sqrt();
        assert!(
            (out.noise_sigma - true_sd).abs() < 0.3 * true_sd,
            "sigma {} vs {}",
            out.noise_sigma,
            true_sd
        );
    }

    #[test]
    fn constant_signal_is_error() {
        let x = vec![1.0; 256];
        assert!(denoise(&x, Wavelet::Haar, 3, Shrinkage::Soft).is_err());
    }

    #[test]
    fn truncates_to_dyadic_prefix() {
        let n = 1000; // prefix for 3 levels: 1000 - 1000 % 8 = 1000
        let clean: Vec<f64> = (0..n).map(|i| (i as f64 * 0.02).sin()).collect();
        let noisy: Vec<f64> = clean
            .iter()
            .zip(deterministic_noise(n, 0.3, 4).iter())
            .map(|(c, e)| c + e)
            .collect();
        let out = denoise(&noisy, Wavelet::Haar, 3, Shrinkage::Soft).unwrap();
        assert_eq!(out.signal.len(), 1000);
        let out5 = denoise(&noisy[..999], Wavelet::Haar, 5, Shrinkage::Soft).unwrap();
        assert_eq!(out5.signal.len(), 992);
    }
}
