//! Fleet monitoring over the wire: the same mixed fleet as the
//! `chaos_fleet` example, but instead of stepping the machines inside
//! the supervisor process, an in-process `aging-serve` TCP server is
//! bound on loopback and the load-generator client feeds all machines
//! through real sockets — batched binary frames, credit-window
//! backpressure, acks, and a polling connection watching the alarm
//! history appear live. The printed alarms carry crash lead times, and
//! the pipeline behind the socket is the identical gate → detector →
//! fusion code the offline supervisor runs (E14 proves byte parity).
//!
//! Run with: `cargo run --release --example serve_fleet`

use holder_aging::prelude::*;
use holder_aging::serve::protocol::ServeEvent;
use holder_aging::stream::pipeline::AlarmKind as PipelineAlarmKind;

fn main() -> Result<()> {
    // Aggressively-leaking tiny boxes (they crash inside the horizon)
    // plus healthy controls that must stay silent.
    let mut fleet = Vec::new();
    for i in 0..6u64 {
        fleet.push(Scenario::tiny_aging(1000 + i, 192.0 + 32.0 * i as f64));
    }
    for i in 0..4u64 {
        fleet.push(Scenario::tiny_aging(2000 + i, 0.0));
    }

    let dt = 5.0;
    let horizon = 8.0 * 3600.0;
    let detectors = vec![CounterDetector {
        counter: Counter::AvailableBytes,
        spec: DetectorSpec::Trend(TrendPredictorConfig {
            window: 120,
            refit_every: 8,
            alarm_horizon_secs: 900.0,
            ..TrendPredictorConfig::depleting(dt)
        }),
    }];

    let mut config = ServeConfig::new(detectors);
    config.gate.nominal_period_secs = dt;
    // The whole fleet connects up front, so hold alarm releases until
    // everyone has checked in — this pins the global history order.
    config.expected_machines = Some(fleet.len() as u64);

    let server = Server::bind("127.0.0.1:0", config)?;
    println!(
        "serving on {} | fleet: {} machines over 4 connections\n",
        server.local_addr(),
        fleet.len()
    );

    let loadgen = LoadgenConfig {
        connections: 4,
        batch_records: 64,
        rate_records_per_sec: 0.0,
        poll_alarms_ms: 25,
        counters: vec![Counter::AvailableBytes],
        // Ship v2 columnar frames: feeds are simulated up front and sent
        // as delta-encoded per-counter columns.
        mode: BatchMode::Columnar,
    };
    let report = drive(server.local_addr(), &fleet, horizon, &loadgen)?;
    let outcome = server.shutdown();

    println!(
        "fed {} records in {} batches at {:.0} records/s ({} accepted, {} busy frames)",
        report.records_sent,
        report.batches,
        report.records_per_sec(),
        report.records_accepted,
        report.busy_frames,
    );
    let ms =
        |us: Option<u64>| us.map_or("-".to_string(), |v| format!("{:.2} ms", v as f64 / 1000.0));
    println!(
        "ack round-trip: p50 {} p99 {} | alarm visibility: p50 {} p99 {}\n",
        ms(report.ack_rtt.quantile_upper_bound_us(0.50)),
        ms(report.ack_rtt.quantile_upper_bound_us(0.99)),
        ms(report.alarm_visibility.quantile_upper_bound_us(0.50)),
        ms(report.alarm_visibility.quantile_upper_bound_us(0.99)),
    );

    // First fused machine-alarm per machine, with crash lead time.
    println!("machine  crash[h]  alarm[h]  lead[min]  outcome");
    for &(machine_id, crash) in &report.crash_times {
        let alarm: Option<&ServeEvent> = outcome.events.iter().find(|e| {
            e.machine_id == machine_id && matches!(e.kind, PipelineAlarmKind::MachineAlarm { .. })
        });
        let fmt_h = |t: Option<f64>| t.map_or("-".to_string(), |v| format!("{:.2}", v / 3600.0));
        let (lead, verdict) = match (crash, alarm) {
            (Some(c), Some(a)) => (
                format!("{:.1}", (c - a.time_secs) / 60.0),
                "warned before crash",
            ),
            (Some(_), None) => ("-".to_string(), "MISSED crash"),
            (None, Some(_)) => ("-".to_string(), "false alarm on survivor"),
            (None, None) => ("-".to_string(), "survived, silent"),
        };
        println!(
            "m{machine_id:03}     {:>8}  {:>8}  {:>9}  {verdict}",
            fmt_h(crash),
            fmt_h(alarm.map(|a| a.time_secs)),
            lead,
        );
    }

    println!(
        "\nwire: {} connections, {} frames, {} records, {} acks, {} queries, \
         {} quarantined, {} panics",
        outcome.wire.connections,
        outcome.wire.frames,
        outcome.wire.records,
        outcome.wire.acks_sent,
        outcome.wire.queries,
        outcome.wire.quarantined,
        outcome.wire.session_panics,
    );
    println!("final fleet status: {}", outcome.status.status_line());
    Ok(())
}
