//! # aging-memsim
//!
//! Discrete-time operating-system memory-subsystem simulator — the testbed
//! substitute for the `holder-aging` workspace (reproduction of *"Software
//! Aging and Multifractality of Memory Resources"*, DSN 2003).
//!
//! The paper instrumented Windows NT 4.0 / 2000 machines under synthetic
//! stress load and recorded memory counters until the systems crashed.
//! That hardware and its crash logs are unavailable, so this crate rebuilds
//! the pipeline's *data source*: a seeded, deterministic simulator whose
//! sampled counters have the same qualitative structure — bursty,
//! heavy-tailed allocation traffic superimposed on slow exhaustion trends,
//! terminated by out-of-memory or thrashing crashes.
//!
//! - [`MachineConfig`] — RAM/swap/OS parameters (NT4/W2K-era presets),
//! - [`WorkloadConfig`] — heavy-tailed, bursty allocation workloads,
//! - [`FaultPlan`] — leak / fragmentation / handle-leak aging injection,
//! - [`Machine`] / [`simulate`] / [`simulate_fleet`] — execution,
//! - [`MonitorLog`] — sampled counter series + crash events.
//!
//! # Examples
//!
//! ```
//! use aging_memsim::{simulate, Scenario};
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! let scenario = Scenario::tiny_aging(42, 512.0); // 512 MiB/h leak
//! let report = simulate(&scenario, 4.0 * 3600.0)?;
//! let crash = report.first_crash().expect("aggressive leak crashes");
//! println!("crashed at {} ({})", crash.time, crash.cause);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod dist;
pub mod faults;
pub mod machine;
pub mod memory;
pub mod monitor;
pub mod procsim;
pub mod units;
pub mod workload;

pub use config::MachineConfig;
pub use faults::{FaultPlan, FragmentationSpec, HandleLeakSpec, LeakMode, LeakSpec, ReclaimSpec};
pub use machine::{
    simulate, simulate_fleet, simulate_fleet_in, simulate_with_reboots, Machine, Scenario,
    SimReport,
};
pub use memory::{CrashCause, PagingModel};
pub use monitor::{Counter, CrashEvent, MonitorLog, Sample};
pub use procsim::{MultiMachine, MultiScenario, ProcessSpec};
pub use units::{Bytes, SimTime};
pub use workload::WorkloadConfig;
