//! Stochastic workload generation.
//!
//! The target paper stressed its testbed machines with synthetic load until
//! they crashed. This module reproduces the *statistical character* of such
//! load: request-driven allocation with log-normal sizes, a heavy-tailed
//! lifetime mixture (mostly short-lived buffers, some long-lived session
//! state), and bursty arrival intensity driven by heavy-tailed ON/OFF
//! sessions — the textbook recipe for self-similar, multifractal resource
//! usage.

use crate::dist;
use crate::units::Bytes;
use aging_timeseries::{Error, Result};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Lifetime class of an allocation cohort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifetimeClass {
    /// Request-scoped buffers (seconds).
    Short,
    /// Session state (minutes).
    Medium,
    /// Caches / long sessions (heavy-tailed, possibly hours).
    Long,
}

/// Workload description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Base request arrival rate (requests/second) before burst modulation.
    pub base_rate: f64,
    /// Log-space standard deviation of the burst modulation factor (0
    /// disables burstiness).
    pub burst_sigma: f64,
    /// Mean duration of a burst regime in seconds (how long one modulation
    /// factor persists); heavy-tailed around this mean.
    pub burst_mean_secs: f64,
    /// Log-space mean of the per-request allocation size (bytes).
    pub alloc_mu_log: f64,
    /// Log-space standard deviation of the per-request allocation size.
    pub alloc_sigma_log: f64,
    /// Probability mix of lifetime classes `(short, medium, long)`;
    /// must sum to 1.
    pub lifetime_mix: (f64, f64, f64),
    /// Mean short lifetime (seconds, exponential).
    pub short_mean_secs: f64,
    /// Mean medium lifetime (seconds, exponential).
    pub medium_mean_secs: f64,
    /// Pareto scale of the long lifetime (seconds).
    pub long_xm_secs: f64,
    /// Pareto shape of the long lifetime (≤ 2 ⇒ infinite variance).
    pub long_alpha: f64,
    /// Size of a periodic batch job's transient allocation (0 disables).
    pub batch_bytes: Bytes,
    /// Period of the batch job in seconds.
    pub batch_period_secs: f64,
    /// Batch job working time in seconds (allocation held this long).
    pub batch_hold_secs: f64,
    /// Diurnal modulation amplitude in `[0, 1)`: the arrival rate is
    /// multiplied by `1 + A·sin(2π t / period)` (0 disables; realistic
    /// server load follows day/night cycles).
    pub diurnal_amplitude: f64,
    /// Diurnal period in seconds (default one day).
    pub diurnal_period_secs: f64,
}

impl WorkloadConfig {
    /// A web-server-like mix sized for the 256 MiB
    /// [`crate::MachineConfig::workstation_nt4`] preset: ~90–130 MiB of
    /// steady live heap with tens-of-MiB swings.
    pub fn web_server() -> Self {
        WorkloadConfig {
            base_rate: 20.0,
            burst_sigma: 0.7,
            burst_mean_secs: 45.0,
            // exp(mu) ≈ 32 KiB median request buffer.
            alloc_mu_log: (32.0 * 1024.0f64).ln(),
            alloc_sigma_log: 1.0,
            lifetime_mix: (0.72, 0.23, 0.05),
            short_mean_secs: 5.0,
            medium_mean_secs: 120.0,
            long_xm_secs: 300.0,
            long_alpha: 1.4,
            batch_bytes: Bytes::mib(24),
            batch_period_secs: 1800.0,
            batch_hold_secs: 90.0,
            diurnal_amplitude: 0.0,
            diurnal_period_secs: 24.0 * 3600.0,
        }
    }

    /// The web-server mix with a ±60 % day/night load cycle.
    pub fn web_server_diurnal() -> Self {
        WorkloadConfig {
            diurnal_amplitude: 0.6,
            ..WorkloadConfig::web_server()
        }
    }

    /// A lighter interactive mix (fewer, smaller requests).
    pub fn interactive() -> Self {
        WorkloadConfig {
            base_rate: 4.0,
            burst_sigma: 0.9,
            burst_mean_secs: 120.0,
            alloc_mu_log: (16.0 * 1024.0f64).ln(),
            alloc_sigma_log: 1.2,
            lifetime_mix: (0.6, 0.3, 0.1),
            short_mean_secs: 8.0,
            medium_mean_secs: 300.0,
            long_xm_secs: 600.0,
            long_alpha: 1.3,
            batch_bytes: Bytes::ZERO,
            batch_period_secs: 3600.0,
            batch_hold_secs: 60.0,
            diurnal_amplitude: 0.0,
            diurnal_period_secs: 24.0 * 3600.0,
        }
    }

    /// GPU-serving-style inference load, sized for the tiny test
    /// machine: highly bursty request batches (burst regimes flip every
    /// few seconds, heavy log-normal modulation), dominated by
    /// short-lived activation buffers with a heavy-tailed residue of
    /// session/KV-cache state that lingers. Pair with a monotone
    /// leak + fragmentation fault plan for the LLM-serving aging
    /// texture (KV-cache growth under bursty inference traffic).
    pub fn gpu_inference() -> Self {
        WorkloadConfig {
            base_rate: 25.0,
            burst_sigma: 1.0,
            burst_mean_secs: 8.0,
            // exp(mu) ≈ 16 KiB median activation buffer.
            alloc_mu_log: (16.0 * 1024.0f64).ln(),
            alloc_sigma_log: 1.0,
            lifetime_mix: (0.85, 0.10, 0.05),
            short_mean_secs: 1.5,
            medium_mean_secs: 25.0,
            long_xm_secs: 90.0,
            long_alpha: 1.6,
            batch_bytes: Bytes::mib(2), // periodic compaction/checkpoint
            batch_period_secs: 300.0,
            batch_hold_secs: 15.0,
            diurnal_amplitude: 0.0,
            diurnal_period_secs: 24.0 * 3600.0,
        }
    }

    /// Mobile-style app-churn load, sized for the tiny test machine:
    /// moderate-rate interactive sessions with strong burst persistence
    /// (an app in the foreground), a balanced lifetime mix, periodic
    /// sync jobs and a mild usage cycle. Pair with a
    /// leak-plus-partial-reclaim fault plan for the Android-study aging
    /// texture (leak-accumulate-then-partial-reclaim cycles).
    pub fn mobile_app_churn() -> Self {
        WorkloadConfig {
            base_rate: 12.0,
            burst_sigma: 0.8,
            burst_mean_secs: 60.0,
            // exp(mu) ≈ 12 KiB median UI/session allocation.
            alloc_mu_log: (12.0 * 1024.0f64).ln(),
            alloc_sigma_log: 1.0,
            lifetime_mix: (0.70, 0.25, 0.05),
            short_mean_secs: 3.0,
            medium_mean_secs: 60.0,
            long_xm_secs: 180.0,
            long_alpha: 1.6,
            batch_bytes: Bytes::mib(2), // periodic background sync
            batch_period_secs: 600.0,
            batch_hold_secs: 30.0,
            diurnal_amplitude: 0.3,
            diurnal_period_secs: 24.0 * 3600.0,
        }
    }

    /// A small, fast mix matched to [`crate::MachineConfig::tiny_test`].
    pub fn tiny_test() -> Self {
        WorkloadConfig {
            base_rate: 30.0,
            burst_sigma: 0.7,
            burst_mean_secs: 20.0,
            alloc_mu_log: (8.0 * 1024.0f64).ln(),
            alloc_sigma_log: 1.0,
            lifetime_mix: (0.75, 0.2, 0.05),
            short_mean_secs: 2.0,
            medium_mean_secs: 30.0,
            long_xm_secs: 60.0,
            long_alpha: 1.4,
            batch_bytes: Bytes::mib(4),
            batch_period_secs: 240.0,
            batch_hold_secs: 20.0,
            diurnal_amplitude: 0.0,
            diurnal_period_secs: 24.0 * 3600.0,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<()> {
        if !(self.base_rate >= 0.0 && self.base_rate.is_finite()) {
            return Err(Error::invalid("base_rate", "must be finite and >= 0"));
        }
        if !(self.burst_sigma >= 0.0 && self.burst_sigma < 3.0) {
            return Err(Error::invalid("burst_sigma", "must lie in [0, 3)"));
        }
        if self.burst_mean_secs <= 0.0 {
            return Err(Error::invalid("burst_mean_secs", "must be positive"));
        }
        let (a, b, c) = self.lifetime_mix;
        if a < 0.0 || b < 0.0 || c < 0.0 || (a + b + c - 1.0).abs() > 1e-9 {
            return Err(Error::invalid(
                "lifetime_mix",
                "components must be non-negative and sum to 1",
            ));
        }
        if self.short_mean_secs <= 0.0 || self.medium_mean_secs <= 0.0 || self.long_xm_secs <= 0.0 {
            return Err(Error::invalid("lifetimes", "means must be positive"));
        }
        if self.long_alpha <= 1.0 {
            return Err(Error::invalid(
                "long_alpha",
                "must exceed 1 (finite mean required)",
            ));
        }
        if self.batch_period_secs <= 0.0 || self.batch_hold_secs <= 0.0 {
            return Err(Error::invalid("batch", "periods must be positive"));
        }
        if !(0.0..1.0).contains(&self.diurnal_amplitude) {
            return Err(Error::invalid("diurnal_amplitude", "must lie in [0, 1)"));
        }
        if self.diurnal_period_secs <= 0.0 {
            return Err(Error::invalid("diurnal_period_secs", "must be positive"));
        }
        Ok(())
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::web_server()
    }
}

/// Runtime sampler driving a [`WorkloadConfig`]: tracks the current burst
/// regime and draws per-step arrivals, sizes and lifetimes.
#[derive(Debug)]
pub struct WorkloadSampler {
    config: WorkloadConfig,
    burst_factor: f64,
    burst_until: f64,
}

/// One cohort of allocations made in a step: total size and expiry delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllocationRequest {
    /// Total bytes allocated.
    pub bytes: Bytes,
    /// Seconds until the cohort is freed.
    pub lifetime_secs: f64,
}

impl WorkloadSampler {
    /// Creates a sampler.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadConfig::validate`] failures.
    pub fn new(config: WorkloadConfig) -> Result<Self> {
        config.validate()?;
        Ok(WorkloadSampler {
            config,
            burst_factor: 1.0,
            burst_until: 0.0,
        })
    }

    /// The underlying configuration.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// Current burst modulation factor (diagnostic).
    pub fn burst_factor(&self) -> f64 {
        self.burst_factor
    }

    /// Draws the allocation cohorts for one step of `dt` seconds at time
    /// `now` (seconds).
    pub fn step(&mut self, now: f64, dt: f64, rng: &mut StdRng) -> Vec<AllocationRequest> {
        let cfg = &self.config;
        // Renew the burst regime if expired (heavy-tailed persistence).
        if now >= self.burst_until {
            self.burst_factor = if cfg.burst_sigma > 0.0 {
                // Mean-one log-normal modulation.
                dist::log_normal(
                    rng,
                    -0.5 * cfg.burst_sigma * cfg.burst_sigma,
                    cfg.burst_sigma,
                )
            } else {
                1.0
            };
            self.burst_until = now + dist::pareto(rng, cfg.burst_mean_secs * 0.4, 1.5);
        }

        let diurnal = 1.0
            + cfg.diurnal_amplitude
                * (2.0 * std::f64::consts::PI * now / cfg.diurnal_period_secs).sin();
        let mean_arrivals = cfg.base_rate * self.burst_factor * diurnal * dt;
        let count = dist::poisson(rng, mean_arrivals);
        if count == 0 {
            return Vec::new();
        }

        // Group this step's arrivals into one cohort per lifetime class to
        // bound ledger size; sizes are drawn per arrival so heavy tails
        // survive aggregation.
        let mut short = 0.0f64;
        let mut medium = 0.0f64;
        let mut long = 0.0f64;
        let (p_short, p_medium, _) = cfg.lifetime_mix;
        for _ in 0..count {
            let size = dist::log_normal(rng, cfg.alloc_mu_log, cfg.alloc_sigma_log);
            let u: f64 = rand::Rng::gen_range(rng, 0.0..1.0);
            if u < p_short {
                short += size;
            } else if u < p_short + p_medium {
                medium += size;
            } else {
                long += size;
            }
        }
        let mut out = Vec::with_capacity(3);
        if short > 0.0 {
            out.push(AllocationRequest {
                bytes: Bytes::from_f64(short),
                lifetime_secs: dist::exponential(rng, cfg.short_mean_secs),
            });
        }
        if medium > 0.0 {
            out.push(AllocationRequest {
                bytes: Bytes::from_f64(medium),
                lifetime_secs: dist::exponential(rng, cfg.medium_mean_secs),
            });
        }
        if long > 0.0 {
            out.push(AllocationRequest {
                bytes: Bytes::from_f64(long),
                lifetime_secs: dist::pareto(rng, cfg.long_xm_secs, cfg.long_alpha),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn presets_validate() {
        WorkloadConfig::web_server().validate().unwrap();
        WorkloadConfig::interactive().validate().unwrap();
        WorkloadConfig::tiny_test().validate().unwrap();
        WorkloadConfig::gpu_inference().validate().unwrap();
        WorkloadConfig::mobile_app_churn().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_mix() {
        let mut cfg = WorkloadConfig::web_server();
        cfg.lifetime_mix = (0.5, 0.5, 0.5);
        assert!(cfg.validate().is_err());
        cfg.lifetime_mix = (-0.1, 0.6, 0.5);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_heavy_tail_without_mean() {
        let mut cfg = WorkloadConfig::web_server();
        cfg.long_alpha = 0.9;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn sampler_produces_allocations_at_positive_rate() {
        let mut sampler = WorkloadSampler::new(WorkloadConfig::web_server()).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut total = Bytes::ZERO;
        for step in 0..600 {
            for req in sampler.step(step as f64, 1.0, &mut rng) {
                assert!(req.lifetime_secs > 0.0);
                total += req.bytes;
            }
        }
        // 20 req/s × 600 s × ~53 KiB mean ≈ 600 MiB; accept a broad band.
        assert!(total > Bytes::mib(100), "total {total}");
        assert!(total < Bytes::gib(4), "total {total}");
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let mut cfg = WorkloadConfig::web_server();
        cfg.base_rate = 0.0;
        let mut sampler = WorkloadSampler::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for step in 0..100 {
            assert!(sampler.step(step as f64, 1.0, &mut rng).is_empty());
        }
    }

    #[test]
    fn burst_factor_changes_over_time() {
        let mut sampler = WorkloadSampler::new(WorkloadConfig::web_server()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut factors = std::collections::BTreeSet::new();
        for step in 0..5000 {
            sampler.step(step as f64, 1.0, &mut rng);
            factors.insert((sampler.burst_factor() * 1e9) as i64);
        }
        assert!(factors.len() > 5, "only {} regimes", factors.len());
    }

    #[test]
    fn burstiness_raises_variance() {
        let count_variance = |sigma: f64, seed: u64| {
            let mut cfg = WorkloadConfig::web_server();
            cfg.burst_sigma = sigma;
            let mut sampler = WorkloadSampler::new(cfg).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let counts: Vec<f64> = (0..4000)
                .map(|s| {
                    sampler
                        .step(s as f64, 1.0, &mut rng)
                        .iter()
                        .map(|r| r.bytes.as_f64())
                        .sum::<f64>()
                })
                .collect();
            let m = counts.iter().sum::<f64>() / counts.len() as f64;
            counts.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / counts.len() as f64
        };
        let calm = count_variance(0.0, 4);
        let bursty = count_variance(1.2, 4);
        assert!(bursty > 2.0 * calm, "calm {calm} bursty {bursty}");
    }

    #[test]
    fn diurnal_validation() {
        let mut cfg = WorkloadConfig::web_server_diurnal();
        cfg.validate().unwrap();
        cfg.diurnal_amplitude = 1.0;
        assert!(cfg.validate().is_err());
        cfg.diurnal_amplitude = 0.5;
        cfg.diurnal_period_secs = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let mut cfg = WorkloadConfig::web_server_diurnal();
        cfg.burst_sigma = 0.0; // isolate the diurnal effect
        let period = cfg.diurnal_period_secs;
        let mut sampler = WorkloadSampler::new(cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let mut volume_at = |t0: f64| -> f64 {
            (0..600)
                .flat_map(|i| sampler.step(t0 + i as f64, 1.0, &mut rng))
                .map(|r| r.bytes.as_f64())
                .sum()
        };
        let peak = volume_at(period * 0.25); // sin = +1
        let trough = volume_at(period * 0.75); // sin = −1
        assert!(peak > 2.0 * trough, "peak {peak} trough {trough}");
    }

    #[test]
    fn sampler_is_deterministic() {
        let run = || {
            let mut sampler = WorkloadSampler::new(WorkloadConfig::tiny_test()).unwrap();
            let mut rng = StdRng::seed_from_u64(7);
            (0..200)
                .flat_map(|s| sampler.step(s as f64, 1.0, &mut rng))
                .map(|r| r.bytes.as_u64())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
