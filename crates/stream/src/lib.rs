//! # aging-stream
//!
//! Online, bounded-memory streaming detection subsystem of the
//! `holder-aging` workspace — the production-shaped counterpart of the
//! offline analyses reproducing *"Software Aging and Multifractality of
//! Memory Resources"* (Shereshevsky et al., DSN 2003).
//!
//! The offline pipeline answers "did this recorded trace show pre-crash
//! multifractal anomalies?"; this crate answers the operational question:
//! *monitor N machines × M counters live, in O(window) memory per stream,
//! and emit crash alarms as they happen.* It is organised in four layers:
//!
//! 1. **Incremental kernels** (in the foundation crates):
//!    [`aging_timeseries::ring::RingBuffer`],
//!    [`aging_timeseries::trend::StreamingMannKendall`],
//!    [`aging_fractal::streaming`] — O(window) work/memory per sample.
//! 2. **Ingestion** ([`source`]): the [`source::SampleSource`] trait with
//!    CSV replay, live simulated-machine and Linux `/proc` sources, plus
//!    the per-source [`gate::SampleGate`] that repairs real-world defects
//!    (NaN, out-of-order timestamps, gaps) with documented policies.
//! 3. **Detection** ([`detector`]): [`detector::StreamingDetector`] — the
//!    paper's Hölder-dimension detector and the Mann–Kendall baseline as
//!    bounded-memory online detectors, alarm-for-alarm identical to the
//!    batch [`aging_core::detector::HolderDimensionDetector`].
//! 4. **Fleet supervision & observability** ([`supervisor`],
//!    [`telemetry`]): a thread-per-shard supervisor multiplexing a fleet
//!    through streaming detectors with bounded queues and explicit drop
//!    policy, emitting one time-ordered alarm stream plus JSON status
//!    snapshots and plain-text status lines.
//!
//! # Examples
//!
//! ```
//! use aging_core::detector::DetectorConfig;
//! use aging_stream::detector::{StreamingDetector, DetectorSpec};
//!
//! # fn main() -> Result<(), aging_timeseries::Error> {
//! // Stream a slowly-degrading counter through the online detector.
//! let mut det = StreamingDetector::new(&DetectorSpec::Holder(DetectorConfig {
//!     holder_radius: 16,
//!     holder_max_lag: 4,
//!     dimension_window: 64,
//!     dimension_stride: 16,
//!     baseline_windows: 8,
//!     ..DetectorConfig::default()
//! }))?;
//! for i in 0..600 {
//!     let value = 1e6 - 40.0 * i as f64 + (i as f64 * 0.9).sin() * 512.0;
//!     det.push(value)?;
//! }
//! // Bounded memory: the detector holds only its trailing windows.
//! assert!(det.memory_bound_samples() < 200);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod detector;
pub mod gate;
pub mod merge;
pub mod pipeline;
pub mod sink;
pub mod source;
pub mod supervisor;
pub mod telemetry;

pub use aging_timeseries::{Error, Result};

pub use detector::{DetectorSpec, SpectrumDetectorConfig, StreamingDetector};
pub use gate::{GateAction, GateConfig, GateHealth, SampleGate};
pub use merge::{MergeKey, WatermarkMerger};
pub use pipeline::{MachinePipeline, PipelineEvent};
pub use sink::{FleetSink, IngestSink};
pub use source::{SamplePerturber, SampleSource, StreamSample};
pub use supervisor::{
    AlarmEvent, AlarmKind, CounterDetector, FleetConfig, FleetReport, FleetSupervisor,
    MachineOutcome, PerturberFactory,
};
pub use telemetry::{
    CounterStreamSnapshot, LatencyHistogram, MachineSnapshot, Snapshot, StageCounters,
    StatusSnapshot,
};
