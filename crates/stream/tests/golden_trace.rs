//! Golden-trace regression tests: two committed fixture CSVs (one clean,
//! one defect-laden) with the exact alert sequences the streaming
//! pipeline must produce on them. Any drift in detector output —
//! intentional retuning or an accidental behaviour change — fails CI
//! with a line-level diff instead of silently shifting E3/E11 results.
//!
//! To regenerate the fixtures after an *intentional* detector change:
//!
//! ```text
//! cargo test -p aging-stream --test golden_trace -- --ignored regenerate
//! ```
//!
//! then review the fixture diff like any other code change.

use std::fmt::Write as _;
use std::path::PathBuf;

use aging_core::detector::DetectorConfig;
use aging_stream::detector::{AlertDetail, DetectorSpec, StreamingDetector};
use aging_stream::gate::{GateAction, SampleGate};
use aging_stream::source::{CsvReplaySource, SampleSource};
use aging_stream::GateConfig;

const ROWS: usize = 1200;
const DT: f64 = 30.0;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name)).unwrap_or_else(|e| {
        panic!(
            "missing fixture {name} ({e}); run \
             `cargo test -p aging-stream --test golden_trace -- --ignored regenerate`"
        )
    })
}

/// The small Hölder tuning the crate's examples use — cheap enough for a
/// 1200-sample trace, sensitive enough to alarm on it.
fn config() -> DetectorConfig {
    DetectorConfig {
        holder_radius: 16,
        holder_max_lag: 4,
        dimension_window: 64,
        dimension_stride: 16,
        baseline_windows: 8,
        ..DetectorConfig::default()
    }
}

/// Deterministic synthetic free-memory trace: linear depletion with mild
/// periodic load, then strongly increased roughness in the final third —
/// the paper's pre-crash signature, reproducible to the bit.
fn clean_values() -> Vec<f64> {
    let mut state = 0x51ce_b00c_5eed_f00du64;
    let mut rand = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..ROWS)
        .map(|i| {
            let t = i as f64;
            let base = 1e6 - 25.0 * t + (t * 0.45).sin() * 2048.0;
            let late = i > 2 * ROWS / 3;
            let noise = rand() * if late { 6000.0 } else { 120.0 };
            base + noise
        })
        .collect()
}

fn clean_csv() -> String {
    let mut csv = String::from("time,available\n");
    for (i, v) in clean_values().iter().enumerate() {
        writeln!(csv, "{},{v}", i as f64 * DT).unwrap();
    }
    csv
}

/// The same trace mangled the way real monitor logs arrive: NaN readings,
/// duplicated (stale) rows, a multi-sample feed outage, one row truncated
/// mid-write and one garbled cell.
fn defect_csv() -> String {
    let values = clean_values();
    let mut csv = String::from("time,available\n");
    let mut last_row: Option<String> = None;
    for (i, v) in values.iter().enumerate() {
        let t = i as f64 * DT;
        if (600..616).contains(&i) {
            continue; // a 480 s feed outage (> 4 nominal periods)
        }
        if i % 97 == 13 {
            writeln!(csv, "{},NaN", t - 0.5 * DT).unwrap(); // exporter hiccup
        }
        if i == 800 {
            writeln!(csv, "{t}").unwrap(); // truncated mid-write
            last_row = None;
            continue;
        }
        let row = if i == 900 {
            format!("{t},x!7") // garbled in transport
        } else {
            format!("{t},{v}")
        };
        writeln!(csv, "{row}").unwrap();
        if i % 101 == 50 {
            writeln!(csv, "{row}").unwrap(); // stale retransmission
        }
        last_row = Some(row);
    }
    let _ = last_row;
    csv
}

/// Replays a source through gate + detector and renders the alert
/// sequence as CSV text (the fixture format).
fn alert_trace(mut source: impl SampleSource) -> String {
    let mut gate = SampleGate::new(GateConfig {
        nominal_period_secs: DT,
        max_gap_factor: 4.0,
        ..GateConfig::default()
    })
    .unwrap();
    let mut detector = StreamingDetector::new(&DetectorSpec::Holder(config())).unwrap();
    let mut out = String::from(
        "sample_index,level,trigger,dimension,mean_holder,dimension_baseline,holder_baseline\n",
    );
    while let Some(raw) = source.next_sample().unwrap() {
        let accepted = match gate.push(raw) {
            GateAction::Accept(s) => s,
            GateAction::AcceptAfterGap(s) => {
                detector.reset();
                s
            }
            GateAction::DropNonFinite | GateAction::DropOutOfOrder => continue,
        };
        if let Some(alert) = detector.push(accepted.value).unwrap() {
            let AlertDetail::Holder(a) = alert.detail else {
                panic!("holder spec must yield holder alerts");
            };
            writeln!(
                out,
                "{},{:?},{:?},{},{},{},{}",
                a.sample_index,
                a.level,
                a.trigger,
                a.dimension,
                a.mean_holder,
                a.dimension_baseline,
                a.holder_baseline,
            )
            .unwrap();
        }
    }
    out
}

/// Line-level comparison with a readable drift report.
fn assert_trace_matches(name: &str, expected: &str, actual: &str) {
    if expected == actual {
        return;
    }
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    for i in 0..exp.len().max(act.len()) {
        let e = exp.get(i).copied().unwrap_or("<missing>");
        let a = act.get(i).copied().unwrap_or("<missing>");
        assert_eq!(
            e,
            a,
            "\ndetector output drifted from golden trace `{name}` at line {}:\n  \
             expected: {e}\n  actual:   {a}\n({} expected lines, {} actual lines)\n\
             If the change is intentional, regenerate fixtures with\n  \
             cargo test -p aging-stream --test golden_trace -- --ignored regenerate",
            i + 1,
            exp.len(),
            act.len(),
        );
    }
    unreachable!("traces differ but all lines matched");
}

#[test]
fn fixture_inputs_are_reproducible() {
    // The committed *input* CSVs must themselves match the generators —
    // otherwise the alert fixtures test a different trace than intended.
    assert_trace_matches("clean.csv", &read_fixture("clean.csv"), &clean_csv());
    assert_trace_matches("defects.csv", &read_fixture("defects.csv"), &defect_csv());
}

#[test]
fn clean_trace_alerts_match_golden() {
    let source =
        CsvReplaySource::from_csv_str(&read_fixture("clean.csv"), "time", "available").unwrap();
    let actual = alert_trace(source);
    assert!(actual.lines().count() > 1, "clean trace must alert");
    assert_trace_matches(
        "clean_expected_alerts.csv",
        &read_fixture("clean_expected_alerts.csv"),
        &actual,
    );
}

#[test]
fn defect_trace_alerts_match_golden() {
    // The defect file is structurally damaged: only the lossy reader can
    // replay it, and it must report exactly the damage we injected.
    let text = read_fixture("defects.csv");
    let (source, defects) =
        CsvReplaySource::from_csv_str_lossy(&text, "time", "available").unwrap();
    assert_eq!(defects.ragged_rows, 1, "the one truncated row");
    assert_eq!(defects.non_numeric_cells, 1, "the one garbled cell");
    let actual = alert_trace(source);
    assert!(actual.lines().count() > 1, "defect trace must still alert");
    assert_trace_matches(
        "defects_expected_alerts.csv",
        &read_fixture("defects_expected_alerts.csv"),
        &actual,
    );
}

/// Writes all four fixtures. Ignored by default: run explicitly after an
/// intentional detector change, then review the diff.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate() {
    let dir = fixture_path("");
    std::fs::create_dir_all(&dir).unwrap();
    let clean = clean_csv();
    let defects = defect_csv();
    let clean_alerts =
        alert_trace(CsvReplaySource::from_csv_str(&clean, "time", "available").unwrap());
    let (defect_source, _) =
        CsvReplaySource::from_csv_str_lossy(&defects, "time", "available").unwrap();
    let defect_alerts = alert_trace(defect_source);
    std::fs::write(fixture_path("clean.csv"), &clean).unwrap();
    std::fs::write(fixture_path("defects.csv"), &defects).unwrap();
    std::fs::write(fixture_path("clean_expected_alerts.csv"), &clean_alerts).unwrap();
    std::fs::write(fixture_path("defects_expected_alerts.csv"), &defect_alerts).unwrap();
    println!(
        "regenerated fixtures in {} ({} clean alerts, {} defect alerts)",
        dir.display(),
        clean_alerts.lines().count() - 1,
        defect_alerts.lines().count() - 1,
    );
}
